#include "graph/streaming_graph.h"

#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "graph/dependency_graph.h"
#include "log/event_log.h"

namespace ems {
namespace {

uint64_t Bits(double d) { return std::bit_cast<uint64_t>(d); }

// Bit-exact structural equality: node order, names, members, both
// adjacency directions with neighbor order, and every frequency double.
void ExpectGraphsIdentical(const DependencyGraph& got,
                           const DependencyGraph& want) {
  ASSERT_EQ(got.NumNodes(), want.NumNodes());
  ASSERT_EQ(got.has_artificial(), want.has_artificial());
  ASSERT_EQ(got.NumEdges(), want.NumEdges());
  for (NodeId v = 0; v < static_cast<NodeId>(want.NumNodes()); ++v) {
    EXPECT_EQ(got.NodeName(v), want.NodeName(v)) << "node " << v;
    EXPECT_EQ(Bits(got.NodeFrequency(v)), Bits(want.NodeFrequency(v)))
        << "freq of node " << v;
    EXPECT_EQ(got.Members(v), want.Members(v)) << "members of node " << v;
    ASSERT_EQ(got.Successors(v), want.Successors(v)) << "post of node " << v;
    ASSERT_EQ(got.Predecessors(v), want.Predecessors(v))
        << "pre of node " << v;
    const auto& gsf = got.SuccessorFrequencies(v);
    const auto& wsf = want.SuccessorFrequencies(v);
    ASSERT_EQ(gsf.size(), wsf.size());
    for (size_t i = 0; i < wsf.size(); ++i) {
      EXPECT_EQ(Bits(gsf[i]), Bits(wsf[i]))
          << "post freq " << v << "[" << i << "]";
    }
    const auto& gpf = got.PredecessorFrequencies(v);
    const auto& wpf = want.PredecessorFrequencies(v);
    ASSERT_EQ(gpf.size(), wpf.size());
    for (size_t i = 0; i < wpf.size(); ++i) {
      EXPECT_EQ(Bits(gpf[i]), Bits(wpf[i]))
          << "pre freq " << v << "[" << i << "]";
    }
  }
}

void ExpectDistancesIdentical(const DependencyGraph& got,
                              const DependencyGraph& want) {
  EXPECT_EQ(got.LongestDistancesFromArtificial(),
            want.LongestDistancesFromArtificial());
  EXPECT_EQ(got.LongestDistancesToArtificial(),
            want.LongestDistancesToArtificial());
}

EventLog BaseLog() {
  EventLog log;
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "c"});
  log.AddTrace({"b", "c"});
  return log;
}

TEST(StreamingGraphTest, AppendMatchesRebuild) {
  EventLog log = BaseLog();
  StreamingDependencyGraph stream(log);
  AppendDelta delta =
      log.AppendTraces({{"a", "b", "c"}, {"b", "a"}, {"a", "c", "b"}});
  StreamingGraphStats stats = stream.ApplyAppend(delta.first_new_trace);
  EXPECT_EQ(stats.appended_traces, 3u);
  EXPECT_EQ(stats.new_nodes, 0u);
  EXPECT_GT(stats.added_edges, 0u);  // (b, a) and (c, b) are new pairs

  DependencyGraph rebuilt = DependencyGraph::Build(log);
  ExpectGraphsIdentical(stream.graph(), rebuilt);
  ExpectDistancesIdentical(stream.graph(), rebuilt);
}

TEST(StreamingGraphTest, AppendExtendsVocabularyInPlace) {
  EventLog log = BaseLog();
  StreamingDependencyGraph stream(log);
  const size_t old_nodes = stream.graph().NumNodes();
  AppendDelta delta = log.AppendTraces({{"a", "d", "e"}, {"e", "c"}});
  EXPECT_EQ(delta.new_events, 2u);
  StreamingGraphStats stats = stream.ApplyAppend(delta.first_new_trace);
  EXPECT_EQ(stats.new_nodes, 2u);

  // Existing NodeIds are a strict prefix of the extended graph.
  ASSERT_EQ(stream.graph().NumNodes(), old_nodes + 2);
  EXPECT_EQ(stream.graph().NodeName(static_cast<NodeId>(old_nodes)), "d");
  EXPECT_EQ(stream.graph().NodeName(static_cast<NodeId>(old_nodes + 1)),
            "e");
  ExpectGraphsIdentical(stream.graph(), DependencyGraph::Build(log));
}

TEST(StreamingGraphTest, WarmDistanceCacheIsPatchedNotRebuilt) {
  EventLog log = BaseLog();
  StreamingDependencyGraph stream(log);
  // Warm both caches, then append a batch that only touches c's
  // out-neighborhood: rows upstream of the change must stay cached.
  stream.graph().LongestDistancesFromArtificial();
  stream.graph().LongestDistancesToArtificial();

  AppendDelta delta = log.AppendTraces({{"c", "d"}});
  StreamingGraphStats stats = stream.ApplyAppend(delta.first_new_trace);
  // Forward direction: only the new node d is downstream of the new
  // edge; backward direction: c and everything upstream of it.
  EXPECT_GT(stats.distance_rows_invalidated, 0u);
  EXPECT_LT(stats.distance_rows_invalidated,
            2 * stream.graph().NumNodes());

  DependencyGraph rebuilt = DependencyGraph::Build(log);
  ExpectGraphsIdentical(stream.graph(), rebuilt);
  ExpectDistancesIdentical(stream.graph(), rebuilt);
}

TEST(StreamingGraphTest, PurelyNumericDeltaLeavesDistancesUntouched) {
  EventLog log = BaseLog();
  StreamingDependencyGraph stream(log);
  stream.graph().LongestDistancesFromArtificial();
  stream.graph().LongestDistancesToArtificial();
  // A repeat of an existing trace adds no edges and no nodes — only the
  // normalization denominator changes.
  AppendDelta delta = log.AppendTraces({{"a", "b", "c"}});
  StreamingGraphStats stats = stream.ApplyAppend(delta.first_new_trace);
  EXPECT_EQ(stats.added_edges, 0u);
  EXPECT_EQ(stats.removed_edges, 0u);
  EXPECT_EQ(stats.distance_rows_invalidated, 0u);

  DependencyGraph rebuilt = DependencyGraph::Build(log);
  ExpectGraphsIdentical(stream.graph(), rebuilt);
  ExpectDistancesIdentical(stream.graph(), rebuilt);
}

TEST(StreamingGraphTest, CycleCreationTurnsDistancesInfinite) {
  EventLog log = BaseLog();
  StreamingDependencyGraph stream(log);
  stream.graph().LongestDistancesFromArtificial();
  stream.graph().LongestDistancesToArtificial();

  // b -> a closes a cycle with a -> b: a, b, and their downstream become
  // infinite-horizon nodes.
  AppendDelta delta = log.AppendTraces({{"b", "a"}});
  stream.ApplyAppend(delta.first_new_trace);

  DependencyGraph rebuilt = DependencyGraph::Build(log);
  ExpectGraphsIdentical(stream.graph(), rebuilt);
  ExpectDistancesIdentical(stream.graph(), rebuilt);
  const auto& fwd = stream.graph().LongestDistancesFromArtificial();
  EXPECT_EQ(fwd[1], kInfiniteDistance);  // a
  EXPECT_EQ(fwd[2], kInfiniteDistance);  // b
}

TEST(StreamingGraphTest, ThresholdCrossingRemovesDilutedEdges) {
  EventLog log = BaseLog();  // f(a, c) = 1/4 initially
  DependencyGraphOptions opts;
  opts.min_edge_frequency = 0.2;
  StreamingDependencyGraph stream(log, opts);
  ASSERT_TRUE(stream.graph().HasEdge(1, 3));  // a -> c at 0.25

  // Appends without (a, c) dilute it below the 0.2 threshold.
  AppendDelta delta =
      log.AppendTraces({{"a", "b"}, {"a", "b"}, {"a", "b"}});
  StreamingGraphStats stats = stream.ApplyAppend(delta.first_new_trace);
  EXPECT_GT(stats.removed_edges, 0u);
  EXPECT_FALSE(stream.graph().HasEdge(1, 3));

  DependencyGraph rebuilt = DependencyGraph::Build(log, opts);
  ExpectGraphsIdentical(stream.graph(), rebuilt);
  ExpectDistancesIdentical(stream.graph(), rebuilt);
}

TEST(StreamingGraphTest, ThresholdCanBreakCyclesAndRestoreFiniteness) {
  EventLog log;
  log.AddTrace({"a", "b"});
  log.AddTrace({"b", "a"});  // cycle a <-> b
  DependencyGraphOptions opts;
  opts.min_edge_frequency = 0.3;
  StreamingDependencyGraph stream(log, opts);
  stream.graph().LongestDistancesFromArtificial();
  stream.graph().LongestDistancesToArtificial();
  ASSERT_EQ(stream.graph().LongestDistancesFromArtificial()[1],
            kInfiniteDistance);

  // Dilute (b, a) below threshold: the cycle breaks, distances become
  // finite again — the restricted recompute must flip rows back.
  AppendDelta delta = log.AppendTraces(
      {{"a", "b"}, {"a", "b"}, {"a", "b"}, {"a", "b"}});
  stream.ApplyAppend(delta.first_new_trace);

  DependencyGraph rebuilt = DependencyGraph::Build(log, opts);
  ExpectGraphsIdentical(stream.graph(), rebuilt);
  ExpectDistancesIdentical(stream.graph(), rebuilt);
  EXPECT_NE(stream.graph().LongestDistancesFromArtificial()[1],
            kInfiniteDistance);
}

TEST(StreamingGraphTest, SequentialAppendsStayIdentical) {
  EventLog log = BaseLog();
  StreamingDependencyGraph stream(log);
  stream.graph().LongestDistancesFromArtificial();
  stream.graph().LongestDistancesToArtificial();
  const std::vector<std::vector<std::vector<std::string>>> batches = {
      {{"a", "b", "c"}, {"c", "a"}},
      {{"d"}},  // single-event trace: node without real edges
      {{"d", "a", "d"}, {"b", "b", "c"}},
      {{"e", "d", "c", "b", "a"}},
  };
  for (const auto& batch : batches) {
    AppendDelta delta = log.AppendTraces(batch);
    stream.ApplyAppend(delta.first_new_trace);
    DependencyGraph rebuilt = DependencyGraph::Build(log);
    ExpectGraphsIdentical(stream.graph(), rebuilt);
    ExpectDistancesIdentical(stream.graph(), rebuilt);
  }
}

TEST(StreamingGraphTest, WorksWithoutArtificialNode) {
  EventLog log = BaseLog();
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  StreamingDependencyGraph stream(log, opts);
  AppendDelta delta = log.AppendTraces({{"c", "d"}, {"d", "a"}});
  stream.ApplyAppend(delta.first_new_trace);
  ExpectGraphsIdentical(stream.graph(), DependencyGraph::Build(log, opts));
}

TEST(StreamingGraphTest, CoalescedBatchesFoldOnce) {
  EventLog log = BaseLog();
  StreamingDependencyGraph stream(log);
  AppendDelta d1 = log.AppendTraces({{"a", "d"}});
  log.AppendTraces({{"d", "c"}});
  StreamingGraphStats stats = stream.ApplyAppend(d1.first_new_trace);
  EXPECT_EQ(stats.appended_traces, 2u);
  ExpectGraphsIdentical(stream.graph(), DependencyGraph::Build(log));
}

}  // namespace
}  // namespace ems
