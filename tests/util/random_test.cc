#include "util/random.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1'000'000) == b.UniformInt(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.UniformInt(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntSingleValueRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, GeometricRespectsCap) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    int v = rng.Geometric(0.9, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
  }
}

TEST(RngTest, GeometricZeroProbabilityIsZero) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Geometric(0.0, 10), 0);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(19);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) EXPECT_EQ(rng.WeightedIndex(w), 1u);
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(23);
  std::vector<double> w = {1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.WeightedIndex(w)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(29);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 42);
}

TEST(RngTest, HexStringLengthAndAlphabet) {
  Rng rng(31);
  std::string s = rng.HexString(16);
  EXPECT_EQ(s.size(), 16u);
  for (char c : s) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
  }
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(37);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t v : sample) EXPECT_LT(v, 20u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(41);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(43);
  Rng child = a.Fork();
  // The fork's stream must not simply replay the parent's.
  bool differs = false;
  Rng b(43);
  (void)b.Fork();
  for (int i = 0; i < 10; ++i) {
    if (child.UniformInt(0, 1'000'000) != a.UniformInt(0, 1'000'000)) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace ems
