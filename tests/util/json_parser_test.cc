// util/json_parser: the minimal recursive-descent parser behind the
// batch service's NDJSON job lines.
#include <string>

#include <gtest/gtest.h>

#include "util/json_parser.h"

namespace ems {
namespace {

TEST(JsonParserTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->bool_value(), true);
  EXPECT_EQ(ParseJson("false")->bool_value(), false);
  EXPECT_DOUBLE_EQ(ParseJson("3.5")->number_value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseJson("-2e3")->number_value(), -2000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(JsonParserTest, ParsesNestedDocument) {
  Result<JsonValue> doc = ParseJson(
      R"({"id":"j1","n":4,"opts":{"alpha":0.5,"on":true},"xs":[1,2,3]})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("id", ""), "j1");
  EXPECT_EQ(doc->GetInt("n", 0), 4);
  const JsonValue* opts = doc->Find("opts");
  ASSERT_NE(opts, nullptr);
  EXPECT_DOUBLE_EQ(opts->GetNumber("alpha", 0.0), 0.5);
  EXPECT_TRUE(opts->GetBool("on", false));
  const JsonValue* xs = doc->Find("xs");
  ASSERT_NE(xs, nullptr);
  ASSERT_TRUE(xs->is_array());
  ASSERT_EQ(xs->array_items().size(), 3u);
  EXPECT_DOUBLE_EQ(xs->array_items()[1].number_value(), 2.0);
}

TEST(JsonParserTest, AccessorsFallBackOnMissingOrMistyped) {
  Result<JsonValue> doc = ParseJson(R"({"s":"x","n":7})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(doc->GetString("n", "dflt"), "dflt");  // number, not string
  EXPECT_EQ(doc->GetInt("s", 9), 9);               // string, not number
  EXPECT_EQ(doc->Find("missing"), nullptr);
}

TEST(JsonParserTest, DecodesStringEscapes) {
  Result<JsonValue> doc = ParseJson(R"("a\"b\\c\n\tA")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value(), "a\"b\\c\n\tA");
}

TEST(JsonParserTest, DecodesUnicodeEscapesToUtf8) {
  Result<JsonValue> doc = ParseJson(R"("é€")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value(), "\xc3\xa9\xe2\x82\xac");  // é €
}

TEST(JsonParserTest, DuplicateKeysLastWins) {
  Result<JsonValue> doc = ParseJson(R"({"k":1,"k":2})");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->GetInt("k", 0), 2);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson(R"({"a":})").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("01").ok());
}

TEST(JsonParserTest, RejectsPathologicalNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  Result<JsonValue> doc = ParseJson(deep);
  EXPECT_FALSE(doc.ok());  // depth cap, not a stack overflow
  EXPECT_TRUE(doc.status().IsParseError());
}

}  // namespace
}  // namespace ems
