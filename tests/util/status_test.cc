#include "util/status.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad alpha");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad alpha");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad alpha");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::IOError("disk");
  Status t = s;
  EXPECT_TRUE(t.IsIOError());
  EXPECT_EQ(t.message(), "disk");
  EXPECT_TRUE(s.IsIOError());  // source intact after copy
}

TEST(StatusCodeToStringTest, CoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotImplemented),
               "NotImplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  EMS_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(MacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EMS_ASSIGN_OR_RETURN(int h, Half(x));
  EMS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(MacroTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2 = 3 is odd
  EXPECT_TRUE(Quarter(5).status().IsInvalidArgument());
}

}  // namespace
}  // namespace ems
