#include "util/json_writer.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(JsonWriterTest, FlatObject) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String("pay");
  w.Key("score");
  w.Number(0.5);
  w.Key("count");
  w.Int(42);
  w.Key("ok");
  w.Bool(true);
  w.Key("missing");
  w.Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            R"({"name":"pay","score":0.5,"count":42,"ok":true,"missing":null})");
}

TEST(JsonWriterTest, NestedArraysAndObjects) {
  JsonWriter w;
  w.BeginObject();
  w.Key("items");
  w.BeginArray();
  w.Int(1);
  w.Int(2);
  w.BeginObject();
  w.Key("x");
  w.Int(3);
  w.EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"items":[1,2,{"x":3}]})");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter w;
  w.BeginObject();
  w.Key("a");
  w.BeginArray();
  w.EndArray();
  w.Key("o");
  w.BeginObject();
  w.EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":[],"o":{}})");
}

TEST(JsonWriterTest, StringEscaping) {
  EXPECT_EQ(JsonWriter::Escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
}

TEST(JsonWriterTest, TopLevelArray) {
  JsonWriter w;
  w.BeginArray();
  w.String("x");
  w.String("y");
  w.EndArray();
  EXPECT_EQ(w.str(), R"(["x","y"])");
}

TEST(JsonWriterTest, NumberFormatting) {
  JsonWriter w;
  w.BeginArray();
  w.Number(1.0);
  w.Number(0.3333333333333333);
  w.Number(-2.5);
  w.EndArray();
  std::string s = w.str();
  EXPECT_EQ(s.front(), '[');
  EXPECT_NE(s.find("0.333333333333"), std::string::npos);
  EXPECT_NE(s.find("-2.5"), std::string::npos);
}

}  // namespace
}  // namespace ems
