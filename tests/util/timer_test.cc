#include "util/timer.h"

#include <thread>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(TimerTest, StartsAtZeroAndGrowsMonotonically) {
  Timer timer;
  double first = timer.ElapsedMillis();
  EXPECT_GE(first, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  double second = timer.ElapsedMillis();
  EXPECT_GE(second, first);
  EXPECT_GE(second, 2.0);
}

TEST(TimerTest, ResetRestartsTheStopwatch) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  double before = timer.ElapsedMillis();
  EXPECT_GE(before, 5.0);
  timer.Reset();
  double after = timer.ElapsedMillis();
  EXPECT_LT(after, before);
}

TEST(TimerTest, SecondsMatchMillis) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  double millis = timer.ElapsedMillis();
  double seconds = timer.ElapsedSeconds();
  // Seconds is sampled after millis, so it may only be larger.
  EXPECT_GE(seconds * 1000.0, millis);
  EXPECT_NEAR(seconds * 1000.0, millis, 5.0);
}

}  // namespace
}  // namespace ems
