#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a;b;c", ';'), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a;;c", ';'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(";", ';'), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, NoDelimiter) {
  EXPECT_EQ(Split("abc", ';'), (std::vector<std::string>{"abc"}));
}

TEST(SplitTest, EmptyInput) {
  EXPECT_EQ(Split("", ';'), (std::vector<std::string>{""}));
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(Trim("  hello \t\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(ToLowerTest, LowersAscii) {
  EXPECT_EQ(ToLower("AbC-12"), "abc-12");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("ev_abc", "ev_"));
  EXPECT_FALSE(StartsWith("ev", "ev_"));
  EXPECT_TRUE(EndsWith("file.xes", ".xes"));
  EXPECT_FALSE(EndsWith("x", ".xes"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, "+"), "a+b+c");
  EXPECT_EQ(Join({"solo"}, "+"), "solo");
  EXPECT_EQ(Join({}, "+"), "");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(0.4567, 3), "0.457");
  EXPECT_EQ(FormatDouble(1.0, 1), "1.0");
  EXPECT_EQ(FormatDouble(-2.5, 0), "-2");  // round-half-even via printf
}

TEST(XmlEscapeTest, EscapesSpecials) {
  EXPECT_EQ(XmlEscape("a<b&c>\"d'"), "a&lt;b&amp;c&gt;&quot;d&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

}  // namespace
}  // namespace ems
