#include "util/log.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

// The global level is process state; each test restores the default.
class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { SetGlobalLogLevel(LogLevel::kWarn); }
};

TEST_F(LogTest, ParseLogLevelAcceptsTheFourNames) {
  EXPECT_EQ(*ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(*ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(*ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(*ParseLogLevel("debug"), LogLevel::kDebug);
}

TEST_F(LogTest, ParseLogLevelRejectsAnythingElse) {
  EXPECT_FALSE(ParseLogLevel("verbose").ok());
  EXPECT_FALSE(ParseLogLevel("WARN").ok());
  EXPECT_FALSE(ParseLogLevel("").ok());
  EXPECT_EQ(ParseLogLevel("trace").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LogTest, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kError, LogLevel::kWarn, LogLevel::kInfo,
                         LogLevel::kDebug}) {
    EXPECT_EQ(*ParseLogLevel(LogLevelName(level)), level);
  }
}

TEST_F(LogTest, DefaultThresholdIsWarn) {
  EXPECT_EQ(GlobalLogLevel(), LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
}

TEST_F(LogTest, ThresholdGatesHigherLevels) {
  SetGlobalLogLevel(LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kWarn));
  SetGlobalLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));
  EXPECT_TRUE(LogEnabled(LogLevel::kInfo));
}

TEST_F(LogTest, FormatLogLineIsOneJsonObject) {
  // 2026-08-08T12:00:00.123Z.
  const int64_t millis = 1786536000123;
  const std::string line =
      FormatLogLine(LogLevel::kInfo, "cache warm", millis);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"cache warm\""), std::string::npos);
  EXPECT_NE(line.find("\"ts\":\""), std::string::npos);
  EXPECT_NE(line.find(".123Z\""), std::string::npos);
}

TEST_F(LogTest, FormatLogLineEscapesTheMessage) {
  const std::string line = FormatLogLine(
      LogLevel::kError, "path \"a\\b\"\nbroke", 0);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\\\"a\\\\b\\\""), std::string::npos);
  EXPECT_NE(line.find("\\n"), std::string::npos);
}

TEST_F(LogTest, EpochFormatsAs1970) {
  const std::string line = FormatLogLine(LogLevel::kWarn, "x", 0);
  EXPECT_NE(line.find("1970-01-01T00:00:00.000Z"), std::string::npos);
}

}  // namespace
}  // namespace ems
