#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace ems {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(HistogramTest, BucketsObservationsByUpperBound) {
  Histogram h({1.0, 5.0, 10.0});
  h.Observe(0.5);   // <= 1       -> bucket 0
  h.Observe(1.0);   // <= 1       -> bucket 0 (inclusive upper bound)
  h.Observe(3.0);   // <= 5       -> bucket 1
  h.Observe(10.0);  // <= 10      -> bucket 2
  h.Observe(99.0);  // overflow   -> bucket 3
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 3.0 + 10.0 + 99.0);
}

TEST(MetricsRegistryTest, GetReturnsStablePointerPerName) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("ems.iterations");
  Counter* b = registry.GetCounter("ems.iterations");
  EXPECT_EQ(a, b);
  a->Increment(7);
  EXPECT_EQ(registry.CounterValue("ems.iterations"), 7u);
  EXPECT_EQ(registry.CounterValue("never.created"), 0u);
  registry.GetGauge("g");
  registry.GetHistogram("h");
  EXPECT_EQ(registry.NumInstruments(), 3u);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      Counter* c = registry.GetCounter("shared");
      for (int i = 0; i < kIncrements; ++i) c->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("shared"),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, JsonExportIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("zeta")->Increment(2);
  registry.GetCounter("alpha")->Increment(1);
  registry.GetGauge("load")->Set(0.5);
  Histogram* h = registry.GetHistogram("lat", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(100.0);
  std::string json = registry.ToJson();
  // Sorted keys -> deterministic output.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\":1"), std::string::npos);
  EXPECT_NE(json.find("\"zeta\":2"), std::string::npos);
  // Histogram exports counts, sum, bounds, and buckets.
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedOnFirstUse) {
  MetricsRegistry registry;
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h2->bounds().size(), 2u);
}

}  // namespace
}  // namespace ems
