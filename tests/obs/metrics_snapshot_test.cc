#include "obs/metrics_snapshot.h"

#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace ems {
namespace {

TEST(MetricsSnapshotTest, CapturesEveryInstrumentKind) {
  MetricsRegistry registry;
  registry.GetCounter("jobs")->Increment(3);
  registry.GetGauge("depth")->Set(7.0);
  Histogram* h = registry.GetHistogram("iters", {1.0, 10.0});
  h->Observe(2.0);
  QuantileHistogram* q = registry.GetQuantileHistogram("latency");
  q->Observe(5.0);
  q->Observe(50.0);

  MetricsSnapshot snapshot = CaptureMetricsSnapshot(registry);
  EXPECT_GT(snapshot.at_seconds, 0.0);
  EXPECT_EQ(snapshot.counters.at("jobs"), 3u);
  EXPECT_EQ(snapshot.gauges.at("depth"), 7.0);
  EXPECT_EQ(snapshot.histograms.at("iters").count, 1u);
  EXPECT_EQ(snapshot.quantile_histograms.at("latency").count, 2u);
  EXPECT_GT(snapshot.quantile_histograms.at("latency").p50, 0.0);
  EXPECT_LE(snapshot.quantile_histograms.at("latency").p50,
            snapshot.quantile_histograms.at("latency").p99);
}

TEST(MetricsSnapshotTest, DiffRatesDividesByInterval) {
  MetricsSnapshot prev, cur;
  prev.at_seconds = 100.0;
  cur.at_seconds = 102.0;
  prev.counters["jobs"] = 10;
  cur.counters["jobs"] = 30;
  cur.counters["fresh"] = 4;  // absent in prev: counts from zero
  auto rates = DiffRates(prev, cur);
  EXPECT_DOUBLE_EQ(rates.at("jobs"), 10.0);   // 20 / 2s
  EXPECT_DOUBLE_EQ(rates.at("fresh"), 2.0);   // 4 / 2s
}

TEST(MetricsSnapshotTest, DiffRatesSurvivesCounterReset) {
  MetricsSnapshot prev, cur;
  prev.at_seconds = 10.0;
  cur.at_seconds = 14.0;
  prev.counters["jobs"] = 1000;
  cur.counters["jobs"] = 8;  // went backwards: registry reset / restart
  auto rates = DiffRates(prev, cur);
  // Rated as cur/interval — a restart, never a negative rate.
  EXPECT_DOUBLE_EQ(rates.at("jobs"), 2.0);
  EXPECT_GE(rates.at("jobs"), 0.0);
}

TEST(MetricsSnapshotTest, DiffRatesEmptyOnNonPositiveInterval) {
  MetricsSnapshot prev, cur;
  prev.at_seconds = 10.0;
  cur.at_seconds = 10.0;
  prev.counters["jobs"] = 1;
  cur.counters["jobs"] = 5;
  EXPECT_TRUE(DiffRates(prev, cur).empty());
  cur.at_seconds = 9.0;
  EXPECT_TRUE(DiffRates(prev, cur).empty());
}

TEST(MetricsSnapshotTest, WriteJsonEmitsIntegerGauges) {
  MetricsSnapshot snapshot;
  snapshot.at_seconds = 1.5;
  snapshot.gauges["threads"] = 8.0;       // integral -> no decimal point
  snapshot.gauges["load"] = 0.75;         // fractional -> stays a double
  snapshot.counters["jobs"] = 12;
  JsonWriter w;
  snapshot.WriteJson(&w);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"threads\":8"), std::string::npos);
  EXPECT_EQ(json.find("\"threads\":8."), std::string::npos);
  EXPECT_EQ(json.find("8e"), std::string::npos);  // never scientific
  EXPECT_NE(json.find("\"load\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\":12"), std::string::npos);
}

TEST(MetricsSnapshotTest, LiveRegistryDiffReportsProgress) {
  MetricsRegistry registry;
  registry.GetCounter("jobs")->Increment(5);
  MetricsSnapshot first = CaptureMetricsSnapshot(registry);
  registry.GetCounter("jobs")->Increment(10);
  MetricsSnapshot second = CaptureMetricsSnapshot(registry);
  // Fake a known interval: snapshots are plain data.
  second.at_seconds = first.at_seconds + 5.0;
  auto rates = DiffRates(first, second);
  EXPECT_DOUBLE_EQ(rates.at("jobs"), 2.0);  // 10 new / 5s
}

}  // namespace
}  // namespace ems
