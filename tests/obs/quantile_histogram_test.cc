#include "obs/quantile_histogram.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(QuantileHistogramTest, EmptyReportsZeros) {
  QuantileHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min_value(), 0.0);
  EXPECT_EQ(h.max_value(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(QuantileHistogramTest, BucketZeroIsUnderflow) {
  QuantileHistogramOptions options;
  options.min_value = 1.0;
  options.max_value = 1024.0;
  QuantileHistogram h(options);
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(0.999), 0u);
  EXPECT_EQ(h.BucketIndex(-5.0), 0u);
  EXPECT_EQ(h.BucketIndex(std::nan("")), 0u);
  // min_value itself is in range, not underflow.
  EXPECT_GE(h.BucketIndex(1.0), 1u);
}

TEST(QuantileHistogramTest, BucketBoundariesAreHalfOpen) {
  QuantileHistogramOptions options;
  options.min_value = 1.0;
  options.max_value = 1024.0;
  options.buckets_per_doubling = 1;  // bounds 1, 2, 4, ..., 1024
  QuantileHistogram h(options);
  // Bucket i >= 1 covers [bound[i-1], bound[i]): a value equal to a
  // bound starts the next bucket.
  for (double v : {1.0, 2.0, 4.0, 8.0, 512.0}) {
    const size_t at = h.BucketIndex(v);
    const size_t below = h.BucketIndex(std::nextafter(v, 0.0));
    EXPECT_EQ(at, below + 1) << "bound " << v;
    EXPECT_GE(v, h.bucket_upper_bound(at - 1)) << "bound " << v;
    EXPECT_LT(v, h.bucket_upper_bound(at)) << "bound " << v;
  }
}

TEST(QuantileHistogramTest, EveryBucketHonorsItsBounds) {
  QuantileHistogram h;  // default 1e-3 .. 1e7, 8 per doubling
  // Sweep a dense range of magnitudes; the invariant
  // bound[i-1] <= v < bound[i] must hold for every in-range value.
  for (double exp = -3.0; exp < 7.0; exp += 0.0173) {
    const double v = std::pow(10.0, exp);
    const size_t i = h.BucketIndex(v);
    ASSERT_GE(i, 1u) << v;
    ASSERT_LT(i, h.num_buckets() - 1) << v;
    EXPECT_GE(v, h.bucket_upper_bound(i - 1)) << v;
    EXPECT_LT(v, h.bucket_upper_bound(i)) << v;
  }
}

TEST(QuantileHistogramTest, OverflowBucketCatchesLargeValues) {
  QuantileHistogramOptions options;
  options.min_value = 1.0;
  options.max_value = 100.0;
  QuantileHistogram h(options);
  const size_t overflow = h.num_buckets() - 1;
  EXPECT_EQ(h.BucketIndex(1e9), overflow);
  EXPECT_EQ(h.BucketIndex(h.bucket_upper_bound(overflow - 1)), overflow);
  h.Observe(1e9);
  h.Observe(2e9);
  EXPECT_EQ(h.bucket_count(overflow), 2u);
  EXPECT_EQ(std::isinf(h.bucket_upper_bound(overflow)), true);
  // Overflow quantiles report the bucket's lower edge, never infinity.
  EXPECT_EQ(h.Quantile(1.0), h.bucket_upper_bound(overflow - 1));
}

TEST(QuantileHistogramTest, TracksSumCountMinMax) {
  QuantileHistogram h;
  h.Observe(2.0);
  h.Observe(8.0);
  h.Observe(0.5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.5);
  EXPECT_DOUBLE_EQ(h.min_value(), 0.5);
  EXPECT_DOUBLE_EQ(h.max_value(), 8.0);
}

TEST(QuantileHistogramTest, QuantilesWithinBucketResolution) {
  QuantileHistogram h;
  // 1000 observations spread uniformly over [1, 101).
  for (int i = 0; i < 1000; ++i) h.Observe(1.0 + 0.1 * i);
  // The log-bucketed estimate is within one bucket (~9% relative).
  EXPECT_NEAR(h.Quantile(0.50), 51.0, 51.0 * 0.10);
  EXPECT_NEAR(h.Quantile(0.90), 91.0, 91.0 * 0.10);
  EXPECT_NEAR(h.Quantile(0.99), 100.0, 100.0 * 0.10);
  // Quantiles are monotone in q.
  EXPECT_LE(h.Quantile(0.50), h.Quantile(0.90));
  EXPECT_LE(h.Quantile(0.90), h.Quantile(0.99));
}

TEST(QuantileHistogramTest, QuantileFromBucketCountsNearestRank) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // underflow=0, [1,2)=2, [2,4)=1, overflow=1.
  const std::vector<uint64_t> counts = {0, 2, 1, 1};
  // rank(0.25 * 4) = 1 -> first observation, inside [1, 2).
  EXPECT_GT(QuantileFromBucketCounts(bounds, counts, 0.25), 1.0);
  EXPECT_LE(QuantileFromBucketCounts(bounds, counts, 0.25), 2.0);
  // rank 3 -> the [2, 4) bucket's upper bound (fraction 1 of 1).
  EXPECT_DOUBLE_EQ(QuantileFromBucketCounts(bounds, counts, 0.75), 4.0);
  // rank 4 -> overflow, reported at its lower edge.
  EXPECT_DOUBLE_EQ(QuantileFromBucketCounts(bounds, counts, 1.0), 4.0);
  // q = 0 clamps to rank 1.
  EXPECT_GT(QuantileFromBucketCounts(bounds, counts, 0.0), 1.0);
}

TEST(QuantileHistogramTest, ConcurrentObserveIsLossless) {
  QuantileHistogram h;
  constexpr int kThreads = 4;
  constexpr int kObservations = 25000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kObservations; ++i) {
        h.Observe(0.5 + t + 1e-4 * i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kObservations);
  uint64_t bucket_total = 0;
  for (size_t i = 0; i < h.num_buckets(); ++i) bucket_total += h.bucket_count(i);
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_DOUBLE_EQ(h.min_value(), 0.5);
  EXPECT_DOUBLE_EQ(h.max_value(), 0.5 + (kThreads - 1) + 1e-4 * (kObservations - 1));
}

}  // namespace
}  // namespace ems
