#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/context.h"
#include "util/json_writer.h"

namespace ems {
namespace {

TEST(TraceRecorderTest, RecordsNestingViaParentAndDepth) {
  TraceRecorder recorder;
  int32_t outer = recorder.BeginSpan("outer");
  int32_t inner = recorder.BeginSpan("inner");
  recorder.EndSpan(inner);
  int32_t sibling = recorder.BeginSpan("sibling");
  recorder.EndSpan(sibling);
  recorder.EndSpan(outer);
  int32_t root2 = recorder.BeginSpan("root2");
  recorder.EndSpan(root2);

  std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].parent, -1);
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].parent, outer);
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].parent, outer);
  EXPECT_EQ(spans[3].name, "root2");
  EXPECT_EQ(spans[3].parent, -1);
  for (const SpanRecord& s : spans) {
    EXPECT_GE(s.duration_us, 0) << s.name;
    EXPECT_GE(s.start_us, 0) << s.name;
  }
  // Children lie within the parent's window.
  EXPECT_GE(spans[1].start_us, spans[0].start_us);
  EXPECT_LE(spans[1].start_us + spans[1].duration_us,
            spans[0].start_us + spans[0].duration_us);
}

TEST(TraceRecorderTest, ScopedSpanClosesOnDestruction) {
  TraceRecorder recorder;
  {
    ScopedSpan outer(&recorder, "outer");
    ScopedSpan inner(&recorder, "inner");
  }
  std::vector<SpanRecord> spans = recorder.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_GE(spans[0].duration_us, 0);
  EXPECT_GE(spans[1].duration_us, 0);
}

TEST(TraceRecorderTest, ExplicitEndIsIdempotent) {
  TraceRecorder recorder;
  {
    ScopedSpan span(&recorder, "phase");
    span.End();
    span.End();  // second End and the destructor are no-ops
  }
  ASSERT_EQ(recorder.NumSpans(), 1u);
  EXPECT_GE(recorder.Snapshot()[0].duration_us, 0);
}

TEST(TraceRecorderTest, NullRecorderAndContextAreNoOps) {
  ScopedSpan a(static_cast<TraceRecorder*>(nullptr), "x");
  ScopedSpan b(static_cast<ObsContext*>(nullptr), "y");
  a.End();
  // Destructors must not crash.
}

TEST(TraceRecorderTest, CapsSpansAndCountsDrops) {
  TraceRecorder recorder(/*max_spans=*/2);
  int32_t a = recorder.BeginSpan("a");
  recorder.EndSpan(a);
  int32_t b = recorder.BeginSpan("b");
  recorder.EndSpan(b);
  int32_t c = recorder.BeginSpan("c");
  EXPECT_EQ(c, -1);
  recorder.EndSpan(c);  // no-op
  EXPECT_EQ(recorder.NumSpans(), 2u);
  EXPECT_EQ(recorder.dropped_spans(), 1u);
}

TEST(TraceRecorderTest, JsonTreeRoundTripsNesting) {
  TraceRecorder recorder;
  {
    ScopedSpan outer(&recorder, "match");
    ScopedSpan inner(&recorder, "ems_fixpoint");
  }
  JsonWriter w;
  recorder.WriteJson(&w);
  std::string json = w.str();
  // The inner span is nested in the outer span's children array.
  size_t outer_pos = json.find("\"match\"");
  size_t children_pos = json.find("\"children\":[", outer_pos);
  size_t inner_pos = json.find("\"ems_fixpoint\"", children_pos);
  EXPECT_NE(outer_pos, std::string::npos);
  EXPECT_NE(children_pos, std::string::npos);
  EXPECT_NE(inner_pos, std::string::npos);
}

TEST(TraceRecorderTest, ChromeTraceExportsCompleteEvents) {
  TraceRecorder recorder;
  int32_t id = recorder.BeginSpan("phase");
  recorder.EndSpan(id);
  std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"phase\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(TraceRecorderTest, RenderTreeIndentsByDepth) {
  TraceRecorder recorder;
  {
    ScopedSpan outer(&recorder, "outer");
    ScopedSpan inner(&recorder, "inner");
  }
  std::string tree = recorder.RenderTree();
  EXPECT_NE(tree.find("outer"), std::string::npos);
  EXPECT_NE(tree.find("  inner"), std::string::npos);
}

}  // namespace
}  // namespace ems
