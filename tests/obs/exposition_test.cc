#include "obs/exposition.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace ems {
namespace {

TEST(SanitizeMetricNameTest, MapsDotsAndDashesToUnderscores) {
  EXPECT_EQ(SanitizeMetricName("serve.jobs_ok"), "serve_jobs_ok");
  EXPECT_EQ(SanitizeMetricName("a-b.c d"), "a_b_c_d");
  EXPECT_EQ(SanitizeMetricName("plain"), "plain");
}

TEST(SanitizeMetricNameTest, LeadingDigitGetsPrefixed) {
  EXPECT_EQ(SanitizeMetricName("5xx.count"), "_5xx_count");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(ExpositionTest, CountersEndInTotalWithTypeLine) {
  MetricsRegistry registry;
  registry.GetCounter("serve.jobs_ok")->Increment(42);
  const std::string text = RenderExpositionText(registry);
  EXPECT_NE(text.find("# TYPE serve_jobs_ok_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_jobs_ok_total 42\n"), std::string::npos);
  // TYPE precedes the sample.
  EXPECT_LT(text.find("# TYPE serve_jobs_ok_total"),
            text.find("serve_jobs_ok_total 42"));
}

TEST(ExpositionTest, IntegralGaugesPrintWithoutExponent) {
  MetricsRegistry registry;
  registry.GetGauge("pool.threads")->Set(16.0);
  registry.GetGauge("big.value")->Set(123456789012.0);
  registry.GetGauge("load")->Set(0.5);
  const std::string text = RenderExpositionText(registry);
  EXPECT_NE(text.find("pool_threads 16\n"), std::string::npos);
  EXPECT_NE(text.find("big_value 123456789012\n"), std::string::npos);
  EXPECT_EQ(text.find("e+"), std::string::npos);
  EXPECT_NE(text.find("load 0.5\n"), std::string::npos);
}

TEST(ExpositionTest, HistogramBucketsAreCumulativeWithInf) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(100.0);  // overflow
  const std::string text = RenderExpositionText(registry);
  EXPECT_NE(text.find("# TYPE lat histogram\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 105.5\n"), std::string::npos);
}

TEST(ExpositionTest, QuantileHistogramsRenderAsSummaries) {
  MetricsRegistry registry;
  QuantileHistogram* q = registry.GetQuantileHistogram("serve.latency_ms.ok");
  for (int i = 1; i <= 100; ++i) q->Observe(static_cast<double>(i));
  const std::string text = RenderExpositionText(registry);
  EXPECT_NE(text.find("# TYPE serve_latency_ms_ok summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_ok{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_ok{quantile=\"0.9\"} "),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_ok{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_ok_count 100\n"), std::string::npos);
  EXPECT_NE(text.find("serve_latency_ms_ok_sum 5050\n"), std::string::npos);
}

TEST(ExpositionTest, EmptyRegistryRendersEmptyDocument) {
  MetricsRegistry registry;
  EXPECT_EQ(RenderExpositionText(registry), "");
}

}  // namespace
}  // namespace ems
