#include "obs/flight_recorder.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/json_writer.h"

namespace ems {
namespace {

FlightRecord Make(const std::string& id, double millis,
                  const std::string& outcome = "ok") {
  FlightRecord r;
  r.request_id = id;
  r.millis = millis;
  r.outcome = outcome;
  if (outcome != "ok") r.error = "boom";
  return r;
}

TEST(FlightRecorderTest, SlowSideKeepsLargestMillis) {
  FlightRecorder recorder(/*slow_capacity=*/3, /*failed_capacity=*/3);
  recorder.Record(Make("a", 10));
  recorder.Record(Make("b", 50));
  recorder.Record(Make("c", 30));
  recorder.Record(Make("d", 5));   // slower than nothing retained: evicted
  recorder.Record(Make("e", 40));  // evicts a (10ms, the current min)
  std::vector<FlightRecord> slow = recorder.Slowest();
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0].request_id, "b");  // slowest first
  EXPECT_EQ(slow[1].request_id, "e");
  EXPECT_EQ(slow[2].request_id, "c");
  EXPECT_EQ(recorder.records_seen(), 5u);
}

TEST(FlightRecorderTest, SlowTieBreaksTowardNewer) {
  FlightRecorder recorder(/*slow_capacity=*/2, /*failed_capacity=*/2);
  recorder.Record(Make("old", 10));
  recorder.Record(Make("mid", 10));
  recorder.Record(Make("new", 10));  // same millis: newer replaces oldest
  std::vector<FlightRecord> slow = recorder.Slowest();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].request_id, "new");
  EXPECT_EQ(slow[1].request_id, "mid");
}

TEST(FlightRecorderTest, FailureSideKeepsMostRecent) {
  FlightRecorder recorder(/*slow_capacity=*/8, /*failed_capacity=*/2);
  recorder.Record(Make("f1", 1, "error"));
  recorder.Record(Make("ok1", 100, "ok"));  // not a failure
  recorder.Record(Make("f2", 2, "error"));
  recorder.Record(Make("f3", 3, "error"));  // evicts f1 (oldest)
  std::vector<FlightRecord> failures = recorder.RecentFailures();
  ASSERT_EQ(failures.size(), 2u);
  EXPECT_EQ(failures[0].request_id, "f3");  // most recent first
  EXPECT_EQ(failures[1].request_id, "f2");
  EXPECT_EQ(failures[0].error, "boom");
}

TEST(FlightRecorderTest, SlowAndFailedSidesAreIndependent) {
  FlightRecorder recorder(/*slow_capacity=*/1, /*failed_capacity=*/1);
  recorder.Record(Make("slow-ok", 500, "ok"));
  recorder.Record(Make("fast-err", 1, "error"));
  ASSERT_EQ(recorder.Slowest().size(), 1u);
  EXPECT_EQ(recorder.Slowest()[0].request_id, "slow-ok");
  ASSERT_EQ(recorder.RecentFailures().size(), 1u);
  EXPECT_EQ(recorder.RecentFailures()[0].request_id, "fast-err");
}

TEST(FlightRecorderTest, ZeroCapacityRetainsNothing) {
  FlightRecorder recorder(/*slow_capacity=*/0, /*failed_capacity=*/0);
  recorder.Record(Make("a", 10, "error"));
  EXPECT_TRUE(recorder.Slowest().empty());
  EXPECT_TRUE(recorder.RecentFailures().empty());
  EXPECT_EQ(recorder.records_seen(), 1u);
}

TEST(FlightRecorderTest, WriteJsonEmitsBothSidesWithSpans) {
  FlightRecorder recorder(/*slow_capacity=*/2, /*failed_capacity=*/2);
  FlightRecord r = Make("req-1", 25, "error");
  SpanRecord span;
  span.name = "load_logs";
  span.parent = -1;
  span.duration_us = 1500;
  r.spans.push_back(span);
  recorder.Record(std::move(r));
  JsonWriter w;
  recorder.WriteJson(&w);
  const std::string json = w.str();
  EXPECT_NE(json.find("\"records_seen\":1"), std::string::npos);
  EXPECT_NE(json.find("\"slowest\""), std::string::npos);
  EXPECT_NE(json.find("\"recent_failures\""), std::string::npos);
  EXPECT_NE(json.find("\"req-1\""), std::string::npos);
  EXPECT_NE(json.find("\"load_logs\""), std::string::npos);
  EXPECT_NE(json.find("\"boom\""), std::string::npos);
}

}  // namespace
}  // namespace ems
