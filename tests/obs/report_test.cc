#include "obs/report.h"

#include <gtest/gtest.h>

#include "obs/context.h"

namespace ems {
namespace {

TEST(StatsAccumulationTest, EmsStatsAddSumsEveryField) {
  EmsStats a;
  a.iterations = 3;
  a.formula_evaluations = 10;
  a.pairs_pruned_converged = 4;
  EmsStats b;
  b.iterations = 2;
  b.formula_evaluations = 7;
  b.pairs_pruned_converged = 1;
  a.Add(b);
  EXPECT_EQ(a.iterations, 5);
  EXPECT_EQ(a.formula_evaluations, 17u);
  EXPECT_EQ(a.pairs_pruned_converged, 5u);
}

TEST(StatsAccumulationTest, CompositeStatsAddAndAddEmsRunAreConsistent) {
  CompositeStats s;
  EmsStats run;
  run.iterations = 4;
  run.formula_evaluations = 100;
  run.pairs_pruned_converged = 6;
  s.AddEmsRun(run);
  s.AddEmsRun(run);
  // AddEmsRun keeps the Figure-12 top-level counter and the nested
  // aggregate in lock-step.
  EXPECT_EQ(s.formula_evaluations, 200u);
  EXPECT_EQ(s.ems.formula_evaluations, 200u);
  EXPECT_EQ(s.ems.iterations, 8);
  EXPECT_EQ(s.ems.pairs_pruned_converged, 12u);

  CompositeStats t;
  t.candidates_evaluated = 3;
  t.candidates_pruned_by_bound = 1;
  t.merges_accepted = 2;
  t.rows_frozen = 9;
  t.AddEmsRun(run);
  s.Add(t);
  EXPECT_EQ(s.formula_evaluations, 300u);
  EXPECT_EQ(s.ems.formula_evaluations, 300u);
  EXPECT_EQ(s.candidates_evaluated, 3);
  EXPECT_EQ(s.candidates_pruned_by_bound, 1);
  EXPECT_EQ(s.merges_accepted, 2);
  EXPECT_EQ(s.rows_frozen, 9u);
}

TEST(PipelineReportTest, JsonMergesSpansMetricsAndStats) {
  ObsContext obs;
  {
    ScopedSpan span(&obs, "match");
    ScopedSpan inner(&obs, "ems_fixpoint");
  }
  ObsIncrement(&obs, "ems.iterations", 5);
  ObsSetGauge(&obs, "graph.nodes_left", 12);

  EmsStats ems_stats;
  ems_stats.iterations = 5;
  ems_stats.formula_evaluations = 68;
  ems_stats.pairs_pruned_converged = 9;
  CompositeStats composite_stats;
  composite_stats.candidates_evaluated = 2;

  PipelineReport report =
      BuildPipelineReport(&obs, ems_stats, composite_stats, 12.5);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"total_millis\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"match\""), std::string::npos);
  EXPECT_NE(json.find("\"ems_fixpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"ems.iterations\":5"), std::string::npos);
  EXPECT_NE(json.find("\"graph.nodes_left\":12"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":5"), std::string::npos);
  EXPECT_NE(json.find("\"formula_evaluations\":68"), std::string::npos);
  EXPECT_NE(json.find("\"pairs_pruned_converged\":9"), std::string::npos);
  EXPECT_NE(json.find("\"candidates_evaluated\":2"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\":0"), std::string::npos);
}

TEST(PipelineReportTest, NullContextStillProducesValidStatsOnlyJson) {
  EmsStats ems_stats;
  ems_stats.iterations = 1;
  PipelineReport report =
      BuildPipelineReport(nullptr, ems_stats, CompositeStats{}, 1.0);
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"spans\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{}"), std::string::npos);
  EXPECT_NE(json.find("\"iterations\":1"), std::string::npos);
  EXPECT_EQ(report.ToChromeTraceJson(), "{}");
}

TEST(PipelineReportTest, RenderTextShowsTotalsAndTree) {
  ObsContext obs;
  {
    ScopedSpan span(&obs, "match");
  }
  EmsStats ems_stats;
  ems_stats.iterations = 3;
  PipelineReport report =
      BuildPipelineReport(&obs, ems_stats, CompositeStats{}, 2.0);
  std::string text = report.RenderText();
  EXPECT_NE(text.find("total: 2.000 ms"), std::string::npos);
  EXPECT_NE(text.find("3 iterations"), std::string::npos);
  EXPECT_NE(text.find("match"), std::string::npos);
}

}  // namespace
}  // namespace ems
