#include "synth/dataset.h"

#include <set>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(MakeLogPairTest, DeterministicForSeed) {
  PairOptions opts;
  opts.seed = 77;
  LogPair a = MakeLogPair(Testbed::kDsB, opts);
  LogPair b = MakeLogPair(Testbed::kDsB, opts);
  EXPECT_EQ(a.log1.NumTraces(), b.log1.NumTraces());
  EXPECT_EQ(a.log2.NumEvents(), b.log2.NumEvents());
  EXPECT_EQ(a.truth.size(), b.truth.size());
  EXPECT_EQ(a.truth.Links(), b.truth.Links());
}

TEST(MakeLogPairTest, OpaqueRenamingApplied) {
  PairOptions opts;
  opts.seed = 5;
  opts.opaque = true;
  opts.opaque_fraction = 1.0;  // fully opaque
  LogPair pair = MakeLogPair(Testbed::kDsF, opts);
  for (const std::string& name : pair.log2.event_names()) {
    EXPECT_EQ(name.rfind("ev_", 0), 0u) << name;
  }
  // Log 1 names untouched.
  for (const std::string& name : pair.log1.event_names()) {
    EXPECT_EQ(name.rfind("act_", 0), 0u) << name;
  }
}

TEST(MakeLogPairTest, PartialOpacityKeepsSomeTypographicSignal) {
  PairOptions opts;
  opts.seed = 5;
  opts.opaque = true;
  opts.opaque_fraction = 0.3;
  LogPair pair = MakeLogPair(Testbed::kDsF, opts);
  size_t opaque = 0;
  for (const std::string& name : pair.log2.event_names()) {
    if (name.rfind("ev_", 0) == 0) ++opaque;
  }
  EXPECT_GT(opaque, 0u);
  EXPECT_LT(opaque, pair.log2.NumEvents());
}

TEST(MakeLogPairTest, TruthLinksRespectVocabularies) {
  PairOptions opts;
  opts.seed = 6;
  opts.dislocation = 3;
  LogPair pair = MakeLogPair(Testbed::kDsB, opts);
  std::set<std::string> vocab1(pair.log1.event_names().begin(),
                               pair.log1.event_names().end());
  std::set<std::string> vocab2(pair.log2.event_names().begin(),
                               pair.log2.event_names().end());
  for (const auto& [l, r] : pair.truth.Links()) {
    EXPECT_TRUE(vocab1.count(l)) << l;
    EXPECT_TRUE(vocab2.count(r)) << r;
  }
  EXPECT_GT(pair.truth.size(), 0u);
}

TEST(MakeLogPairTest, DislocationShortensTraces) {
  PairOptions opts;
  opts.seed = 7;
  opts.dislocation = 0;
  LogPair base = MakeLogPair(Testbed::kDsB, opts);
  opts.dislocation = 2;
  LogPair dislocated = MakeLogPair(Testbed::kDsB, opts);
  EXPECT_LT(dislocated.log2.TotalOccurrences(),
            base.log2.TotalOccurrences());
  EXPECT_EQ(dislocated.log1.TotalOccurrences(),
            base.log1.TotalOccurrences());
}

TEST(MakeLogPairTest, CompositesProduceComplexTruth) {
  PairOptions opts;
  opts.seed = 8;
  opts.num_composites = 2;
  opts.dislocation = 0;
  LogPair pair = MakeLogPair(Testbed::kDsFB, opts);
  if (!pair.has_composites) GTEST_SKIP() << "no strict SEQ pair in this seed";
  size_t complex_count = 0;
  for (const TruthEntry& e : pair.truth.entries()) {
    if (e.left.size() > 1) {
      ++complex_count;
      EXPECT_EQ(e.right.size(), 1u);
    }
  }
  EXPECT_GT(complex_count, 0u);
}

TEST(RealisticDatasetTest, GroupSizesMatchRequest) {
  RealisticDatasetOptions opts;
  opts.ds_f_pairs = 3;
  opts.ds_b_pairs = 2;
  opts.ds_fb_pairs = 4;
  opts.composite_pairs = 2;
  opts.num_traces = 40;
  RealisticDataset ds = MakeRealisticDataset(opts);
  EXPECT_EQ(ds.ds_f.size(), 3u);
  EXPECT_EQ(ds.ds_b.size(), 2u);
  EXPECT_EQ(ds.ds_fb.size(), 4u);
  EXPECT_EQ(ds.composite.size(), 2u);
  EXPECT_EQ(ds.Singleton().size(), 9u);
}

TEST(RealisticDatasetTest, DefaultsReproduceThePaperCounts) {
  RealisticDatasetOptions opts;
  // Keep the full counts but shrink the per-pair work.
  opts.num_traces = 10;
  opts.min_activities = 5;
  opts.max_activities = 8;
  RealisticDataset ds = MakeRealisticDataset(opts);
  EXPECT_EQ(ds.ds_f.size() + ds.ds_b.size() + ds.ds_fb.size(), 103u);
  EXPECT_EQ(ds.composite.size(), 46u);
}

TEST(ScalabilityPairsTest, SizesAndIdentityTruth) {
  std::vector<LogPair> pairs = MakeScalabilityPairs(15, 3, 99);
  ASSERT_EQ(pairs.size(), 3u);
  for (const LogPair& p : pairs) {
    EXPECT_LE(p.log1.NumEvents(), 15u);
    // Identity truth: all links are (x, x).
    for (const auto& [l, r] : p.truth.Links()) EXPECT_EQ(l, r);
    EXPECT_GT(p.truth.size(), 0u);
  }
}

TEST(DislocationPairTest, RemovesRequestedPrefix) {
  LogPair p0 = MakeDislocationPair(20, 0, 13);
  LogPair p3 = MakeDislocationPair(20, 3, 13);
  EXPECT_LT(p3.log2.TotalOccurrences(), p0.log2.TotalOccurrences());
  EXPECT_EQ(p3.name, "disl/m=3");
}

TEST(TestbedNameTest, AllNamed) {
  EXPECT_STREQ(TestbedName(Testbed::kDsF), "DS-F");
  EXPECT_STREQ(TestbedName(Testbed::kDsB), "DS-B");
  EXPECT_STREQ(TestbedName(Testbed::kDsFB), "DS-FB");
}

}  // namespace
}  // namespace ems
