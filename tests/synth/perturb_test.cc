#include "synth/perturb.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

EventLog BaseLog() {
  EventLog log;
  log.AddTrace({"a", "b", "c", "d"});
  log.AddTrace({"a", "c", "d"});
  log.AddTrace({"b", "c"});
  return log;
}

TEST(OpaqueRenameTest, RenamesEverythingConsistently) {
  EventLog log = BaseLog();
  Rng rng(1);
  std::map<std::string, std::string> renames;
  EventLog out = OpaqueRename(log, &rng, &renames);
  EXPECT_EQ(out.NumTraces(), log.NumTraces());
  EXPECT_EQ(out.NumEvents(), log.NumEvents());
  EXPECT_EQ(renames.size(), log.NumEvents());
  for (const auto& [old_name, new_name] : renames) {
    EXPECT_NE(old_name, new_name);
    EXPECT_EQ(new_name.rfind("ev_", 0), 0u);
    EXPECT_EQ(out.FindEvent(old_name), kInvalidEvent);
    EXPECT_NE(out.FindEvent(new_name), kInvalidEvent);
  }
  // Structure preserved: trace lengths identical, mapping consistent.
  for (size_t i = 0; i < log.NumTraces(); ++i) {
    ASSERT_EQ(out.trace(i).size(), log.trace(i).size());
    for (size_t j = 0; j < log.trace(i).size(); ++j) {
      EXPECT_EQ(out.EventName(out.trace(i)[j]),
                renames.at(log.EventName(log.trace(i)[j])));
    }
  }
}

TEST(RemoveHeadEventsTest, DropsPrefix) {
  EventLog log = BaseLog();
  EventLog out = RemoveHeadEvents(log, 1);
  ASSERT_EQ(out.NumTraces(), 3u);
  EXPECT_EQ(out.trace(0).size(), 3u);
  EXPECT_EQ(out.EventName(out.trace(0)[0]), "b");
  EXPECT_EQ(out.EventName(out.trace(1)[0]), "c");
}

TEST(RemoveHeadEventsTest, VocabularyShrinksWhenEventVanishes) {
  EventLog log;
  log.AddTrace({"x", "y"});
  log.AddTrace({"x", "z"});
  EventLog out = RemoveHeadEvents(log, 1);
  EXPECT_EQ(out.FindEvent("x"), kInvalidEvent);
  EXPECT_NE(out.FindEvent("y"), kInvalidEvent);
}

TEST(RemoveHeadEventsTest, MLargerThanTraceYieldsEmpty) {
  EventLog log;
  log.AddTrace({"a", "b"});
  EventLog out = RemoveHeadEvents(log, 10);
  ASSERT_EQ(out.NumTraces(), 1u);
  EXPECT_TRUE(out.trace(0).empty());
}

TEST(RemoveTailEventsTest, DropsSuffix) {
  EventLog log = BaseLog();
  EventLog out = RemoveTailEvents(log, 2);
  EXPECT_EQ(out.trace(0).size(), 2u);
  EXPECT_EQ(out.EventName(out.trace(0)[1]), "b");
  EXPECT_EQ(out.trace(2).size(), 0u);
}

TEST(RemoveZeroEventsIsIdentity, BothDirections) {
  EventLog log = BaseLog();
  EventLog head = RemoveHeadEvents(log, 0);
  EventLog tail = RemoveTailEvents(log, 0);
  EXPECT_EQ(head.TotalOccurrences(), log.TotalOccurrences());
  EXPECT_EQ(tail.TotalOccurrences(), log.TotalOccurrences());
}

TEST(MergeConsecutivePairTest, ReplacesAdjacentPair) {
  EventLog log;
  log.AddTrace({"a", "c", "d", "b"});
  log.AddTrace({"c", "d"});
  EventLog out = MergeConsecutivePair(log, "c", "d", "cd");
  ASSERT_EQ(out.NumTraces(), 2u);
  EXPECT_EQ(out.trace(0).size(), 3u);
  EXPECT_EQ(out.EventName(out.trace(0)[1]), "cd");
  EXPECT_EQ(out.trace(1).size(), 1u);
  EXPECT_EQ(out.FindEvent("c"), kInvalidEvent);
  EXPECT_EQ(out.FindEvent("d"), kInvalidEvent);
}

TEST(MergeConsecutivePairTest, NonAdjacentOccurrencesSurvive) {
  EventLog log;
  log.AddTrace({"c", "x", "d"});
  EventLog out = MergeConsecutivePair(log, "c", "d", "cd");
  EXPECT_NE(out.FindEvent("c"), kInvalidEvent);
  EXPECT_NE(out.FindEvent("d"), kInvalidEvent);
  EXPECT_EQ(out.FindEvent("cd"), kInvalidEvent);
}

TEST(MergeConsecutivePairTest, MissingEventsNoOp) {
  EventLog log = BaseLog();
  EventLog out = MergeConsecutivePair(log, "nope", "d", "x");
  EXPECT_EQ(out.TotalOccurrences(), log.TotalOccurrences());
}

TEST(AddSwapNoiseTest, ZeroProbabilityIsIdentity) {
  EventLog log = BaseLog();
  Rng rng(2);
  EventLog out = AddSwapNoise(log, 0.0, &rng);
  for (size_t i = 0; i < log.NumTraces(); ++i) {
    for (size_t j = 0; j < log.trace(i).size(); ++j) {
      EXPECT_EQ(out.EventName(out.trace(i)[j]),
                log.EventName(log.trace(i)[j]));
    }
  }
}

TEST(AddSwapNoiseTest, PreservesMultiset) {
  EventLog log = BaseLog();
  Rng rng(3);
  EventLog out = AddSwapNoise(log, 0.5, &rng);
  EXPECT_EQ(out.TotalOccurrences(), log.TotalOccurrences());
  for (size_t i = 0; i < log.NumTraces(); ++i) {
    EXPECT_EQ(out.trace(i).size(), log.trace(i).size());
  }
}

TEST(AddDropNoiseTest, FullProbabilityEmptiesLog) {
  EventLog log = BaseLog();
  Rng rng(4);
  EventLog out = AddDropNoise(log, 1.0, &rng);
  EXPECT_EQ(out.TotalOccurrences(), 0u);
  EXPECT_EQ(out.NumTraces(), log.NumTraces());
}

TEST(AddDropNoiseTest, PartialDropShrinks) {
  EventLog log = BaseLog();
  Rng rng(5);
  EventLog out = AddDropNoise(log, 0.5, &rng);
  EXPECT_LT(out.TotalOccurrences(), log.TotalOccurrences());
}

}  // namespace
}  // namespace ems
