#include "synth/process_tree.h"

#include <set>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(ProcessTreeTest, ExactActivityCount) {
  for (int n : {1, 2, 5, 20, 100}) {
    Rng rng(static_cast<uint64_t>(n));
    ProcessTreeOptions opts;
    opts.num_activities = n;
    auto tree = GenerateProcessTree(opts, &rng);
    EXPECT_EQ(tree->CountActivities(), static_cast<size_t>(n));
  }
}

TEST(ProcessTreeTest, ActivitiesAreDistinctAndPrefixed) {
  Rng rng(42);
  ProcessTreeOptions opts;
  opts.num_activities = 30;
  opts.activity_prefix = "step_";
  auto tree = GenerateProcessTree(opts, &rng);
  std::vector<std::string> names;
  tree->CollectActivities(&names);
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto& n : names) {
    EXPECT_EQ(n.rfind("step_", 0), 0u) << n;
  }
}

TEST(ProcessTreeTest, DeterministicForSeed) {
  ProcessTreeOptions opts;
  opts.num_activities = 15;
  Rng rng1(5), rng2(5);
  auto a = GenerateProcessTree(opts, &rng1);
  auto b = GenerateProcessTree(opts, &rng2);
  EXPECT_EQ(a->ToString(), b->ToString());
}

TEST(ProcessTreeTest, DifferentSeedsProduceDifferentTrees) {
  ProcessTreeOptions opts;
  opts.num_activities = 15;
  Rng rng1(5), rng2(6);
  auto a = GenerateProcessTree(opts, &rng1);
  auto b = GenerateProcessTree(opts, &rng2);
  EXPECT_NE(a->ToString(), b->ToString());
}

TEST(ProcessTreeTest, SingleActivityIsLeaf) {
  Rng rng(1);
  ProcessTreeOptions opts;
  opts.num_activities = 1;
  auto tree = GenerateProcessTree(opts, &rng);
  EXPECT_EQ(tree->op, ProcessOp::kActivity);
  EXPECT_EQ(tree->ToString(), "act_0");
}

void CheckStructure(const ProcessNode& node) {
  if (node.op == ProcessOp::kActivity) {
    EXPECT_TRUE(node.children.empty());
    EXPECT_FALSE(node.activity.empty());
    return;
  }
  EXPECT_GE(node.children.size(), 2u);
  if (node.op == ProcessOp::kLoop) {
    EXPECT_EQ(node.children.size(), 2u);
  }
  for (const auto& child : node.children) CheckStructure(*child);
}

TEST(ProcessTreeTest, StructuralInvariants) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    ProcessTreeOptions opts;
    opts.num_activities = 25;
    auto tree = GenerateProcessTree(opts, &rng);
    CheckStructure(*tree);
  }
}

TEST(ProcessTreeTest, ToStringMentionsOperators) {
  Rng rng(3);
  ProcessTreeOptions opts;
  opts.num_activities = 40;
  auto tree = GenerateProcessTree(opts, &rng);
  std::string s = tree->ToString();
  // A 40-activity tree virtually always includes a SEQ.
  EXPECT_NE(s.find("SEQ("), std::string::npos);
}

}  // namespace
}  // namespace ems
