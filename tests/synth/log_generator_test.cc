#include "synth/log_generator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace ems {
namespace {

std::unique_ptr<ProcessNode> Leaf(const std::string& name) {
  auto n = std::make_unique<ProcessNode>();
  n->op = ProcessOp::kActivity;
  n->activity = name;
  return n;
}

std::unique_ptr<ProcessNode> Op(ProcessOp op,
                                std::vector<std::unique_ptr<ProcessNode>>
                                    children) {
  auto n = std::make_unique<ProcessNode>();
  n->op = op;
  n->children = std::move(children);
  return n;
}

TEST(PlayoutTest, SequenceEmitsInOrder) {
  std::vector<std::unique_ptr<ProcessNode>> kids;
  kids.push_back(Leaf("a"));
  kids.push_back(Leaf("b"));
  kids.push_back(Leaf("c"));
  auto tree = Op(ProcessOp::kSequence, std::move(kids));
  Rng rng(1);
  auto trace = PlayoutTrace(*tree, {}, &rng);
  EXPECT_EQ(trace, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(PlayoutTest, XorPicksExactlyOneBranch) {
  std::vector<std::unique_ptr<ProcessNode>> kids;
  kids.push_back(Leaf("a"));
  kids.push_back(Leaf("b"));
  auto tree = Op(ProcessOp::kXor, std::move(kids));
  Rng rng(2);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) {
    auto trace = PlayoutTrace(*tree, {}, &rng);
    ASSERT_EQ(trace.size(), 1u);
    seen.insert(trace[0]);
  }
  EXPECT_EQ(seen, (std::set<std::string>{"a", "b"}));
}

TEST(PlayoutTest, AndEmitsAllChildrenInterleaved) {
  std::vector<std::unique_ptr<ProcessNode>> left;
  left.push_back(Leaf("a1"));
  left.push_back(Leaf("a2"));
  std::vector<std::unique_ptr<ProcessNode>> kids;
  kids.push_back(Op(ProcessOp::kSequence, std::move(left)));
  kids.push_back(Leaf("b"));
  auto tree = Op(ProcessOp::kAnd, std::move(kids));
  Rng rng(3);
  bool saw_interleaving = false;
  for (int i = 0; i < 200; ++i) {
    auto trace = PlayoutTrace(*tree, {}, &rng);
    ASSERT_EQ(trace.size(), 3u);
    // Multiset must be {a1, a2, b} with a1 before a2.
    auto a1 = std::find(trace.begin(), trace.end(), "a1");
    auto a2 = std::find(trace.begin(), trace.end(), "a2");
    ASSERT_NE(a1, trace.end());
    ASSERT_NE(a2, trace.end());
    EXPECT_LT(a1 - trace.begin(), a2 - trace.begin());
    if (trace[1] == "b") saw_interleaving = true;  // b between a1 and a2
  }
  EXPECT_TRUE(saw_interleaving);
}

TEST(PlayoutTest, LoopRepeatsBody) {
  std::vector<std::unique_ptr<ProcessNode>> kids;
  kids.push_back(Leaf("body"));
  kids.push_back(Leaf("redo"));
  auto tree = Op(ProcessOp::kLoop, std::move(kids));
  PlayoutOptions opts;
  opts.loop_repeat_probability = 0.9;
  opts.max_loop_rounds = 3;
  Rng rng(4);
  size_t max_len = 0;
  for (int i = 0; i < 100; ++i) {
    auto trace = PlayoutTrace(*tree, opts, &rng);
    // Pattern: body (redo body)* with at most 3 rounds -> length <= 7.
    ASSERT_GE(trace.size(), 1u);
    EXPECT_LE(trace.size(), 7u);
    EXPECT_EQ(trace.front(), "body");
    EXPECT_EQ(trace.back(), "body");
    max_len = std::max(max_len, trace.size());
  }
  EXPECT_GT(max_len, 1u);  // with p=0.9 some loops must run
}

TEST(PlayoutTest, LoopZeroProbabilityPlaysBodyOnce) {
  std::vector<std::unique_ptr<ProcessNode>> kids;
  kids.push_back(Leaf("body"));
  kids.push_back(Leaf("redo"));
  auto tree = Op(ProcessOp::kLoop, std::move(kids));
  PlayoutOptions opts;
  opts.loop_repeat_probability = 0.0;
  Rng rng(5);
  auto trace = PlayoutTrace(*tree, opts, &rng);
  EXPECT_EQ(trace, (std::vector<std::string>{"body"}));
}

TEST(PlayoutTest, LogHasRequestedTraces) {
  Rng tree_rng(6);
  ProcessTreeOptions tree_opts;
  tree_opts.num_activities = 12;
  auto tree = GenerateProcessTree(tree_opts, &tree_rng);
  PlayoutOptions opts;
  opts.num_traces = 57;
  Rng rng(7);
  EventLog log = PlayoutLog(*tree, opts, &rng);
  EXPECT_EQ(log.NumTraces(), 57u);
  EXPECT_GT(log.NumEvents(), 0u);
  EXPECT_LE(log.NumEvents(), 12u);
}

TEST(PlayoutTest, DeterministicForSeed) {
  Rng tree_rng(8);
  ProcessTreeOptions tree_opts;
  tree_opts.num_activities = 10;
  auto tree = GenerateProcessTree(tree_opts, &tree_rng);
  PlayoutOptions opts;
  opts.num_traces = 20;
  Rng r1(9), r2(9);
  EventLog a = PlayoutLog(*tree, opts, &r1);
  EventLog b = PlayoutLog(*tree, opts, &r2);
  ASSERT_EQ(a.NumTraces(), b.NumTraces());
  for (size_t i = 0; i < a.NumTraces(); ++i) {
    ASSERT_EQ(a.trace(i).size(), b.trace(i).size());
    for (size_t j = 0; j < a.trace(i).size(); ++j) {
      EXPECT_EQ(a.EventName(a.trace(i)[j]), b.EventName(b.trace(i)[j]));
    }
  }
}

}  // namespace
}  // namespace ems
