#include "baselines/ged.h"
#include <set>

#include <gtest/gtest.h>

#include "paper_example.h"
#include "text/label_similarity.h"

namespace ems {
namespace {

DependencyGraph NoArtificial(const EventLog& log) {
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  return DependencyGraph::Build(log, opts);
}

TEST(GedTest, IdenticalGraphsWithLabelsMapIdentity) {
  DependencyGraph g = NoArtificial(testing::BuildPaperLog2());
  GedOptions opts;
  QGramCosineSimilarity qgram;
  opts.label_measure = &qgram;
  GedResult result = ComputeGedMatching(g, g, opts);
  ASSERT_EQ(result.mapping.size(), g.NumNodes());
  for (size_t i = 0; i < result.mapping.size(); ++i) {
    EXPECT_EQ(result.mapping[i], static_cast<int>(i));
  }
  EXPECT_NEAR(result.distance, 0.0, 1e-9);
}

TEST(GedTest, DistanceOfEmptyMappingIsMaximal) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  std::vector<int> empty(g1.NumNodes(), -1);
  double d = GedDistance(g1, g2, empty);
  // All nodes and edges skipped; substitution term 0 => (1 + 1 + 0) / 3.
  EXPECT_NEAR(d, 2.0 / 3.0, 1e-9);
}

TEST(GedTest, GreedyNeverWorseThanEmptyMapping) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  GedResult result = ComputeGedMatching(g1, g2);
  std::vector<int> empty(g1.NumNodes(), -1);
  EXPECT_LE(result.distance, GedDistance(g1, g2, empty) + 1e-12);
}

TEST(GedTest, ReportedDistanceMatchesRecomputation) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  GedResult result = ComputeGedMatching(g1, g2);
  EXPECT_NEAR(result.distance, GedDistance(g1, g2, result.mapping), 1e-9);
}

TEST(GedTest, MappingIsInjective) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  GedResult result = ComputeGedMatching(g1, g2);
  std::set<int> used;
  for (int m : result.mapping) {
    if (m < 0) continue;
    EXPECT_TRUE(used.insert(m).second);
  }
}

TEST(GedTest, WeightsShiftTheTradeoff) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  GedOptions skip_heavy;
  skip_heavy.weight_skip_nodes = 10.0;
  GedResult eager = ComputeGedMatching(g1, g2, skip_heavy);
  GedOptions sub_heavy;
  sub_heavy.weight_substitution = 10.0;
  GedResult reluctant = ComputeGedMatching(g1, g2, sub_heavy);
  size_t eager_mapped = 0, reluctant_mapped = 0;
  for (int m : eager.mapping) eager_mapped += m >= 0;
  for (int m : reluctant.mapping) reluctant_mapped += m >= 0;
  EXPECT_GE(eager_mapped, reluctant_mapped);
}

TEST(GedTest, NodeSimilarityMatrixExposed) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  GedResult result = ComputeGedMatching(g1, g2);
  ASSERT_EQ(result.node_similarity.size(), g1.NumNodes());
  ASSERT_EQ(result.node_similarity[0].size(), g2.NumNodes());
  for (const auto& row : result.node_similarity) {
    for (double v : row) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(GedTest, EmptyGraphs) {
  EventLog empty;
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  DependencyGraph g = DependencyGraph::Build(empty, opts);
  GedResult result = ComputeGedMatching(g, g);
  EXPECT_TRUE(result.mapping.empty());
}

}  // namespace
}  // namespace ems
