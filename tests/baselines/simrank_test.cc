#include "baselines/simrank.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

DependencyGraph NoArtificial(const EventLog& log) {
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  return DependencyGraph::Build(log, opts);
}

TEST(SimRankTest, ValuesInUnitInterval) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  SimilarityMatrix s = ComputeSimRank(g1, g2);
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(s.rows()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(s.cols()); ++v2) {
      EXPECT_GE(s.at(v1, v2), 0.0);
      EXPECT_LE(s.at(v1, v2), 1.0);
    }
  }
}

TEST(SimRankTest, SourcePairsPinnedAtOne) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  SimilarityMatrix s = ComputeSimRank(g1, g2);
  // PaidCash and PaidCredit are sources of G1; OrderAccepted of G2.
  NodeId src1 = -1, src2 = -1;
  for (NodeId v = 0; v < static_cast<NodeId>(g1.NumNodes()); ++v) {
    if (g1.NodeName(v) == "PaidCash") src1 = v;
  }
  for (NodeId v = 0; v < static_cast<NodeId>(g2.NumNodes()); ++v) {
    if (g2.NodeName(v) == "OrderAccepted") src2 = v;
  }
  ASSERT_GE(src1, 0);
  ASSERT_GE(src2, 0);
  EXPECT_DOUBLE_EQ(s.at(src1, src2), 1.0);
}

TEST(SimRankTest, SourceVersusNonSourceIsZero) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  SimilarityMatrix s = ComputeSimRank(g1, g2);
  NodeId src1 = -1, mid2 = -1;
  for (NodeId v = 0; v < static_cast<NodeId>(g1.NumNodes()); ++v) {
    if (g1.NodeName(v) == "PaidCash") src1 = v;
  }
  for (NodeId v = 0; v < static_cast<NodeId>(g2.NumNodes()); ++v) {
    if (g2.NodeName(v) == "Delivery") mid2 = v;
  }
  ASSERT_GE(src1, 0);
  ASSERT_GE(mid2, 0);
  EXPECT_DOUBLE_EQ(s.at(src1, mid2), 0.0);
}

TEST(SimRankTest, DecayConstantScalesScores) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  SimRankOptions high, low;
  high.c = 0.9;
  low.c = 0.3;
  SimilarityMatrix s_high = ComputeSimRank(g1, g2, high);
  SimilarityMatrix s_low = ComputeSimRank(g1, g2, low);
  // Non-source pairs scale with c.
  double any_high = 0.0, any_low = 0.0;
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(s_high.rows()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(s_high.cols()); ++v2) {
      any_high += s_high.at(v1, v2);
      any_low += s_low.at(v1, v2);
    }
  }
  EXPECT_GT(any_high, any_low);
}

TEST(SimRankTest, ConvergesOnCyclicGraphs) {
  // G1's E <-> F cycle must not prevent termination.
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  SimilarityMatrix s = ComputeSimRank(g1, g1);
  EXPECT_GT(s.at(0, 0), 0.0);
}

}  // namespace
}  // namespace ems
