#include "baselines/flooding.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

DependencyGraph NoArtificial(const EventLog& log) {
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  return DependencyGraph::Build(log, opts);
}

TEST(FloodingTest, ValuesNormalizedToUnitInterval) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  SimilarityMatrix s = ComputeSimilarityFlooding(g1, g2);
  double max_value = 0.0;
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(s.rows()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(s.cols()); ++v2) {
      EXPECT_GE(s.at(v1, v2), 0.0);
      EXPECT_LE(s.at(v1, v2), 1.0);
      max_value = std::max(max_value, s.at(v1, v2));
    }
  }
  EXPECT_NEAR(max_value, 1.0, 1e-9);  // normalized by the maximum
}

TEST(FloodingTest, SeededIdenticalGraphsDiagonalDominant) {
  // Similarity flooding is seed-driven ([14] computes sigma^0 from a
  // string matcher); with an identity-favoring seed on identical graphs
  // the diagonal must stay dominant after flooding.
  DependencyGraph g = NoArtificial(testing::BuildPaperLog2());
  std::vector<std::vector<double>> seed(
      g.NumNodes(), std::vector<double>(g.NumNodes(), 0.2));
  for (size_t i = 0; i < g.NumNodes(); ++i) seed[i][i] = 1.0;
  SimilarityMatrix s = ComputeSimilarityFlooding(g, g, {}, &seed);
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    for (NodeId u = 0; u < static_cast<NodeId>(g.NumNodes()); ++u) {
      if (u == v) continue;
      EXPECT_GE(s.at(v, v) + 1e-9, s.at(v, u))
          << "row " << v << " prefers " << u;
    }
  }
}

TEST(FloodingTest, UnseededFloodingStillStructured) {
  // Without a seed the scores are structure-only; they must not be
  // uniform (flooding differentiates by connectivity).
  DependencyGraph g = NoArtificial(testing::BuildPaperLog2());
  SimilarityMatrix s = ComputeSimilarityFlooding(g, g);
  double min_v = 1.0, max_v = 0.0;
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    for (NodeId u = 0; u < static_cast<NodeId>(g.NumNodes()); ++u) {
      min_v = std::min(min_v, s.at(v, u));
      max_v = std::max(max_v, s.at(v, u));
    }
  }
  EXPECT_GT(max_v - min_v, 0.1);
}

TEST(FloodingTest, LabelSeedSteersResult) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  std::vector<std::vector<double>> labels(
      g1.NumNodes(), std::vector<double>(g2.NumNodes(), 0.1));
  labels[0][1] = 1.0;  // strongly seed pair (0, 1)
  SimilarityMatrix with = ComputeSimilarityFlooding(g1, g2, {}, &labels);
  SimilarityMatrix without = ComputeSimilarityFlooding(g1, g2);
  EXPECT_GT(with.at(0, 1), with.at(0, 0));
  // The unseeded run treats initial pairs uniformly.
  (void)without;
}

TEST(FloodingTest, IgnoresArtificialNodes) {
  DependencyGraph g1 = DependencyGraph::Build(testing::BuildPaperLog1());
  DependencyGraph g2 = DependencyGraph::Build(testing::BuildPaperLog2());
  ASSERT_TRUE(g1.has_artificial());
  SimilarityMatrix s = ComputeSimilarityFlooding(g1, g2);
  for (NodeId v2 = 0; v2 < static_cast<NodeId>(s.cols()); ++v2) {
    EXPECT_DOUBLE_EQ(s.at(0, v2), 0.0);
  }
}

TEST(FloodingTest, EmptyGraphsDoNotCrash) {
  EventLog empty;
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  DependencyGraph g = DependencyGraph::Build(empty, opts);
  SimilarityMatrix s = ComputeSimilarityFlooding(g, g);
  EXPECT_EQ(s.rows(), 0u);
}

}  // namespace
}  // namespace ems
