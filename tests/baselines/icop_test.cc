#include "baselines/icop.h"
#include <set>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(IcopTest, OneToOneByLabels) {
  EventLog log1, log2;
  log1.AddTrace({"pay invoice", "ship goods"});
  log2.AddTrace({"ship the goods", "pay the invoice"});
  TokenJaccardSimilarity measure;
  std::vector<Correspondence> found = IcopMatch(log1, log2, measure);
  ASSERT_EQ(found.size(), 2u);
  for (const Correspondence& c : found) {
    if (c.events1[0] == "pay invoice") {
      EXPECT_EQ(c.events2[0], "pay the invoice");
    } else {
      EXPECT_EQ(c.events2[0], "ship the goods");
    }
  }
}

TEST(IcopTest, FindsComplexCorrespondenceFromSharedTerms) {
  EventLog log1, log2;
  log1.AddTrace({"check inventory", "validate inventory", "ship"});
  log2.AddTrace({"inventory checking and validation", "ship"});
  TokenJaccardSimilarity measure;
  IcopOptions opts;
  opts.min_member_similarity = 0.2;
  std::vector<Correspondence> found = IcopMatch(log1, log2, measure, opts);
  bool complex_found = false;
  for (const Correspondence& c : found) {
    if (c.events1.size() == 2 &&
        c.events2 == std::vector<std::string>{
                         "inventory checking and validation"}) {
      complex_found = true;
    }
  }
  EXPECT_TRUE(complex_found);
}

TEST(IcopTest, OpaqueNamesYieldNothing) {
  // The paper's criticism of ICoP: without label signal it is helpless.
  EventLog log1, log2;
  log1.AddTrace({"a1b2", "c3d4"});
  log2.AddTrace({"zz91", "qq37"});
  QGramCosineSimilarity measure;
  std::vector<Correspondence> found = IcopMatch(log1, log2, measure);
  EXPECT_TRUE(found.empty());
}

TEST(IcopTest, SelectionIsDisjoint) {
  EventLog log1, log2;
  log1.AddTrace({"alpha", "alpha two", "beta"});
  log2.AddTrace({"alpha", "beta"});
  QGramCosineSimilarity measure;
  std::vector<Correspondence> found = IcopMatch(log1, log2, measure);
  std::set<std::string> used1, used2;
  for (const Correspondence& c : found) {
    for (const std::string& e : c.events1) {
      EXPECT_TRUE(used1.insert(e).second);
    }
    for (const std::string& e : c.events2) {
      EXPECT_TRUE(used2.insert(e).second);
    }
  }
}

TEST(IcopTest, GroupSizeCapRespected) {
  EventLog log1, log2;
  log1.AddTrace({"step one", "step two", "step three", "step four",
                 "step five"});
  log2.AddTrace({"step"});
  TokenJaccardSimilarity measure;
  IcopOptions opts;
  opts.max_group_size = 3;
  opts.min_member_similarity = 0.2;
  std::vector<Correspondence> found = IcopMatch(log1, log2, measure, opts);
  for (const Correspondence& c : found) {
    EXPECT_LE(c.events1.size(), 3u);
  }
}

TEST(IcopTest, DeterministicOutput) {
  EventLog log1, log2;
  log1.AddTrace({"pay", "ship", "bill"});
  log2.AddTrace({"pay", "ship", "bill"});
  QGramCosineSimilarity measure;
  auto a = IcopMatch(log1, log2, measure);
  auto b = IcopMatch(log1, log2, measure);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].events1, b[i].events1);
    EXPECT_EQ(a[i].events2, b[i].events2);
  }
}

}  // namespace
}  // namespace ems
