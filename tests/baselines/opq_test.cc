#include "baselines/opq.h"
#include <set>

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

DependencyGraph NoArtificial(const EventLog& log) {
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  return DependencyGraph::Build(log, opts);
}

TEST(OpqTest, IdenticalGraphsMatchPerfectly) {
  DependencyGraph g = NoArtificial(testing::BuildPaperLog2());
  Result<OpqResult> result = ComputeOpqExact(g, g);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->exact);
  EXPECT_NEAR(result->distance, 0.0, 1e-12);
  // Identity is one optimal mapping; any zero-distance permutation is
  // acceptable, but with distinct frequencies it must be the identity.
  for (size_t i = 0; i < result->mapping.size(); ++i) {
    EXPECT_EQ(result->mapping[i], static_cast<int>(i));
  }
}

TEST(OpqTest, ExactNeverWorseThanHillClimb) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  Result<OpqResult> exact = ComputeOpqExact(g1, g2);
  ASSERT_TRUE(exact.ok());
  OpqResult hill = ComputeOpqHillClimb(g1, g2);
  EXPECT_LE(exact->distance, hill.distance + 1e-9);
}

TEST(OpqTest, DistanceOfReportedMappingMatches) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  Result<OpqResult> result = ComputeOpqExact(g1, g2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->distance, OpqDistance(g1, g2, result->mapping), 1e-9);
}

TEST(OpqTest, ExpansionBudgetTriggersResourceExhausted) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  OpqOptions opts;
  opts.max_expansions = 2;  // absurdly small
  Result<OpqResult> result = ComputeOpqExact(g1, g2, opts);
  EXPECT_TRUE(result.status().IsResourceExhausted());
}

TEST(OpqTest, MappingIsInjective) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  Result<OpqResult> result = ComputeOpqExact(g1, g2);
  ASSERT_TRUE(result.ok());
  std::set<int> used;
  for (int m : result->mapping) {
    if (m < 0) continue;
    EXPECT_TRUE(used.insert(m).second);
  }
}

TEST(OpqTest, UnequalSizesHandled) {
  // Graph 1 larger than graph 2: some nodes must stay unmapped.
  EventLog big, small;
  for (int i = 0; i < 6; ++i) {
    big.AddTrace({"a", "b", "c", "d"});
    small.AddTrace({"x", "y"});
  }
  DependencyGraph g1 = NoArtificial(big);
  DependencyGraph g2 = NoArtificial(small);
  Result<OpqResult> result = ComputeOpqExact(g1, g2);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->mapping.size(), g1.NumNodes());
  size_t mapped = 0;
  for (int m : result->mapping) mapped += m >= 0;
  EXPECT_EQ(mapped, g2.NumNodes());
}

TEST(OpqTest, HillClimbDeterministicForSeed) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  OpqOptions opts;
  opts.seed = 99;
  OpqResult a = ComputeOpqHillClimb(g1, g2, opts);
  OpqResult b = ComputeOpqHillClimb(g1, g2, opts);
  EXPECT_EQ(a.mapping, b.mapping);
  EXPECT_DOUBLE_EQ(a.distance, b.distance);
}

TEST(OpqTest, ScoreHigherForBetterMapping) {
  DependencyGraph g = NoArtificial(testing::BuildPaperLog2());
  Result<OpqResult> identity = ComputeOpqExact(g, g);
  ASSERT_TRUE(identity.ok());
  // A deliberately bad mapping: rotate all targets by one.
  std::vector<int> rotated(identity->mapping.size());
  for (size_t i = 0; i < rotated.size(); ++i) {
    rotated[i] = static_cast<int>((i + 1) % rotated.size());
  }
  EXPECT_LT(identity->distance, OpqDistance(g, g, rotated));
}

}  // namespace
}  // namespace ems
