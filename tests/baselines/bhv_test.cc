#include "baselines/bhv.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

DependencyGraph NoArtificial(const EventLog& log) {
  DependencyGraphOptions opts;
  opts.add_artificial_event = false;
  return DependencyGraph::Build(log, opts);
}

TEST(BhvTest, SourcePairsGetSimilarityOne) {
  // The paper's Example 2: BHV(A, 1) = 1 because both lack predecessors.
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  SimilarityMatrix s = ComputeBhvSimilarity(g1, g2);
  NodeId paid_cash = -1, order_accepted = -1, paid_cash2 = -1;
  for (NodeId v = 0; v < static_cast<NodeId>(g1.NumNodes()); ++v) {
    if (g1.NodeName(v) == "PaidCash") paid_cash = v;
  }
  for (NodeId v = 0; v < static_cast<NodeId>(g2.NumNodes()); ++v) {
    if (g2.NodeName(v) == "OrderAccepted") order_accepted = v;
    if (g2.NodeName(v) == "PaidCash2") paid_cash2 = v;
  }
  ASSERT_GE(paid_cash, 0);
  ASSERT_GE(order_accepted, 0);
  ASSERT_GE(paid_cash2, 0);
  EXPECT_DOUBLE_EQ(s.at(paid_cash, order_accepted), 1.0);
  // ... and the dislocated true pair gets 0: BHV cannot see it.
  EXPECT_DOUBLE_EQ(s.at(paid_cash, paid_cash2), 0.0);
}

TEST(BhvTest, ValuesInUnitInterval) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  SimilarityMatrix s = ComputeBhvSimilarity(g1, g2);
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(s.rows()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(s.cols()); ++v2) {
      EXPECT_GE(s.at(v1, v2), 0.0);
      EXPECT_LE(s.at(v1, v2), 1.0);
    }
  }
}

TEST(BhvTest, IdenticalGraphsDiagonalStrong) {
  DependencyGraph g = NoArtificial(testing::BuildPaperLog2());
  SimilarityMatrix s = ComputeBhvSimilarity(g, g);
  for (NodeId v = 0; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    for (NodeId u = 0; u < static_cast<NodeId>(g.NumNodes()); ++u) {
      EXPECT_GE(s.at(v, v) + 1e-9, s.at(v, u));
    }
  }
}

TEST(BhvTest, LabelIntegrationShiftsScores) {
  DependencyGraph g1 = NoArtificial(testing::BuildPaperLog1());
  DependencyGraph g2 = NoArtificial(testing::BuildPaperLog2());
  std::vector<std::vector<double>> labels(
      g1.NumNodes(), std::vector<double>(g2.NumNodes(), 0.0));
  labels[0][0] = 1.0;
  BhvOptions opts;
  opts.alpha = 0.5;
  SimilarityMatrix with = ComputeBhvSimilarity(g1, g2, opts, &labels);
  SimilarityMatrix without = ComputeBhvSimilarity(g1, g2, opts);
  EXPECT_GT(with.at(0, 0), without.at(0, 0));
}

TEST(BhvTest, IgnoresArtificialNodesWhenPresent) {
  DependencyGraph g1 = DependencyGraph::Build(testing::BuildPaperLog1());
  DependencyGraph g2 = DependencyGraph::Build(testing::BuildPaperLog2());
  ASSERT_TRUE(g1.has_artificial());
  SimilarityMatrix s = ComputeBhvSimilarity(g1, g2);
  // Artificial rows/cols remain zero.
  for (NodeId v2 = 0; v2 < static_cast<NodeId>(s.cols()); ++v2) {
    EXPECT_DOUBLE_EQ(s.at(0, v2), 0.0);
  }
  // With artificial nodes, every real node has a real predecessor set
  // unchanged; the source base case applies to the same pairs as before.
}

}  // namespace
}  // namespace ems
