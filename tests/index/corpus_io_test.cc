// Corpus persistence: snapshot roundtrip, the warm-load path through the
// artifact store (a second load must be one snapshot hit and zero
// re-parses), option-mismatch fallback, and key sensitivity to member
// content.
#include "index/corpus_io.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/topk_scheduler.h"
#include "log/log_io.h"
#include "obs/context.h"
#include "synth/dataset.h"

namespace ems {
namespace index {
namespace {

namespace fs = std::filesystem;

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

// A corpus directory of trace-format members; returns the dir.
std::string WriteCorpusDir(const std::string& name, int members) {
  const std::string dir = TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  SynthCorpusOptions opts;
  opts.num_members = members;
  opts.members_per_family = 2;
  opts.min_activities = 6;
  opts.max_activities = 8;
  opts.num_traces = 20;
  opts.seed = 91;
  for (const CorpusMember& m : MakeCorpus(opts)) {
    EXPECT_TRUE(WriteTraceFile(m.log, dir + "/" + m.name + ".txt").ok());
  }
  return dir;
}

void ExpectSameQueryResults(const CorpusIndex& a, const CorpusIndex& b) {
  ASSERT_EQ(a.size(), b.size());
  TopKOptions opts;
  opts.k = 3;
  opts.match.label_measure = LabelMeasure::kQGramCosine;
  opts.match.ems.alpha = 0.5;
  TopKScheduler sa(a, opts);
  TopKScheduler sb(b, opts);
  const EventLog& query = a.entry(0).log;
  Result<std::vector<TopKHit>> ha = sa.Query(query);
  Result<std::vector<TopKHit>> hb = sb.Query(query);
  ASSERT_TRUE(ha.ok() && hb.ok());
  ASSERT_EQ(ha->size(), hb->size());
  for (size_t i = 0; i < ha->size(); ++i) {
    EXPECT_EQ((*ha)[i].name, (*hb)[i].name);
    EXPECT_EQ(
        std::memcmp(&(*ha)[i].score, &(*hb)[i].score, sizeof(double)), 0);
  }
}

TEST(CorpusIoTest, ListCorpusFilesSortsAndFilters) {
  const std::string dir = WriteCorpusDir("corpus_io_list", 4);
  std::ofstream(dir + "/notes.md") << "not a log\n";
  Result<std::vector<std::string>> files = ListCorpusFiles(dir);
  ASSERT_TRUE(files.ok());
  EXPECT_EQ(files->size(), 4u);
  for (size_t i = 1; i < files->size(); ++i) {
    EXPECT_LT((*files)[i - 1], (*files)[i]);  // sorted, deterministic
  }
  EXPECT_TRUE(ListCorpusFiles(dir + "/missing").status().IsIOError());
  fs::remove_all(dir);
}

TEST(CorpusIoTest, SnapshotRoundtripPreservesTheIndex) {
  const std::string dir = WriteCorpusDir("corpus_io_roundtrip", 4);
  CorpusLoadOptions load;
  Result<CorpusIndex> cold = LoadCorpusFromDirectory(dir, load);
  ASSERT_TRUE(cold.ok());
  const std::string snapshot = EncodeCorpusIndex(*cold);
  Result<CorpusIndex> decoded = DecodeCorpusIndex(snapshot, load.index);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), cold->size());
  for (size_t i = 0; i < cold->size(); ++i) {
    EXPECT_EQ(decoded->entry(i).name, cold->entry(i).name);
    EXPECT_EQ(decoded->entry(i).content_hash, cold->entry(i).content_hash);
    EXPECT_EQ(decoded->entry(i).graph.NumNodes(),
              cold->entry(i).graph.NumNodes());
    EXPECT_EQ(decoded->entry(i).max_longest_from,
              cold->entry(i).max_longest_from);
  }
  ExpectSameQueryResults(*cold, *decoded);

  // Decoding under different build options must fail, not mislead.
  CorpusIndexOptions other;
  other.qgram_q = 4;
  EXPECT_TRUE(DecodeCorpusIndex(snapshot, other).status().IsInvalidArgument());
  fs::remove_all(dir);
}

// The satellite regression: a restart pointed at the same cache dir must
// serve the whole index from one snapshot hit — zero per-member loads,
// zero re-parses (a parse only ever follows a store miss).
TEST(CorpusIoTest, SecondLoadIsOneSnapshotHitAndZeroReparses) {
  const std::string dir = WriteCorpusDir("corpus_io_warm", 4);
  const std::string cache = TempDir() + "/corpus_io_warm_store";
  fs::remove_all(cache);
  ObsContext obs;
  store::ArtifactStoreOptions store_opts;
  store_opts.dir = cache;
  store_opts.obs = &obs;
  Result<store::ArtifactStore> store = store::ArtifactStore::Open(store_opts);
  ASSERT_TRUE(store.ok());

  CorpusLoadOptions load;
  load.store = &*store;
  Result<CorpusIndex> cold = LoadCorpusFromDirectory(dir, load);
  ASSERT_TRUE(cold.ok());
  const uint64_t misses_after_cold = obs.metrics.CounterValue("store.misses");
  EXPECT_GE(misses_after_cold, 1u);  // whole-index miss (+ per-log misses)
  const uint64_t hits_after_cold = obs.metrics.CounterValue("store.hits");

  Result<CorpusIndex> warm = LoadCorpusFromDirectory(dir, load);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(obs.metrics.CounterValue("store.hits"), hits_after_cold + 1);
  EXPECT_EQ(obs.metrics.CounterValue("store.misses"), misses_after_cold);
  ExpectSameQueryResults(*cold, *warm);
  fs::remove_all(dir);
  fs::remove_all(cache);
}

// Changing one member's bytes must change the whole-index key, so stale
// snapshots can never answer for an edited corpus.
TEST(CorpusIoTest, KeyTracksMemberContentAndOptions) {
  const std::string dir = WriteCorpusDir("corpus_io_key", 3);
  Result<std::vector<std::string>> files = ListCorpusFiles(dir);
  ASSERT_TRUE(files.ok());
  CorpusLoadOptions load;
  Result<store::ArtifactKey> before = CorpusKeyForFiles(*files, load);
  ASSERT_TRUE(before.ok());

  std::ofstream(files->front(), std::ios::app) << "a;b\n";
  Result<store::ArtifactKey> after = CorpusKeyForFiles(*files, load);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(before->content_hash, after->content_hash);
  EXPECT_EQ(before->fingerprint, after->fingerprint);

  CorpusLoadOptions other = load;
  other.index.qgram_q = 4;
  Result<store::ArtifactKey> refit = CorpusKeyForFiles(*files, other);
  ASSERT_TRUE(refit.ok());
  EXPECT_NE(refit->fingerprint, after->fingerprint);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace index
}  // namespace ems
