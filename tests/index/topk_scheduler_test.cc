// Top-k scheduler: the exactness contract (indexed ranking byte-
// identical to the brute-force scan for every k, alpha, and pool),
// stats accounting, tie order, and the brute-force fallbacks.
#include "index/topk_scheduler.h"

#include <cstring>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "index/corpus_index.h"
#include "synth/dataset.h"

namespace ems {
namespace index {
namespace {

CorpusIndex BuildIndex(int members, int family_size, uint64_t seed) {
  SynthCorpusOptions opts;
  opts.num_members = members;
  opts.members_per_family = family_size;
  opts.min_activities = 6;
  opts.max_activities = 9;
  opts.num_traces = 25;
  opts.seed = seed;
  CorpusIndex index;
  for (CorpusMember& m : MakeCorpus(opts)) {
    EXPECT_TRUE(index.Add(m.name, std::move(m.log)).ok());
  }
  return index;
}

// Bitwise, not ==: the contract is byte-identical rankings.
void ExpectSameHits(const std::vector<TopKHit>& indexed,
                    const std::vector<TopKHit>& brute) {
  ASSERT_EQ(indexed.size(), brute.size());
  for (size_t i = 0; i < indexed.size(); ++i) {
    EXPECT_EQ(indexed[i].name, brute[i].name) << "rank " << i;
    EXPECT_EQ(indexed[i].member_index, brute[i].member_index) << "rank " << i;
    EXPECT_EQ(std::memcmp(&indexed[i].score, &brute[i].score, sizeof(double)),
              0)
        << "rank " << i;
    EXPECT_EQ(indexed[i].match.correspondences.size(),
              brute[i].match.correspondences.size())
        << "rank " << i;
  }
}

TEST(TopKSchedulerTest, IndexedMatchesBruteForceByteForByte) {
  exec::ThreadPool pool(4);
  for (uint64_t seed : {11u, 12u}) {
    CorpusIndex index = BuildIndex(12, 3, seed);
    for (double alpha : {0.3, 1.0}) {
      for (size_t k : {size_t{1}, size_t{4}, size_t{50}}) {
        for (exec::ThreadPool* p : {static_cast<exec::ThreadPool*>(nullptr),
                                    &pool}) {
          TopKOptions opts;
          opts.k = k;
          opts.match.label_measure = LabelMeasure::kQGramCosine;
          opts.match.ems.alpha = alpha;
          opts.pool = p;
          TopKOptions brute_opts = opts;
          brute_opts.force_brute_force = true;
          const EventLog& query = index.entry(1).log;
          TopKScheduler indexed(index, opts);
          TopKScheduler brute(index, brute_opts);
          Result<std::vector<TopKHit>> ih = indexed.Query(query);
          Result<std::vector<TopKHit>> bh = brute.Query(query);
          ASSERT_TRUE(ih.ok() && bh.ok());
          EXPECT_FALSE(indexed.stats().used_brute_force);
          EXPECT_TRUE(brute.stats().used_brute_force);
          ExpectSameHits(*ih, *bh);
          // k past the corpus size returns everything, ranked.
          if (k >= index.size()) {
            EXPECT_EQ(ih->size(), index.size());
          }
        }
      }
    }
  }
}

TEST(TopKSchedulerTest, StatsPartitionTheCandidates) {
  CorpusIndex index = BuildIndex(12, 4, 21);
  TopKOptions opts;
  opts.k = 3;
  opts.match.label_measure = LabelMeasure::kQGramCosine;
  opts.match.ems.alpha = 0.3;
  TopKScheduler scheduler(index, opts);
  ASSERT_TRUE(scheduler.Query(index.entry(0).log).ok());
  const TopKStats& s = scheduler.stats();
  EXPECT_EQ(s.candidates_retrieved, index.size());
  // Every candidate is disposed of exactly once: pruned at stage 0,
  // aborted mid-run, or run to a score.
  EXPECT_EQ(s.pruned_by_bound + s.aborted_runs + s.exact_runs, index.size());
  EXPECT_GE(s.exact_runs, opts.k);  // at least the top k ran fully
}

TEST(TopKSchedulerTest, KZeroAndEmptyIndexYieldNoHits) {
  CorpusIndex index = BuildIndex(4, 2, 31);
  TopKOptions opts;
  opts.k = 0;
  TopKScheduler scheduler(index, opts);
  Result<std::vector<TopKHit>> hits = scheduler.Query(index.entry(0).log);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());

  CorpusIndex empty;
  TopKOptions opts2;
  TopKScheduler s2(empty, opts2);
  Result<std::vector<TopKHit>> hits2 = s2.Query(index.entry(0).log);
  ASSERT_TRUE(hits2.ok());
  EXPECT_TRUE(hits2->empty());
}

// Index built at a different min_edge_frequency than the query options:
// the prebuilt graphs are not the graphs a brute match would build, so
// the scheduler must fall back to the brute scan transparently.
TEST(TopKSchedulerTest, OptionMismatchFallsBackToBruteForce) {
  CorpusIndex index = BuildIndex(4, 2, 41);
  TopKOptions opts;
  opts.k = 2;
  opts.match.min_edge_frequency = 0.25;
  TopKScheduler scheduler(index, opts);
  Result<std::vector<TopKHit>> hits = scheduler.Query(index.entry(0).log);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(scheduler.stats().used_brute_force);
  EXPECT_EQ(hits->size(), 2u);
}

// Duplicate members score identically; the ranking must keep their
// insertion order on both paths (the stable-sort tie contract).
TEST(TopKSchedulerTest, TiesKeepInsertionOrder) {
  SynthCorpusOptions copts;
  copts.num_members = 4;
  copts.members_per_family = 2;
  copts.min_activities = 6;
  copts.max_activities = 8;
  copts.num_traces = 20;
  copts.seed = 51;
  std::vector<CorpusMember> corpus = MakeCorpus(copts);
  CorpusIndex index;
  for (CorpusMember& m : corpus) {
    ASSERT_TRUE(index.Add(m.name, m.log).ok());
  }
  // The same log again under two names sorting after the originals.
  ASSERT_TRUE(index.Add("zz_twin_1", corpus[0].log).ok());
  ASSERT_TRUE(index.Add("zz_twin_2", corpus[0].log).ok());

  TopKOptions opts;
  opts.k = 6;
  opts.match.label_measure = LabelMeasure::kQGramCosine;
  opts.match.ems.alpha = 0.5;
  TopKOptions brute_opts = opts;
  brute_opts.force_brute_force = true;
  TopKScheduler indexed(index, opts);
  TopKScheduler brute(index, brute_opts);
  Result<std::vector<TopKHit>> ih = indexed.Query(corpus[0].log);
  Result<std::vector<TopKHit>> bh = brute.Query(corpus[0].log);
  ASSERT_TRUE(ih.ok() && bh.ok());
  ExpectSameHits(*ih, *bh);
  // The original and both twins share the top score; insertion order.
  ASSERT_GE(ih->size(), 3u);
  EXPECT_EQ((*ih)[0].name, corpus[0].name);
  EXPECT_EQ((*ih)[1].name, "zz_twin_1");
  EXPECT_EQ((*ih)[2].name, "zz_twin_2");
  EXPECT_EQ(std::memcmp(&(*ih)[0].score, &(*ih)[1].score, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&(*ih)[1].score, &(*ih)[2].score, sizeof(double)), 0);
}

}  // namespace
}  // namespace index
}  // namespace ems
