// Corpus index: entry bookkeeping, the retrieval label bound against the
// brute-force label-matrix maximum, and the cached per-node label
// profiles that back the scheduler's fast S^L path.
#include "index/corpus_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/dependency_graph.h"
#include "synth/dataset.h"
#include "text/label_similarity.h"
#include "util/string_util.h"

namespace ems {
namespace index {
namespace {

std::vector<CorpusMember> SmallCorpus(int members, int family_size) {
  SynthCorpusOptions opts;
  opts.num_members = members;
  opts.members_per_family = family_size;
  opts.min_activities = 6;
  opts.max_activities = 9;
  opts.num_traces = 25;
  opts.seed = 77;
  return MakeCorpus(opts);
}

TEST(CorpusIndexTest, AddRemoveFind) {
  CorpusIndex index;
  std::vector<CorpusMember> corpus = SmallCorpus(3, 2);
  for (CorpusMember& m : corpus) {
    ASSERT_TRUE(index.Add(m.name, m.log).ok()) << m.name;
  }
  EXPECT_EQ(index.size(), 3u);
  EXPECT_TRUE(index.Add(corpus[0].name, corpus[0].log).IsInvalidArgument());
  EXPECT_TRUE(index.Add("", corpus[0].log).IsInvalidArgument());
  EXPECT_EQ(index.FindIndex(corpus[1].name), 1);
  EXPECT_EQ(index.FindIndex("missing"), -1);
  ASSERT_TRUE(index.Remove(corpus[0].name).ok());
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.FindIndex(corpus[1].name), 0);  // shifted down
  EXPECT_TRUE(index.Remove(corpus[0].name).IsNotFound());
}

// The retrieval bound must equal the maximum entry of the label matrix a
// real match would compute: not an inequality pair but the same number —
// both sides reduce to the max cosine over identical part profiles.
TEST(CorpusIndexTest, MaxLabelCosinesMatchesLabelMatrixMax) {
  CorpusIndex index;
  std::vector<CorpusMember> corpus = SmallCorpus(6, 2);
  for (CorpusMember& m : corpus) {
    ASSERT_TRUE(index.Add(m.name, m.log).ok());
  }
  // Query with a family member: in-family entries must reach a high
  // cosine, cross-family ones a low cosine — both matching exactly.
  const EventLog& query = corpus[1].log;
  DependencyGraph query_graph = DependencyGraph::Build(query);
  QGramCosineSimilarity measure;
  std::vector<double> bounds = index.MaxLabelCosines(query);
  ASSERT_EQ(bounds.size(), index.size());
  for (size_t i = 0; i < index.size(); ++i) {
    std::vector<std::vector<double>> labels =
        LabelSimilarityMatrix(query_graph, index.entry(i).graph, measure);
    double brute_max = 0.0;
    for (const auto& row : labels) {
      for (double v : row) brute_max = std::max(brute_max, v);
    }
    EXPECT_NEAR(bounds[i], brute_max, 1e-9) << index.entry(i).name;
  }
  // Same-family queries share a private vocabulary prefix.
  EXPECT_GT(bounds[0], 0.5);
}

// Remove rebuilds the postings: bounds after a removal must equal the
// bounds of an index built fresh over the survivors.
TEST(CorpusIndexTest, RemoveRebuildsPostings) {
  std::vector<CorpusMember> corpus = SmallCorpus(4, 2);
  CorpusIndex full;
  CorpusIndex survivors;
  for (CorpusMember& m : corpus) ASSERT_TRUE(full.Add(m.name, m.log).ok());
  for (size_t i = 1; i < corpus.size(); ++i) {
    ASSERT_TRUE(survivors.Add(corpus[i].name, corpus[i].log).ok());
  }
  ASSERT_TRUE(full.Remove(corpus[0].name).ok());
  const EventLog& query = corpus[2].log;
  std::vector<double> a = full.MaxLabelCosines(query);
  std::vector<double> b = survivors.MaxLabelCosines(query);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// The cached label profiles must mirror the graph: one (possibly empty)
// vector per node, artificial nodes empty, real nodes one profile per
// '+'-part of the node name.
TEST(CorpusIndexTest, LabelProfilesMirrorGraphNodes) {
  CorpusIndex index;
  std::vector<CorpusMember> corpus = SmallCorpus(2, 2);
  ASSERT_TRUE(index.Add(corpus[0].name, corpus[0].log).ok());
  const CorpusEntry& e = index.entry(0);
  ASSERT_EQ(e.label_profiles.size(), e.graph.NumNodes());
  for (NodeId v = 0; v < static_cast<NodeId>(e.graph.NumNodes()); ++v) {
    const auto& profiles = e.label_profiles[static_cast<size_t>(v)];
    if (e.graph.IsArtificial(v)) {
      EXPECT_TRUE(profiles.empty());
    } else {
      EXPECT_EQ(profiles.size(), Split(e.graph.NodeName(v), '+').size());
    }
  }
}

TEST(CorpusIndexTest, HorizonCapsAreWarm) {
  CorpusIndex index;
  std::vector<CorpusMember> corpus = SmallCorpus(2, 2);
  ASSERT_TRUE(index.Add(corpus[0].name, corpus[0].log).ok());
  const CorpusEntry& e = index.entry(0);
  // Acyclic graphs of nontrivial logs have positive finite horizons.
  EXPECT_GT(e.max_longest_from, 0);
  EXPECT_GT(e.max_longest_to, 0);
}

}  // namespace
}  // namespace index
}  // namespace ems
