#include "text/qgram.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(QGramTest, IdenticalStringsScoreOne) {
  EXPECT_DOUBLE_EQ(QGramCosine("delivery", "delivery"), 1.0);
}

TEST(QGramTest, DisjointStringsScoreZero) {
  EXPECT_DOUBLE_EQ(QGramCosine("aaaa", "zzzz"), 0.0);
}

TEST(QGramTest, BothEmptyScoreOne) {
  EXPECT_DOUBLE_EQ(QGramCosine("", ""), 1.0);
}

TEST(QGramTest, EmptyVersusNonEmptyScoreZero) {
  // With q-1 padding, "" still yields grams of pure padding which would
  // spuriously overlap; the implementation must report 0 against any
  // non-empty string only if they truly share no grams — padding makes
  // prefix/suffix grams shared, so expect a small positive value instead.
  double s = QGramCosine("", "a");
  EXPECT_GE(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(QGramTest, SimilarStringsScoreHigh) {
  double s = QGramCosine("check inventory", "check inventry");
  EXPECT_GT(s, 0.7);
  EXPECT_LT(s, 1.0);
}

TEST(QGramTest, SymmetricMeasure) {
  EXPECT_DOUBLE_EQ(QGramCosine("validate", "validation"),
                   QGramCosine("validation", "validate"));
}

TEST(QGramTest, BoundedByOne) {
  EXPECT_LE(QGramCosine("aab", "aba"), 1.0);
  EXPECT_LE(QGramCosine("aaaa", "aaaaaaa"), 1.0);
}

TEST(QGramTest, RepeatedGramsWeighted) {
  // "aaaa" vs "aa": shared 'aaa'-ish grams but different counts.
  double s = QGramCosine("aaaa", "aa");
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 1.0);
}

TEST(QGramTest, QEqualsOneIsBagOfCharacters) {
  EXPECT_DOUBLE_EQ(QGramCosine("abc", "cba", 1), 1.0);
  EXPECT_DOUBLE_EQ(QGramCosine("abc", "abd", 1), 2.0 / 3.0);
}

TEST(QGramProfileTest, DistinctGramCount) {
  QGramProfile p("ab", 2);  // padded: #ab$ -> grams #a, ab, b$
  EXPECT_EQ(p.DistinctGrams(), 3u);
  EXPECT_EQ(p.q(), 2);
}

TEST(QGramProfileTest, OpaqueNamesShareNothing) {
  // The motivating scenario: garbled names have no usable typographic
  // signal against the original.
  double s = QGramCosine("??????", "Delivery");
  EXPECT_LT(s, 0.1);
}

}  // namespace
}  // namespace ems
