// CachedLabelSimilarity must reproduce every wrapped measure bit for bit
// (the composite search substitutes it transparently) while memoizing
// repeated pairs and staying safe under concurrent lookups.
#include "text/cached_label_similarity.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "text/label_similarity.h"

namespace ems {
namespace {

const char* kLabels[] = {"Check Stock",  "check_stock", "ship order",
                         "Ship Order",   "receive",     "RECEIVE GOODS",
                         "a",            "",            "inventory check",
                         "Check Inventory"};

TEST(CachedLabelSimilarityTest, BitIdenticalToWrappedMeasures) {
  QGramCosineSimilarity qgram(3);
  QGramCosineSimilarity qgram2(2);
  LevenshteinLabelSimilarity lev;
  JaroWinklerLabelSimilarity jw;
  TokenJaccardSimilarity tokens;
  NoLabelSimilarity none;
  const LabelSimilarity* measures[] = {&qgram, &qgram2, &lev,
                                       &jw,    &tokens, &none};
  for (const LabelSimilarity* base : measures) {
    CachedLabelSimilarity cached(*base);
    for (const char* a : kLabels) {
      for (const char* b : kLabels) {
        // Twice: the second call must replay the memo with the same bits.
        double expected = base->Similarity(a, b);
        EXPECT_EQ(expected, cached.Similarity(a, b)) << base->Name();
        EXPECT_EQ(expected, cached.Similarity(a, b)) << base->Name();
      }
    }
  }
}

TEST(CachedLabelSimilarityTest, CountsHitsAndMisses) {
  QGramCosineSimilarity qgram(3);
  CachedLabelSimilarity cached(qgram);
  EXPECT_EQ(cached.hits(), 0u);
  EXPECT_EQ(cached.misses(), 0u);
  cached.Similarity("alpha", "beta");
  EXPECT_EQ(cached.hits(), 0u);
  EXPECT_EQ(cached.misses(), 1u);
  cached.Similarity("alpha", "beta");
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 1u);
  // Orientation is part of the key (generic measures need not be
  // symmetric), so the swapped pair is a fresh miss.
  cached.Similarity("beta", "alpha");
  EXPECT_EQ(cached.hits(), 1u);
  EXPECT_EQ(cached.misses(), 2u);
}

TEST(CachedLabelSimilarityTest, KeyIsUnambiguous) {
  // ("ab", "c") and ("a", "bc") concatenate identically; the
  // length-prefixed key must keep them apart.
  QGramCosineSimilarity qgram(3);
  CachedLabelSimilarity cached(qgram);
  EXPECT_EQ(qgram.Similarity("ab", "c"), cached.Similarity("ab", "c"));
  EXPECT_EQ(qgram.Similarity("a", "bc"), cached.Similarity("a", "bc"));
  EXPECT_EQ(cached.misses(), 2u);
}

TEST(CachedLabelSimilarityTest, NameReflectsWrappedMeasure) {
  QGramCosineSimilarity qgram(3);
  CachedLabelSimilarity cached(qgram);
  EXPECT_EQ(cached.Name(), "cached(" + qgram.Name() + ")");
}

TEST(CachedLabelSimilarityTest, ConcurrentLookupsAgree) {
  QGramCosineSimilarity qgram(3);
  CachedLabelSimilarity cached(qgram);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int rep = 0; rep < 20; ++rep) {
        for (const char* a : kLabels) {
          for (const char* b : kLabels) {
            if (cached.Similarity(a, b) != qgram.Similarity(a, b)) {
              ++mismatches[static_cast<size_t>(t)];
            }
          }
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int m : mismatches) EXPECT_EQ(m, 0);
  // Every lookup was answered, racing first computations at worst
  // double-count a miss.
  constexpr uint64_t kPairs =
      sizeof(kLabels) / sizeof(kLabels[0]) * (sizeof(kLabels) / sizeof(kLabels[0]));
  EXPECT_EQ(cached.hits() + cached.misses(), kThreads * 20 * kPairs);
  EXPECT_GE(cached.misses(), kPairs);
}

}  // namespace
}  // namespace ems
