#include "text/jaro_winkler.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(JaroTest, IdenticalStrings) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("martha", "martha"), 1.0);
}

TEST(JaroTest, ClassicTextbookValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-4);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-4);
  EXPECT_NEAR(JaroSimilarity("jellyfish", "smellyfish"), 0.8963, 1e-4);
}

TEST(JaroTest, NoCommonCharacters) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
}

TEST(JaroTest, EmptyStrings) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
}

TEST(JaroTest, Symmetry) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("ship goods", "goods shipped"),
                   JaroSimilarity("goods shipped", "ship goods"));
}

TEST(JaroWinklerTest, PrefixBoost) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.9611, 1e-4);
  // Winkler never lowers the Jaro score.
  EXPECT_GE(JaroWinklerSimilarity("dixon", "dicksonx"),
            JaroSimilarity("dixon", "dicksonx"));
}

TEST(JaroWinklerTest, PrefixCappedAtFour) {
  double four = JaroWinklerSimilarity("abcdex", "abcdey");
  double five = JaroWinklerSimilarity("abcdeex", "abcdeey");
  // Both have >= 4 shared prefix chars; the boost uses at most 4.
  EXPECT_GT(four, 0.9);
  EXPECT_GT(five, 0.9);
}

TEST(JaroWinklerTest, BoundedByOne) {
  EXPECT_LE(JaroWinklerSimilarity("aaaa", "aaaa"), 1.0);
  EXPECT_LE(JaroWinklerSimilarity("prefix_a", "prefix_b"), 1.0);
}

TEST(JaroWinklerTest, IdenticalIsOne) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("check", "check"), 1.0);
}

}  // namespace
}  // namespace ems
