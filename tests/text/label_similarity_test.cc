#include "text/label_similarity.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

TEST(NoLabelSimilarityTest, AlwaysZero) {
  NoLabelSimilarity none;
  EXPECT_DOUBLE_EQ(none.Similarity("a", "a"), 0.0);
  EXPECT_EQ(none.Name(), "none");
}

TEST(QGramCosineSimilarityTest, MatchesFreeFunction) {
  QGramCosineSimilarity sim(3);
  EXPECT_DOUBLE_EQ(sim.Similarity("delivery", "delivery"), 1.0);
  EXPECT_EQ(sim.Name(), "qgram-cosine(q=3)");
}

TEST(LevenshteinLabelSimilarityTest, Normalized) {
  LevenshteinLabelSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Similarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(sim.Similarity("ab", "abcd"), 0.5);
}

TEST(TokenJaccardTest, TokenOverlap) {
  TokenJaccardSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Similarity("Check Inventory", "inventory_check"), 1.0);
  EXPECT_DOUBLE_EQ(sim.Similarity("Ship Goods", "Email Customer"), 0.0);
  EXPECT_NEAR(sim.Similarity("Paid by Cash", "Paid by Card"), 0.5, 1e-12);
}

TEST(TokenJaccardTest, EmptyInputs) {
  TokenJaccardSimilarity sim;
  EXPECT_DOUBLE_EQ(sim.Similarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(sim.Similarity("", "x"), 0.0);
  EXPECT_DOUBLE_EQ(sim.Similarity("!!!", "???"), 1.0);  // both tokenless
}

TEST(LabelSimilarityMatrixTest, ArtificialPairsAreZero) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  DependencyGraph g2 = testing::BuildPaperGraph2();
  QGramCosineSimilarity sim;
  auto m = LabelSimilarityMatrix(g1, g2, sim);
  ASSERT_EQ(m.size(), g1.NumNodes());
  ASSERT_EQ(m[0].size(), g2.NumNodes());
  for (size_t j = 0; j < m[0].size(); ++j) EXPECT_DOUBLE_EQ(m[0][j], 0.0);
  for (size_t i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(m[i][0], 0.0);
}

TEST(LabelSimilarityMatrixTest, SimilarLabelsScoreHigher) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  DependencyGraph g2 = testing::BuildPaperGraph2();
  QGramCosineSimilarity sim;
  auto m = LabelSimilarityMatrix(g1, g2, sim);
  // "PaidCash" vs "PaidCash2" beats "PaidCash" vs "Delivery".
  EXPECT_GT(m[1 + testing::A][1 + testing::N2],
            m[1 + testing::A][1 + testing::N5]);
}

TEST(LabelSimilarityMatrixTest, CompositeNodesUseMemberMax) {
  EventLog log;
  log.AddTrace({"checkinv", "validate", "ship"});
  log.AddTrace({"checkinv", "validate", "ship"});
  EventId c = log.FindEvent("checkinv");
  EventId v = log.FindEvent("validate");
  Result<DependencyGraph> g1 =
      DependencyGraph::BuildWithComposites(log, {{c, v}});
  ASSERT_TRUE(g1.ok());
  EventLog log2;
  log2.AddTrace({"validate", "deliver"});
  DependencyGraph g2 = DependencyGraph::Build(log2);
  QGramCosineSimilarity sim;
  auto m = LabelSimilarityMatrix(*g1, g2, sim);
  // Find the composite node of g1.
  NodeId comp = -1;
  for (NodeId n = 1; n < static_cast<NodeId>(g1->NumNodes()); ++n) {
    if (g1->Members(n).size() == 2) comp = n;
  }
  ASSERT_GE(comp, 0);
  NodeId validate2 = -1;
  for (NodeId n = 1; n < static_cast<NodeId>(g2.NumNodes()); ++n) {
    if (g2.NodeName(n) == "validate") validate2 = n;
  }
  ASSERT_GE(validate2, 0);
  // Composite "checkinv+validate" vs "validate": member max = 1.0.
  EXPECT_DOUBLE_EQ(m[static_cast<size_t>(comp)][static_cast<size_t>(validate2)],
                   1.0);
}

}  // namespace
}  // namespace ems
