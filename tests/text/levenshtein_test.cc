#include "text/levenshtein.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(LevenshteinTest, ClassicExamples) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
}

TEST(LevenshteinTest, IdenticalStrings) {
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
}

TEST(LevenshteinTest, EmptyStrings) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
}

TEST(LevenshteinTest, Symmetry) {
  EXPECT_EQ(LevenshteinDistance("order", "ordering"),
            LevenshteinDistance("ordering", "order"));
}

TEST(LevenshteinTest, SingleEdits) {
  EXPECT_EQ(LevenshteinDistance("abc", "abd"), 1u);  // substitution
  EXPECT_EQ(LevenshteinDistance("abc", "abcd"), 1u); // insertion
  EXPECT_EQ(LevenshteinDistance("abc", "ab"), 1u);   // deletion
}

TEST(LevenshteinTest, TriangleInequalitySpotCheck) {
  size_t ab = LevenshteinDistance("ship", "shop");
  size_t bc = LevenshteinDistance("shop", "chop");
  size_t ac = LevenshteinDistance("ship", "chop");
  EXPECT_LE(ac, ab + bc);
}

TEST(LevenshteinSimilarityTest, Normalization) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("ab", "abcd"), 0.5);
}

}  // namespace
}  // namespace ems
