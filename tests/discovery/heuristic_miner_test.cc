#include "discovery/heuristic_miner.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "synth/log_generator.h"
#include "synth/process_tree.h"

namespace ems {
namespace {

EventLog SequentialLog() {
  EventLog log;
  for (int i = 0; i < 20; ++i) log.AddTrace({"a", "b", "c"});
  return log;
}

TEST(HeuristicMinerTest, MinesSequentialChain) {
  EventLog log = SequentialLog();
  CausalNet net = MineHeuristicNet(log);
  EventId a = log.FindEvent("a");
  EventId b = log.FindEvent("b");
  EventId c = log.FindEvent("c");
  EXPECT_TRUE(net.HasEdge(a, b));
  EXPECT_TRUE(net.HasEdge(b, c));
  EXPECT_FALSE(net.HasEdge(a, c));
  EXPECT_FALSE(net.HasEdge(b, a));
  EXPECT_EQ(net.start_activities, (std::vector<EventId>{a}));
  EXPECT_EQ(net.end_activities, (std::vector<EventId>{c}));
}

TEST(HeuristicMinerTest, XorSplitDetected) {
  EventLog log;
  for (int i = 0; i < 30; ++i) {
    log.AddTrace(i % 2 == 0 ? std::vector<std::string>{"s", "b1", "e"}
                            : std::vector<std::string>{"s", "b2", "e"});
  }
  CausalNet net = MineHeuristicNet(log);
  EventId s = log.FindEvent("s");
  EXPECT_TRUE(net.HasEdge(s, log.FindEvent("b1")));
  EXPECT_TRUE(net.HasEdge(s, log.FindEvent("b2")));
  EXPECT_FALSE(net.and_split[static_cast<size_t>(s)]);  // exclusive branches
}

TEST(HeuristicMinerTest, AndSplitDetected) {
  EventLog log;
  for (int i = 0; i < 30; ++i) {
    log.AddTrace(i % 2 == 0 ? std::vector<std::string>{"s", "p", "q", "e"}
                            : std::vector<std::string>{"s", "q", "p", "e"});
  }
  CausalNet net = MineHeuristicNet(log);
  EventId s = log.FindEvent("s");
  EXPECT_TRUE(net.HasEdge(s, log.FindEvent("p")));
  EXPECT_TRUE(net.HasEdge(s, log.FindEvent("q")));
  EXPECT_TRUE(net.and_split[static_cast<size_t>(s)]);  // concurrent branches
}

TEST(HeuristicMinerTest, ConcurrencyDoesNotCreateFalseCausality) {
  // p and q interleave both ways: neither p=>q nor q=>p is dependable.
  EventLog log;
  for (int i = 0; i < 30; ++i) {
    log.AddTrace(i % 2 == 0 ? std::vector<std::string>{"s", "p", "q"}
                            : std::vector<std::string>{"s", "q", "p"});
  }
  CausalNet net = MineHeuristicNet(log);
  EventId p = log.FindEvent("p");
  EventId q = log.FindEvent("q");
  EXPECT_FALSE(net.HasEdge(p, q));
  EXPECT_FALSE(net.HasEdge(q, p));
}

TEST(HeuristicMinerTest, LengthTwoLoopDetected) {
  EventLog log;
  for (int i = 0; i < 20; ++i) {
    log.AddTrace({"s", "a", "r", "a", "r", "a", "e"});
  }
  CausalNet net = MineHeuristicNet(log);
  bool found = false;
  for (auto [a, b] : net.loops2) {
    std::string na = log.EventName(a);
    std::string nb = log.EventName(b);
    if ((na == "a" && nb == "r") || (na == "r" && nb == "a")) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(HeuristicMinerTest, MinObservationsFiltersNoise) {
  EventLog log;
  for (int i = 0; i < 20; ++i) log.AddTrace({"a", "b"});
  log.AddTrace({"b", "a"});  // one noisy reversal
  MinerOptions strict;
  strict.min_observations = 5;
  CausalNet net = MineHeuristicNet(log, strict);
  EXPECT_TRUE(net.HasEdge(log.FindEvent("a"), log.FindEvent("b")));
  EXPECT_FALSE(net.HasEdge(log.FindEvent("b"), log.FindEvent("a")));
}

TEST(HeuristicMinerTest, EmptyLog) {
  EventLog log;
  CausalNet net = MineHeuristicNet(log);
  EXPECT_TRUE(net.edges.empty());
  EXPECT_TRUE(net.activities.empty());
}

TEST(HeuristicMinerTest, MinedNetReflectsGeneratingTree) {
  // Generator round-trip: a played-out SEQ(a0, a1, ..., a7) process must
  // mine back the chain edges.
  Rng rng(5);
  ProcessTreeOptions opts;
  opts.num_activities = 8;
  opts.weight_xor = 0.0;
  opts.weight_and = 0.0;
  opts.weight_loop = 0.0;  // pure sequences
  auto tree = GenerateProcessTree(opts, &rng);
  PlayoutOptions playout;
  playout.num_traces = 50;
  Rng rng2(6);
  EventLog log = PlayoutLog(*tree, playout, &rng2);
  CausalNet net = MineHeuristicNet(log);
  // A pure-SEQ process of n activities yields exactly n-1 causal edges.
  EXPECT_EQ(net.edges.size(), log.NumEvents() - 1);
  EXPECT_EQ(net.start_activities.size(), 1u);
  EXPECT_EQ(net.end_activities.size(), 1u);
}

}  // namespace
}  // namespace ems
