#include "discovery/pnml_export.h"
#include <fstream>

#include <sstream>

#include <gtest/gtest.h>

namespace ems {
namespace {

EventLog ChainLog() {
  EventLog log;
  for (int i = 0; i < 10; ++i) log.AddTrace({"a", "b & c", "d"});
  return log;
}

TEST(PnmlExportTest, StructureComplete) {
  EventLog log = ChainLog();
  CausalNet net = MineHeuristicNet(log);
  std::ostringstream out;
  ASSERT_TRUE(WritePnml(net, out, "test_net").ok());
  std::string pnml = out.str();
  EXPECT_NE(pnml.find("<pnml"), std::string::npos);
  EXPECT_NE(pnml.find("<net id=\"test_net\""), std::string::npos);
  // One transition per activity, with escaped labels.
  EXPECT_NE(pnml.find("<transition id=\"t0\">"), std::string::npos);
  EXPECT_NE(pnml.find("b &amp; c"), std::string::npos);
  // Source marking, sink, edge places.
  EXPECT_NE(pnml.find("p_source"), std::string::npos);
  EXPECT_NE(pnml.find("p_sink"), std::string::npos);
  EXPECT_NE(pnml.find("<initialMarking>"), std::string::npos);
  // Two arcs per causal edge + start/end arcs.
  size_t arcs = 0, pos = 0;
  while ((pos = pnml.find("<arc ", pos)) != std::string::npos) {
    ++arcs;
    ++pos;
  }
  EXPECT_EQ(arcs, 2 * net.edges.size() + net.start_activities.size() +
                      net.end_activities.size());
}

TEST(PnmlExportTest, FileRoundTripWritable) {
  EventLog log = ChainLog();
  CausalNet net = MineHeuristicNet(log);
  std::string path = ::testing::TempDir() + "/ems_test.pnml";
  ASSERT_TRUE(WritePnmlFile(net, path).ok());
  std::ifstream check(path);
  EXPECT_TRUE(check.good());
  EXPECT_TRUE(WritePnmlFile(net, "/no/such/dir/x.pnml").IsIOError());
}

TEST(PnmlExportTest, EmptyNet) {
  CausalNet net;
  std::ostringstream out;
  ASSERT_TRUE(WritePnml(net, out).ok());
  EXPECT_NE(out.str().find("</pnml>"), std::string::npos);
}

}  // namespace
}  // namespace ems
