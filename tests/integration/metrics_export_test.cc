// End-to-end check of `ems_match --metrics-out`: runs the real binary on
// two small trace-format logs and asserts the exported PipelineReport is
// well-formed JSON carrying the expected phase spans and counters. The
// binary path is injected by CMake as EMS_MATCH_BINARY.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace ems {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

void WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << path;
  out << body;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Minimal structural validator: walks the document and checks that
// braces/brackets nest correctly outside of string literals.
bool BalancedJson(const std::string& s) {
  std::string stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') stack += c;
    else if (c == '}') {
      if (stack.empty() || stack.back() != '{') return false;
      stack.pop_back();
    } else if (c == ']') {
      if (stack.empty() || stack.back() != '[') return false;
      stack.pop_back();
    }
  }
  return stack.empty() && !in_string;
}

TEST(MetricsExportTest, EmsMatchWritesPipelineReportJson) {
  const std::string dir = TempDir();
  const std::string log1 = dir + "/metrics_export_log1.txt";
  const std::string log2 = dir + "/metrics_export_log2.txt";
  const std::string metrics = dir + "/metrics_export_report.json";
  const std::string trace = dir + "/metrics_export_trace.json";
  WriteFile(log1, "a;b;c;d\na;b;d\na;c;d\nb;a;c;d\n");
  WriteFile(log2, "a;b;c;d\na;b;d\na;c;b;d\nb;c;d\n");

  std::string cmd = std::string(EMS_MATCH_BINARY) + " --labels=none" +
                    " --metrics-out=" + metrics + " --trace-out=" + trace +
                    " " + log1 + " " + log2 + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::string report = ReadFile(metrics);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(BalancedJson(report));

  // The span tree covers the pipeline phases...
  EXPECT_NE(report.find("\"match\""), std::string::npos);
  EXPECT_NE(report.find("\"graph_build\""), std::string::npos);
  EXPECT_NE(report.find("\"ems_fixpoint\""), std::string::npos);
  EXPECT_NE(report.find("\"ems_forward\""), std::string::npos);
  EXPECT_NE(report.find("\"ems_backward\""), std::string::npos);
  EXPECT_NE(report.find("\"selection\""), std::string::npos);
  // ...and the registry carries the headline counters.
  EXPECT_NE(report.find("\"ems.iterations\""), std::string::npos);
  EXPECT_NE(report.find("\"ems.formula_evaluations\""), std::string::npos);
  EXPECT_NE(report.find("\"ems.pairs_pruned_converged\""), std::string::npos);
  EXPECT_NE(report.find("\"ems.pairs_skipped_unchanged\""), std::string::npos);
  EXPECT_NE(report.find("\"ems.coefficient_table_bytes\""), std::string::npos);
  EXPECT_NE(report.find("\"graph.builds\":2"), std::string::npos);
  EXPECT_NE(report.find("\"total_millis\""), std::string::npos);
  // The EmsStats block mirrors the delta-skip counter too.
  EXPECT_NE(report.find("\"pairs_skipped_unchanged\""), std::string::npos);

  // The Chrome trace is a separate, also balanced document.
  std::string chrome = ReadFile(trace);
  ASSERT_FALSE(chrome.empty());
  EXPECT_TRUE(BalancedJson(chrome));
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}

TEST(MetricsExportTest, CompositeModeExportsCompositeCounters) {
  const std::string dir = TempDir();
  const std::string log1 = dir + "/metrics_export_comp1.txt";
  const std::string log2 = dir + "/metrics_export_comp2.txt";
  const std::string metrics = dir + "/metrics_export_comp.json";
  WriteFile(log1, "a;b;c;d\na;b;c;d\na;c;d\n");
  WriteFile(log2, "a;x;d\na;x;d\na;d\n");

  std::string cmd = std::string(EMS_MATCH_BINARY) + " --labels=qgram" +
                    " --composites --threads=4 --metrics-out=" + metrics +
                    " " + log1 + " " + log2 + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::string report = ReadFile(metrics);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(BalancedJson(report));
  EXPECT_NE(report.find("\"composite_search\""), std::string::npos);
  EXPECT_NE(report.find("\"candidate_discovery\""), std::string::npos);
  EXPECT_NE(report.find("\"composite.candidates_evaluated\""),
            std::string::npos);
  // Counters from the incremental-search engine: graph-summary builds,
  // label-cache traffic, and the parallel-step evaluation count.
  EXPECT_NE(report.find("\"graph.incremental_builds\""), std::string::npos);
  EXPECT_NE(report.find("\"text.label_cache_hits\""), std::string::npos);
  EXPECT_NE(report.find("\"text.label_cache_misses\""), std::string::npos);
  EXPECT_NE(report.find("\"composite.candidates_evaluated_parallel\""),
            std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
  std::remove(metrics.c_str());
}

}  // namespace
}  // namespace ems
