// End-to-end check of `ems_match --metrics-out`: runs the real binary on
// two small trace-format logs and asserts the exported PipelineReport is
// well-formed JSON carrying the expected phase spans and counters. The
// binary path is injected by CMake as EMS_MATCH_BINARY.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace ems {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

void WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << path;
  out << body;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Minimal structural validator: walks the document and checks that
// braces/brackets nest correctly outside of string literals.
bool BalancedJson(const std::string& s) {
  std::string stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') stack += c;
    else if (c == '}') {
      if (stack.empty() || stack.back() != '{') return false;
      stack.pop_back();
    } else if (c == ']') {
      if (stack.empty() || stack.back() != '[') return false;
      stack.pop_back();
    }
  }
  return stack.empty() && !in_string;
}

TEST(MetricsExportTest, EmsMatchWritesPipelineReportJson) {
  const std::string dir = TempDir();
  const std::string log1 = dir + "/metrics_export_log1.txt";
  const std::string log2 = dir + "/metrics_export_log2.txt";
  const std::string metrics = dir + "/metrics_export_report.json";
  const std::string trace = dir + "/metrics_export_trace.json";
  WriteFile(log1, "a;b;c;d\na;b;d\na;c;d\nb;a;c;d\n");
  WriteFile(log2, "a;b;c;d\na;b;d\na;c;b;d\nb;c;d\n");

  std::string cmd = std::string(EMS_MATCH_BINARY) + " --labels=none" +
                    " --metrics-out=" + metrics + " --trace-out=" + trace +
                    " " + log1 + " " + log2 + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::string report = ReadFile(metrics);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(BalancedJson(report));

  // The span tree covers the pipeline phases...
  EXPECT_NE(report.find("\"match\""), std::string::npos);
  EXPECT_NE(report.find("\"graph_build\""), std::string::npos);
  EXPECT_NE(report.find("\"ems_fixpoint\""), std::string::npos);
  EXPECT_NE(report.find("\"ems_forward\""), std::string::npos);
  EXPECT_NE(report.find("\"ems_backward\""), std::string::npos);
  EXPECT_NE(report.find("\"selection\""), std::string::npos);
  // ...and the registry carries the headline counters.
  EXPECT_NE(report.find("\"ems.iterations\""), std::string::npos);
  EXPECT_NE(report.find("\"ems.formula_evaluations\""), std::string::npos);
  EXPECT_NE(report.find("\"ems.pairs_pruned_converged\""), std::string::npos);
  EXPECT_NE(report.find("\"ems.pairs_skipped_unchanged\""), std::string::npos);
  EXPECT_NE(report.find("\"ems.coefficient_table_bytes\""), std::string::npos);
  EXPECT_NE(report.find("\"graph.builds\":2"), std::string::npos);
  EXPECT_NE(report.find("\"total_millis\""), std::string::npos);
  // The EmsStats block mirrors the delta-skip counter too.
  EXPECT_NE(report.find("\"pairs_skipped_unchanged\""), std::string::npos);

  // The Chrome trace is a separate, also balanced document.
  std::string chrome = ReadFile(trace);
  ASSERT_FALSE(chrome.empty());
  EXPECT_TRUE(BalancedJson(chrome));
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
  std::remove(metrics.c_str());
  std::remove(trace.c_str());
}

// --cache-dir wires the persistent artifact store into the exported
// registry: a cold run writes snapshots (store.misses / store.writes),
// a second run over the same inputs hits them (store.hits) and produces
// byte-identical correspondences.
TEST(MetricsExportTest, CacheDirExportsStoreCountersAndIdenticalResults) {
  const std::string dir = TempDir();
  const std::string log1 = dir + "/metrics_export_store1.txt";
  const std::string log2 = dir + "/metrics_export_store2.txt";
  const std::string cache_dir = dir + "/metrics_export_store_cache";
  const std::string cold_metrics = dir + "/metrics_export_store_cold.json";
  const std::string warm_metrics = dir + "/metrics_export_store_warm.json";
  const std::string cold_out = dir + "/metrics_export_store_cold.out";
  const std::string warm_out = dir + "/metrics_export_store_warm.out";
  WriteFile(log1, "a;b;c;d\na;b;d\na;c;d\nb;a;c;d\n");
  WriteFile(log2, "a;b;c;d\na;b;d\na;c;b;d\nb;c;d\n");
  std::system(("rm -rf " + cache_dir).c_str());

  const std::string base = std::string(EMS_MATCH_BINARY) +
                           " --labels=none --json --cache-dir=" + cache_dir +
                           " ";
  std::string cold = base + "--metrics-out=" + cold_metrics + " " + log1 +
                     " " + log2 + " > " + cold_out;
  ASSERT_EQ(std::system(cold.c_str()), 0) << cold;
  std::string warm = base + "--metrics-out=" + warm_metrics + " " + log1 +
                     " " + log2 + " > " + warm_out;
  ASSERT_EQ(std::system(warm.c_str()), 0) << warm;

  const std::string cold_report = ReadFile(cold_metrics);
  ASSERT_FALSE(cold_report.empty());
  EXPECT_TRUE(BalancedJson(cold_report));
  EXPECT_NE(cold_report.find("\"store.misses\":2"), std::string::npos);
  EXPECT_NE(cold_report.find("\"store.writes\":2"), std::string::npos);
  EXPECT_NE(cold_report.find("\"store.bytes_written\""), std::string::npos);

  const std::string warm_report = ReadFile(warm_metrics);
  ASSERT_FALSE(warm_report.empty());
  EXPECT_TRUE(BalancedJson(warm_report));
  EXPECT_NE(warm_report.find("\"store.hits\":2"), std::string::npos);
  EXPECT_NE(warm_report.find("\"store.bytes_read\""), std::string::npos);
  EXPECT_EQ(warm_report.find("\"store.fallback_rederives\":"),
            warm_report.find("\"store.fallback_rederives\":0"));

  // Snapshot-loaded logs drive the exact same matching.
  const std::string cold_result = ReadFile(cold_out);
  ASSERT_FALSE(cold_result.empty());
  EXPECT_EQ(ReadFile(warm_out), cold_result);

  std::system(("rm -rf " + cache_dir).c_str());
  for (const std::string& f :
       {log1, log2, cold_metrics, warm_metrics, cold_out, warm_out}) {
    std::remove(f.c_str());
  }
}

TEST(MetricsExportTest, CompositeModeExportsCompositeCounters) {
  const std::string dir = TempDir();
  const std::string log1 = dir + "/metrics_export_comp1.txt";
  const std::string log2 = dir + "/metrics_export_comp2.txt";
  const std::string metrics = dir + "/metrics_export_comp.json";
  WriteFile(log1, "a;b;c;d\na;b;c;d\na;c;d\n");
  WriteFile(log2, "a;x;d\na;x;d\na;d\n");

  std::string cmd = std::string(EMS_MATCH_BINARY) + " --labels=qgram" +
                    " --composites --threads=4 --metrics-out=" + metrics +
                    " " + log1 + " " + log2 + " > /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::string report = ReadFile(metrics);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(BalancedJson(report));
  EXPECT_NE(report.find("\"composite_search\""), std::string::npos);
  EXPECT_NE(report.find("\"candidate_discovery\""), std::string::npos);
  EXPECT_NE(report.find("\"composite.candidates_evaluated\""),
            std::string::npos);
  // Counters from the incremental-search engine: graph-summary builds,
  // label-cache traffic, and the parallel-step evaluation count.
  EXPECT_NE(report.find("\"graph.incremental_builds\""), std::string::npos);
  EXPECT_NE(report.find("\"text.label_cache_hits\""), std::string::npos);
  EXPECT_NE(report.find("\"text.label_cache_misses\""), std::string::npos);
  EXPECT_NE(report.find("\"composite.candidates_evaluated_parallel\""),
            std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
  std::remove(metrics.c_str());
}

}  // namespace
}  // namespace ems
