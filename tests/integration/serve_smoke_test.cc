// End-to-end smoke test of the ems_serve binary: pipes three job lines
// through it and validates the JSON responses and the metrics export.
// The binary path is injected by CMake as EMS_SERVE_BINARY.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ems {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

void WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << path;
  out << body;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Brace/bracket balance outside string literals — same validator as
// metrics_export_test.
bool BalancedJson(const std::string& s) {
  std::string stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') stack += c;
    else if (c == '}') {
      if (stack.empty() || stack.back() != '{') return false;
      stack.pop_back();
    } else if (c == ']') {
      if (stack.empty() || stack.back() != '[') return false;
      stack.pop_back();
    }
  }
  return stack.empty() && !in_string;
}

TEST(ServeSmokeTest, ThreeJobsYieldThreeJsonResponsesAndMetrics) {
  const std::string dir = TempDir();
  const std::string log1 = dir + "/serve_smoke_log1.txt";
  const std::string log2 = dir + "/serve_smoke_log2.txt";
  const std::string jobs = dir + "/serve_smoke_jobs.ndjson";
  const std::string results = dir + "/serve_smoke_results.ndjson";
  const std::string metrics = dir + "/serve_smoke_metrics.json";
  WriteFile(log1, "a;b;c;d\na;b;d\na;c;d\nb;a;c;d\n");
  WriteFile(log2, "a;b;c;d\na;b;d\na;c;b;d\nb;c;d\n");

  std::ostringstream job_lines;
  const std::string pair =
      "\"log1\":\"" + log1 + "\",\"log2\":\"" + log2 + "\"";
  job_lines << "{\"id\":\"j1\"," << pair << ",\"labels\":\"none\"}\n";
  job_lines << "{\"id\":\"j2\"," << pair << "}\n";
  job_lines << "{\"id\":\"j3\"," << pair
            << ",\"engine\":\"estimated\",\"iterations\":3}\n";
  WriteFile(jobs, job_lines.str());

  const std::string cmd = std::string(EMS_SERVE_BINARY) + " --threads=2" +
                          " --metrics-out=" + metrics + " < " + jobs + " > " +
                          results + " 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // One well-formed JSON response per job, every one ok.
  std::ifstream in(results);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  std::string ids;
  for (const std::string& l : lines) {
    EXPECT_TRUE(BalancedJson(l)) << l;
    EXPECT_NE(l.find("\"status\":\"ok\""), std::string::npos) << l;
    EXPECT_NE(l.find("\"correspondences\""), std::string::npos) << l;
    EXPECT_NE(l.find("\"millis\""), std::string::npos) << l;
    ids += l.substr(0, l.find(','));  // {"id":"jN"
  }
  // All three ids came back (order may differ: completion order).
  EXPECT_NE(ids.find("j1"), std::string::npos);
  EXPECT_NE(ids.find("j2"), std::string::npos);
  EXPECT_NE(ids.find("j3"), std::string::npos);

  // The metrics export carries the service and pool instruments.
  std::string report = ReadFile(metrics);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(BalancedJson(report));
  EXPECT_NE(report.find("\"serve.jobs_submitted\":3"), std::string::npos);
  EXPECT_NE(report.find("\"serve.jobs_ok\":3"), std::string::npos);
  // Exact hit/miss counts vary with scheduling (concurrent first touches
  // may both miss); the instruments must exist either way.
  EXPECT_NE(report.find("\"serve.cache.misses\""), std::string::npos);
  EXPECT_NE(report.find("\"serve.cache.hits\""), std::string::npos);
  EXPECT_NE(report.find("\"serve.job_millis\""), std::string::npos);
  EXPECT_NE(report.find("\"exec.pool.tasks_submitted\""), std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
  std::remove(jobs.c_str());
  std::remove(results.c_str());
  std::remove(metrics.c_str());
}

TEST(ServeSmokeTest, ErrorJobsRenderAsErrorLinesWithExitZero) {
  const std::string dir = TempDir();
  const std::string jobs = dir + "/serve_smoke_badjobs.ndjson";
  const std::string results = dir + "/serve_smoke_badresults.ndjson";
  WriteFile(jobs,
            "{\"id\":\"nope\",\"log1\":\"/no/such/file.txt\","
            "\"log2\":\"/no/such/other.txt\"}\n"
            "this is not json\n");

  const std::string cmd = std::string(EMS_SERVE_BINARY) + " < " + jobs +
                          " > " + results + " 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(results);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(BalancedJson(l)) << l;
    EXPECT_NE(l.find("\"status\":\"error\""), std::string::npos) << l;
  }

  std::remove(jobs.c_str());
  std::remove(results.c_str());
}

}  // namespace
}  // namespace ems
