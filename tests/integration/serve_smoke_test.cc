// End-to-end smoke test of the ems_serve binary: pipes three job lines
// through it and validates the JSON responses and the metrics export.
// The binary path is injected by CMake as EMS_SERVE_BINARY.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ems {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

void WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << path;
  out << body;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Brace/bracket balance outside string literals — same validator as
// metrics_export_test.
bool BalancedJson(const std::string& s) {
  std::string stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') stack += c;
    else if (c == '}') {
      if (stack.empty() || stack.back() != '{') return false;
      stack.pop_back();
    } else if (c == ']') {
      if (stack.empty() || stack.back() != '[') return false;
      stack.pop_back();
    }
  }
  return stack.empty() && !in_string;
}

TEST(ServeSmokeTest, ThreeJobsYieldThreeJsonResponsesAndMetrics) {
  const std::string dir = TempDir();
  const std::string log1 = dir + "/serve_smoke_log1.txt";
  const std::string log2 = dir + "/serve_smoke_log2.txt";
  const std::string jobs = dir + "/serve_smoke_jobs.ndjson";
  const std::string results = dir + "/serve_smoke_results.ndjson";
  const std::string metrics = dir + "/serve_smoke_metrics.json";
  WriteFile(log1, "a;b;c;d\na;b;d\na;c;d\nb;a;c;d\n");
  WriteFile(log2, "a;b;c;d\na;b;d\na;c;b;d\nb;c;d\n");

  std::ostringstream job_lines;
  const std::string pair =
      "\"log1\":\"" + log1 + "\",\"log2\":\"" + log2 + "\"";
  job_lines << "{\"id\":\"j1\"," << pair << ",\"labels\":\"none\"}\n";
  job_lines << "{\"id\":\"j2\"," << pair << "}\n";
  job_lines << "{\"id\":\"j3\"," << pair
            << ",\"engine\":\"estimated\",\"iterations\":3}\n";
  WriteFile(jobs, job_lines.str());

  const std::string cmd = std::string(EMS_SERVE_BINARY) + " --threads=2" +
                          " --metrics-out=" + metrics + " < " + jobs + " > " +
                          results + " 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  // One well-formed JSON response per job, every one ok.
  std::ifstream in(results);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 3u);
  std::string ids;
  for (const std::string& l : lines) {
    EXPECT_TRUE(BalancedJson(l)) << l;
    EXPECT_NE(l.find("\"status\":\"ok\""), std::string::npos) << l;
    EXPECT_NE(l.find("\"correspondences\""), std::string::npos) << l;
    EXPECT_NE(l.find("\"millis\""), std::string::npos) << l;
    ids += l.substr(0, l.find(','));  // {"id":"jN"
  }
  // All three ids came back (order may differ: completion order).
  EXPECT_NE(ids.find("j1"), std::string::npos);
  EXPECT_NE(ids.find("j2"), std::string::npos);
  EXPECT_NE(ids.find("j3"), std::string::npos);

  // The metrics export carries the service and pool instruments.
  std::string report = ReadFile(metrics);
  ASSERT_FALSE(report.empty());
  EXPECT_TRUE(BalancedJson(report));
  EXPECT_NE(report.find("\"serve.jobs_submitted\":3"), std::string::npos);
  EXPECT_NE(report.find("\"serve.jobs_ok\":3"), std::string::npos);
  // Exact hit/miss counts vary with scheduling (concurrent first touches
  // may both miss); the instruments must exist either way.
  EXPECT_NE(report.find("\"serve.cache.misses\""), std::string::npos);
  EXPECT_NE(report.find("\"serve.cache.hits\""), std::string::npos);
  EXPECT_NE(report.find("\"serve.job_millis\""), std::string::npos);
  EXPECT_NE(report.find("\"exec.pool.tasks_submitted\""), std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
  std::remove(jobs.c_str());
  std::remove(results.c_str());
  std::remove(metrics.c_str());
}

TEST(ServeSmokeTest, ErrorJobsRenderAsErrorLinesWithExitZero) {
  const std::string dir = TempDir();
  const std::string jobs = dir + "/serve_smoke_badjobs.ndjson";
  const std::string results = dir + "/serve_smoke_badresults.ndjson";
  WriteFile(jobs,
            "{\"id\":\"nope\",\"log1\":\"/no/such/file.txt\","
            "\"log2\":\"/no/such/other.txt\"}\n"
            "this is not json\n");

  const std::string cmd = std::string(EMS_SERVE_BINARY) + " < " + jobs +
                          " > " + results + " 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(results);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_TRUE(BalancedJson(l)) << l;
    EXPECT_NE(l.find("\"status\":\"error\""), std::string::npos) << l;
  }

  std::remove(jobs.c_str());
  std::remove(results.c_str());
}

// The telemetry plane end to end: admin commands answered on the job
// stream and a --stats-out exposition file written by the background
// exporter (final write on shutdown covers short runs).
TEST(ServeSmokeTest, StatsIntervalWritesExpositionAndAdminCommandsAnswer) {
  const std::string dir = TempDir();
  const std::string log1 = dir + "/serve_stats_log1.txt";
  const std::string log2 = dir + "/serve_stats_log2.txt";
  const std::string jobs = dir + "/serve_stats_jobs.ndjson";
  const std::string results = dir + "/serve_stats_results.ndjson";
  const std::string stats_out = dir + "/serve_stats_exposition.prom";
  std::remove(stats_out.c_str());
  WriteFile(log1, "a;b;c;d\na;b;d\na;c;d\n");
  WriteFile(log2, "a;b;c;d\na;c;b;d\nb;c;d\n");

  std::ostringstream job_lines;
  const std::string pair =
      "\"log1\":\"" + log1 + "\",\"log2\":\"" + log2 + "\"";
  job_lines << "{\"id\":\"j1\"," << pair << ",\"labels\":\"none\"}\n";
  job_lines << "{\"cmd\":\"stats\",\"id\":\"s1\"}\n";
  job_lines << "{\"id\":\"j2\"," << pair << ",\"labels\":\"none\"}\n";
  job_lines << "{\"cmd\":\"health\",\"id\":\"h1\"}\n";
  job_lines << "{\"cmd\":\"slow\",\"id\":\"sl1\"}\n";
  WriteFile(jobs, job_lines.str());

  const std::string cmd = std::string(EMS_SERVE_BINARY) + " --threads=2" +
                          " --stats-out=" + stats_out +
                          " --stats-interval=30 --log-level=error < " + jobs +
                          " > " + results + " 2> /dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0) << cmd;

  std::ifstream in(results);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 5u);  // 2 jobs + 3 admin responses
  std::string all;
  for (const std::string& l : lines) {
    EXPECT_TRUE(BalancedJson(l)) << l;
    all += l;
    all += '\n';
  }
  EXPECT_NE(all.find("\"id\":\"s1\""), std::string::npos);
  EXPECT_NE(all.find("\"cmd\":\"stats\""), std::string::npos);
  EXPECT_NE(all.find("\"id\":\"h1\""), std::string::npos);
  EXPECT_NE(all.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(all.find("\"id\":\"sl1\""), std::string::npos);
  EXPECT_NE(all.find("\"flight_recorder\""), std::string::npos);

  // The exporter's shutdown write landed even though the interval (30s)
  // never elapsed, and the document is exposition text, not JSON.
  const std::string exposition = ReadFile(stats_out);
  ASSERT_FALSE(exposition.empty());
  EXPECT_NE(exposition.find("# TYPE serve_jobs_ok_total counter"),
            std::string::npos);
  EXPECT_NE(exposition.find("serve_jobs_ok_total 2"), std::string::npos);
  EXPECT_NE(exposition.find("# TYPE serve_latency_ms_ok summary"),
            std::string::npos);
  EXPECT_NE(exposition.find("serve_latency_ms_ok{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(exposition.find("le=\"+Inf\""), std::string::npos);
  // No half-written temp file left behind.
  EXPECT_FALSE(std::ifstream(stats_out + ".tmp").good());

  std::remove(log1.c_str());
  std::remove(log2.c_str());
  std::remove(jobs.c_str());
  std::remove(results.c_str());
  std::remove(stats_out.c_str());
}

// --log-level gates the structured stderr stream: error keeps it silent
// on a clean run, debug emits JSON event lines.
TEST(ServeSmokeTest, LogLevelControlsStderrVerbosity) {
  const std::string dir = TempDir();
  const std::string jobs = dir + "/serve_log_jobs.ndjson";
  const std::string err_quiet = dir + "/serve_log_quiet.stderr";
  const std::string err_debug = dir + "/serve_log_debug.stderr";
  WriteFile(jobs, "{\"cmd\":\"health\",\"id\":\"h\"}\n");

  const std::string quiet_cmd = std::string(EMS_SERVE_BINARY) +
                                " --log-level=error < " + jobs +
                                " > /dev/null 2> " + err_quiet;
  ASSERT_EQ(std::system(quiet_cmd.c_str()), 0) << quiet_cmd;
  EXPECT_EQ(ReadFile(err_quiet), "");

  const std::string debug_cmd = std::string(EMS_SERVE_BINARY) +
                                " --log-level=debug < " + jobs +
                                " > /dev/null 2> " + err_debug;
  ASSERT_EQ(std::system(debug_cmd.c_str()), 0) << debug_cmd;
  const std::string debug_log = ReadFile(err_debug);
  ASSERT_FALSE(debug_log.empty());
  // Every stderr line is one structured JSON event.
  std::istringstream events(debug_log);
  std::string event;
  while (std::getline(events, event)) {
    if (event.empty()) continue;
    EXPECT_TRUE(BalancedJson(event)) << event;
    EXPECT_NE(event.find("\"ts\":\""), std::string::npos) << event;
    EXPECT_NE(event.find("\"level\":\""), std::string::npos) << event;
    EXPECT_NE(event.find("\"msg\":\""), std::string::npos) << event;
  }
  EXPECT_NE(debug_log.find("stream done"), std::string::npos);

  // An invalid level is rejected with a usage error.
  const std::string bad_cmd = std::string(EMS_SERVE_BINARY) +
                              " --log-level=loud < /dev/null > /dev/null 2> "
                              "/dev/null";
  EXPECT_NE(std::system(bad_cmd.c_str()), 0);

  std::remove(jobs.c_str());
  std::remove(err_quiet.c_str());
  std::remove(err_debug.c_str());
}

}  // namespace
}  // namespace ems
