// End-to-end integration: file I/O -> matching pipeline -> evaluation,
// exercising the whole stack the way the examples and benches do.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "eval/harness.h"
#include "log/log_io.h"
#include "log/xes.h"
#include "paper_example.h"
#include "synth/dataset.h"

namespace ems {
namespace {

TEST(EndToEndTest, XesRoundTripThenMatch) {
  // Serialize the paper logs to XES, read them back, and match.
  EventLog log1 = testing::BuildPaperLog1();
  EventLog log2 = testing::BuildPaperLog2();
  std::ostringstream buf1, buf2;
  ASSERT_TRUE(WriteXes(log1, buf1).ok());
  ASSERT_TRUE(WriteXes(log2, buf2).ok());
  std::istringstream in1(buf1.str()), in2(buf2.str());
  Result<EventLog> r1 = ReadXes(in1);
  Result<EventLog> r2 = ReadXes(in2);
  ASSERT_TRUE(r1.ok() && r2.ok());

  Matcher matcher;
  Result<MatchResult> result = matcher.Match(*r1, *r2);
  ASSERT_TRUE(result.ok());
  bool paid_cash_correct = false;
  for (const Correspondence& c : result->correspondences) {
    if (c.events1 == std::vector<std::string>{"PaidCash"} &&
        c.events2 == std::vector<std::string>{"PaidCash2"}) {
      paid_cash_correct = true;
    }
  }
  EXPECT_TRUE(paid_cash_correct);
}

TEST(EndToEndTest, GeneratedDatasetFullPipeline) {
  RealisticDatasetOptions opts;
  opts.ds_f_pairs = 2;
  opts.ds_b_pairs = 2;
  opts.ds_fb_pairs = 2;
  opts.composite_pairs = 1;
  opts.num_traces = 80;
  opts.min_activities = 12;
  opts.max_activities = 16;
  RealisticDataset ds = MakeRealisticDataset(opts);

  HarnessOptions harness;
  QualityAccumulator acc;
  for (const LogPair* pair : ds.Singleton()) {
    MethodRun run = RunMethod(Method::kEms, *pair, harness);
    ASSERT_FALSE(run.dnf);
    acc.Add(run.quality);
  }
  // Structural EMS on small opaque pairs: clearly better than random.
  EXPECT_GT(acc.Mean().f_measure, 0.3);
}

TEST(EndToEndTest, CompositePairRecall) {
  // A pair with an injected composite: the composite-aware EMS pipeline
  // must recover strictly more truth links than pure 1:1 matching misses.
  PairOptions pair_opts;
  pair_opts.num_activities = 8;
  pair_opts.num_traces = 80;
  pair_opts.num_composites = 1;
  pair_opts.dislocation = 0;
  pair_opts.seed = 901;
  LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
  if (!pair.has_composites) GTEST_SKIP() << "seed produced no composite";

  HarnessOptions no_comp;
  HarnessOptions with_comp;
  with_comp.composites = true;
  MethodRun plain = RunMethod(Method::kEms, pair, no_comp);
  MethodRun composite = RunMethod(Method::kEms, pair, with_comp);
  EXPECT_GE(composite.quality.recall + 1e-9, plain.quality.recall);
}

TEST(EndToEndTest, CsvPipelineCompatibility) {
  // CSV in, trace format out, identical statistics.
  std::istringstream csv(
      "case,activity\n"
      "t1,a\nt1,b\nt1,c\n"
      "t2,a\nt2,c\n");
  Result<EventLog> log = ReadCsv(csv);
  ASSERT_TRUE(log.ok());
  DependencyGraph g = DependencyGraph::Build(*log);
  EXPECT_EQ(g.NumNodes(), 4u);  // 3 events + artificial
  EXPECT_DOUBLE_EQ(g.NodeFrequency(1), 1.0);  // "a" in both traces
}

TEST(EndToEndTest, DeterministicEndToEnd) {
  // The whole pipeline is seed-deterministic: same dataset, same scores.
  PairOptions pair_opts;
  pair_opts.num_activities = 10;
  pair_opts.num_traces = 50;
  pair_opts.seed = 777;
  LogPair a = MakeLogPair(Testbed::kDsB, pair_opts);
  LogPair b = MakeLogPair(Testbed::kDsB, pair_opts);
  HarnessOptions harness;
  MethodRun ra = RunMethod(Method::kEms, a, harness);
  MethodRun rb = RunMethod(Method::kEms, b, harness);
  EXPECT_DOUBLE_EQ(ra.quality.f_measure, rb.quality.f_measure);
  EXPECT_EQ(ra.quality.correct_links, rb.quality.correct_links);
}

}  // namespace
}  // namespace ems
