// ArtifactStore: content-addressed hit/miss behavior, atomic writes,
// graceful fallback on corruption and version skew (a bad cache file
// must never surface as an error — only as a re-derive), byte-budget
// LRU eviction, store.* metrics, and thread safety of concurrent
// loads/stores. Also covers LoadEventLogThroughStore, the load-through
// path the serve layer and CLI tools use.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "log/event_log.h"
#include "obs/context.h"
#include "serve/log_cache.h"
#include "store/artifact_store.h"
#include "store/hashing.h"
#include "store/snapshot.h"

namespace ems {
namespace store {
namespace {

namespace fs = std::filesystem;

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

// A unique, empty store directory per test.
class ArtifactStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir() + "/artifact_store_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }

  void TearDown() override { fs::remove_all(dir_); }

  ArtifactStore OpenStore(uint64_t max_bytes = 0) {
    ArtifactStoreOptions options;
    options.dir = dir_;
    options.max_bytes = max_bytes;
    options.obs = &obs_;
    Result<ArtifactStore> opened = ArtifactStore::Open(std::move(options));
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return std::move(opened).value();
  }

  uint64_t Count(const std::string& name) const {
    return obs_.metrics.CounterValue(name);
  }

  std::string dir_;
  ObsContext obs_;
};

std::string SampleSnapshot(const std::string& body) {
  SnapshotWriter w;
  w.Str(body);
  return w.Finish(ArtifactKind::kEventLog);
}

TEST_F(ArtifactStoreTest, OpenCreatesDirectory) {
  EXPECT_FALSE(fs::exists(dir_));
  ArtifactStore store = OpenStore();
  EXPECT_TRUE(fs::is_directory(dir_));
  EXPECT_EQ(store.TotalBytes(), 0u);
}

TEST_F(ArtifactStoreTest, OpenRejectsUnusablePath) {
  ArtifactStoreOptions options;
  options.dir = "/dev/null/not-a-directory";
  EXPECT_FALSE(ArtifactStore::Open(std::move(options)).ok());
  ArtifactStoreOptions empty;
  EXPECT_FALSE(ArtifactStore::Open(std::move(empty)).ok());
}

TEST_F(ArtifactStoreTest, MissThenStoreThenHit) {
  ArtifactStore store = OpenStore();
  const ArtifactKey key{ArtifactKind::kEventLog, 0x1234, 0x5678};
  EXPECT_EQ(store.Load(key), std::nullopt);
  EXPECT_EQ(Count("store.misses"), 1u);

  const std::string snapshot = SampleSnapshot("hello");
  store.Store(key, snapshot);
  EXPECT_EQ(Count("store.writes"), 1u);
  EXPECT_EQ(Count("store.bytes_written"), snapshot.size());

  std::optional<std::string> loaded = store.Load(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, snapshot);
  EXPECT_EQ(Count("store.hits"), 1u);
  EXPECT_EQ(Count("store.bytes_read"), snapshot.size());
  EXPECT_EQ(store.TotalBytes(), snapshot.size());
}

TEST_F(ArtifactStoreTest, KeysAreContentAddressed) {
  ArtifactStore store = OpenStore();
  const ArtifactKey key{ArtifactKind::kEventLog, 1, 2};
  store.Store(key, SampleSnapshot("original"));
  // Different content hash, fingerprint, or kind: all distinct entries.
  EXPECT_EQ(store.Load({ArtifactKind::kEventLog, 9, 2}), std::nullopt);
  EXPECT_EQ(store.Load({ArtifactKind::kEventLog, 1, 9}), std::nullopt);
  EXPECT_EQ(store.Load({ArtifactKind::kDependencyGraph, 1, 2}), std::nullopt);
  EXPECT_TRUE(store.Load(key).has_value());
}

TEST_F(ArtifactStoreTest, CorruptFileFallsBackAndIsEvicted) {
  ArtifactStore store = OpenStore();
  const ArtifactKey key{ArtifactKind::kEventLog, 3, 4};
  const std::string snapshot = SampleSnapshot("precious");
  store.Store(key, snapshot);

  // Flip one payload byte on disk.
  const fs::path path = fs::path(dir_) / key.FileName();
  std::string bytes = snapshot;
  bytes[kSnapshotHeaderBytes] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  EXPECT_EQ(store.Load(key), std::nullopt);
  EXPECT_EQ(Count("store.fallback_rederives"), 1u);
  EXPECT_EQ(Count("store.hits"), 0u);
  EXPECT_FALSE(fs::exists(path));  // bad file dropped, Store can replace

  store.Store(key, snapshot);
  EXPECT_TRUE(store.Load(key).has_value());
}

TEST_F(ArtifactStoreTest, TruncatedAndVersionSkewedFilesFallBack) {
  ArtifactStore store = OpenStore();
  const std::string snapshot = SampleSnapshot("body");

  const ArtifactKey truncated_key{ArtifactKind::kEventLog, 5, 6};
  store.Store(truncated_key, snapshot);
  fs::resize_file(fs::path(dir_) / truncated_key.FileName(),
                  kSnapshotHeaderBytes + 2);
  EXPECT_EQ(store.Load(truncated_key), std::nullopt);

  const ArtifactKey skewed_key{ArtifactKind::kEventLog, 7, 8};
  std::string skewed = snapshot;
  const uint32_t future = kSnapshotVersion + 1;
  std::memcpy(&skewed[4], &future, sizeof(future));
  const uint64_t reseal =
      Hash64(skewed.data(), skewed.size() - kSnapshotTrailerBytes);
  std::memcpy(&skewed[skewed.size() - kSnapshotTrailerBytes], &reseal,
              sizeof(reseal));
  store.Store(skewed_key, skewed);
  EXPECT_EQ(store.Load(skewed_key), std::nullopt);

  EXPECT_EQ(Count("store.fallback_rederives"), 2u);
}

TEST_F(ArtifactStoreTest, ByteBudgetEvictsLeastRecentlyUsed) {
  const std::string snapshot = SampleSnapshot(std::string(100, 'x'));
  ArtifactStore store = OpenStore(/*max_bytes=*/2 * snapshot.size() + 10);

  const ArtifactKey a{ArtifactKind::kEventLog, 1, 0};
  const ArtifactKey b{ArtifactKind::kEventLog, 2, 0};
  const ArtifactKey c{ArtifactKind::kEventLog, 3, 0};
  store.Store(a, snapshot);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  store.Store(b, snapshot);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Touch a: b becomes the coldest entry.
  EXPECT_TRUE(store.Load(a).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  store.Store(c, snapshot);  // over budget: evicts b

  EXPECT_EQ(Count("store.evictions"), 1u);
  EXPECT_LE(store.TotalBytes(), store.max_bytes());
  EXPECT_TRUE(store.Load(a).has_value());
  EXPECT_EQ(store.Load(b), std::nullopt);
  EXPECT_TRUE(store.Load(c).has_value());
}

TEST_F(ArtifactStoreTest, ConcurrentLoadsAndStoresAreSafe) {
  ArtifactStore store = OpenStore();
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        // Half the keys are shared across threads, half are private.
        const uint64_t hash = (i % 2 == 0) ? i : t * 1000 + i;
        const ArtifactKey key{ArtifactKind::kEventLog, hash, 0};
        const std::string snapshot =
            SampleSnapshot("payload-" + std::to_string(hash));
        store.Store(key, snapshot);
        std::optional<std::string> loaded = store.Load(key);
        // A concurrent writer may have replaced the file, but whatever
        // loads must verify and carry the right content for the key.
        if (loaded.has_value()) {
          EXPECT_EQ(*loaded, snapshot);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(Count("store.fallback_rederives"), 0u);
  EXPECT_GT(Count("store.hits"), 0u);
}

TEST_F(ArtifactStoreTest, LoadThroughParsesOnceThenServesSnapshots) {
  ArtifactStore store = OpenStore();
  const std::string log_path = dir_ + "/source_log.txt";
  {
    std::ofstream out(log_path);
    out << "a;b;c\na;c;b\nb;c\n";
  }

  uint64_t hash_cold = 0;
  Result<EventLog> cold =
      serve::LoadEventLogThroughStore(&store, log_path, "auto", &hash_cold);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Count("store.misses"), 1u);
  EXPECT_EQ(Count("store.writes"), 1u);

  uint64_t hash_warm = 0;
  Result<EventLog> warm =
      serve::LoadEventLogThroughStore(&store, log_path, "auto", &hash_warm);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(Count("store.hits"), 1u);
  EXPECT_EQ(hash_warm, hash_cold);
  // The warm log is bit-identical to the parsed one.
  EXPECT_EQ(EncodeEventLog(*warm), EncodeEventLog(*cold));

  // Rewriting the source changes the content hash: the old snapshot is
  // never addressed again and the new content is parsed and stored.
  {
    std::ofstream out(log_path, std::ios::trunc);
    out << "x;y\nz\n";
  }
  Result<EventLog> rewritten =
      serve::LoadEventLogThroughStore(&store, log_path, "auto");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ(rewritten->NumTraces(), 2u);
  EXPECT_NE(rewritten->FindEvent("x"), kInvalidEvent);
  EXPECT_EQ(Count("store.misses"), 2u);
  EXPECT_EQ(Count("store.writes"), 2u);
}

TEST_F(ArtifactStoreTest, LoadThroughToleratesCorruptSnapshot) {
  ArtifactStore store = OpenStore();
  const std::string log_path = dir_ + "/source_corrupt.txt";
  {
    std::ofstream out(log_path);
    out << "a;b\nb;a\n";
  }
  Result<EventLog> cold =
      serve::LoadEventLogThroughStore(&store, log_path, "auto");
  ASSERT_TRUE(cold.ok());

  // Corrupt the written snapshot in place.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() != ".emsnap") continue;
    std::fstream file(entry.path(),
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(static_cast<std::streamoff>(kSnapshotHeaderBytes));
    file.put('\xFF');
  }

  // The request still succeeds — re-derived from source, not errored.
  Result<EventLog> recovered =
      serve::LoadEventLogThroughStore(&store, log_path, "auto");
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(EncodeEventLog(*recovered), EncodeEventLog(*cold));
  EXPECT_EQ(Count("store.fallback_rederives"), 1u);
}

TEST_F(ArtifactStoreTest, FileNameEncodesKindHashAndFingerprint) {
  const ArtifactKey key{ArtifactKind::kDependencyGraph, 0xABCD, 0x12};
  EXPECT_EQ(key.FileName(),
            "graph-000000000000abcd-0000000000000012.emsnap");
}

}  // namespace
}  // namespace store
}  // namespace ems
