// Snapshot layer: XXH64 vectors, framing envelope verification, and
// round-trip bit-identity for every artifact kind — decoded artifacts
// must equal their sources field for field and re-encode to the exact
// same bytes. Corruption (truncation, bit flips, version skew, kind
// mismatch, hostile counts) must decode to an error Status, never a
// crash or a wrong artifact.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/warm_match.h"
#include "graph/dependency_graph.h"
#include "graph/dependency_graph_builder.h"
#include "log/event_log.h"
#include "log/log_io.h"
#include "log/mxml.h"
#include "log/xes.h"
#include "store/hashing.h"
#include "store/snapshot.h"
#include "synth/log_generator.h"
#include "synth/process_tree.h"
#include "text/cached_label_similarity.h"
#include "text/label_similarity.h"
#include "util/random.h"

namespace ems {
namespace store {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

EventLog SampleLog() {
  EventLog log;
  log.AddTrace({"receive order", "check stock", "ship", "bill"});
  log.AddTrace({"receive order", "check stock", "bill", "ship"});
  log.AddTrace({"receive order", "reject"});
  log.AddTrace({"receive order", "check stock", "ship", "bill"});  // repeat
  return log;
}

EventLog SyntheticLog(uint64_t seed) {
  Rng rng(seed);
  ProcessTreeOptions tree_options;
  tree_options.num_activities = 12;
  std::unique_ptr<ProcessNode> tree = GenerateProcessTree(tree_options, &rng);
  PlayoutOptions playout;
  playout.num_traces = 60;
  return PlayoutLog(*tree, playout, &rng);
}

void ExpectSameLog(const EventLog& a, const EventLog& b) {
  ASSERT_EQ(a.NumEvents(), b.NumEvents());
  EXPECT_EQ(a.event_names(), b.event_names());
  ASSERT_EQ(a.NumTraces(), b.NumTraces());
  EXPECT_EQ(a.traces(), b.traces());
}

// ---------------------------------------------------------------------
// Hashing
// ---------------------------------------------------------------------

TEST(HashingTest, MatchesReferenceXxh64Vectors) {
  // Explicit string_view: a bare literal with a second integer argument
  // would resolve to the (const void*, size_t) overload instead.
  EXPECT_EQ(Hash64(std::string_view("")), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(Hash64(std::string_view("a")), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(Hash64(std::string_view("abc")), 0x44BC2CF5AD770999ULL);
}

TEST(HashingTest, CoversAllLengthRegimes) {
  // < 4, < 8, < 32, and >= 32 bytes take different code paths; each must
  // be deterministic and sensitive to every byte.
  for (size_t len : {1u, 5u, 17u, 31u, 32u, 33u, 100u}) {
    std::string data(len, 'x');
    const uint64_t h = Hash64(data);
    EXPECT_EQ(h, Hash64(data)) << len;
    for (size_t i = 0; i < len; ++i) {
      std::string mutated = data;
      mutated[i] ^= 1;
      EXPECT_NE(Hash64(mutated), h) << "byte " << i << " of " << len;
    }
  }
}

TEST(HashingTest, SeedChangesHash) {
  EXPECT_NE(Hash64(std::string_view("payload"), 0),
            Hash64(std::string_view("payload"), 1));
}

TEST(HashingTest, HashFileMatchesInMemoryHash) {
  const std::string path = TempDir() + "/hashing_test_file.bin";
  const std::string body = "some file contents\nwith two lines";
  {
    std::ofstream out(path, std::ios::binary);
    out << body;
  }
  Result<uint64_t> hashed = HashFile(path);
  ASSERT_TRUE(hashed.ok());
  EXPECT_EQ(hashed.value(), Hash64(body));
  std::remove(path.c_str());
}

TEST(HashingTest, HashFileReportsMissingFile) {
  EXPECT_FALSE(HashFile(TempDir() + "/hashing_test_absent.bin").ok());
}

TEST(HashingTest, HashHexIsFixedWidthLowercase) {
  EXPECT_EQ(HashHex(0), "0000000000000000");
  EXPECT_EQ(HashHex(0xDEADBEEFULL), "00000000deadbeef");
  EXPECT_EQ(HashHex(0x0123456789ABCDEFULL), "0123456789abcdef");
}

TEST(FingerprintBuilderTest, SensitiveToValuesNamesAndOrder) {
  const uint64_t base =
      FingerprintBuilder().Add("alpha", 0.5).Add("labels", "qgram").Finish();
  EXPECT_EQ(
      base,
      FingerprintBuilder().Add("alpha", 0.5).Add("labels", "qgram").Finish());
  EXPECT_NE(
      base,
      FingerprintBuilder().Add("alpha", 0.6).Add("labels", "qgram").Finish());
  EXPECT_NE(
      base,
      FingerprintBuilder().Add("beta", 0.5).Add("labels", "qgram").Finish());
  EXPECT_NE(
      base,
      FingerprintBuilder().Add("labels", "qgram").Add("alpha", 0.5).Finish());
  EXPECT_NE(FingerprintBuilder().Add("flag", true).Finish(),
            FingerprintBuilder().Add("flag", false).Finish());
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

TEST(SnapshotFramingTest, FieldsRoundTripExactly) {
  SnapshotWriter w;
  w.U8(7);
  w.U32(0xCAFEBABEu);
  w.U64(0x0123456789ABCDEFULL);
  w.I32(-42);
  w.F64(-0.0);
  w.F64(0.1);  // not exactly representable: bit pattern must survive
  w.Str("hello \xE2\x82\xAC");
  w.Str("");
  const std::string snapshot = w.Finish(ArtifactKind::kEventLog);

  EXPECT_TRUE(VerifySnapshot(snapshot, ArtifactKind::kEventLog).ok());
  Result<SnapshotReader> reader =
      SnapshotReader::Open(snapshot, ArtifactKind::kEventLog);
  ASSERT_TRUE(reader.ok());
  SnapshotReader r = std::move(reader).value();
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 0xCAFEBABEu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.I32(), -42);
  const double neg_zero = r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.F64(), 0.1);
  EXPECT_EQ(r.Str(), "hello \xE2\x82\xAC");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(SnapshotFramingTest, RejectsTruncation) {
  SnapshotWriter w;
  w.Str("payload");
  const std::string snapshot = w.Finish(ArtifactKind::kEventLog);
  for (size_t len : {size_t{0}, size_t{5}, kSnapshotHeaderBytes,
                     snapshot.size() - 1}) {
    EXPECT_FALSE(
        VerifySnapshot(snapshot.substr(0, len), ArtifactKind::kEventLog).ok())
        << len;
  }
}

TEST(SnapshotFramingTest, RejectsEveryBitFlip) {
  SnapshotWriter w;
  w.U64(1234);
  w.Str("abc");
  const std::string snapshot = w.Finish(ArtifactKind::kEventLog);
  for (size_t i = 0; i < snapshot.size(); ++i) {
    std::string mutated = snapshot;
    mutated[i] ^= 0x10;
    EXPECT_FALSE(VerifySnapshot(mutated, ArtifactKind::kEventLog).ok())
        << "byte " << i;
  }
}

TEST(SnapshotFramingTest, RejectsVersionSkewEvenWithValidChecksum) {
  SnapshotWriter w;
  w.U64(1);
  std::string snapshot = w.Finish(ArtifactKind::kEventLog);
  // Bump the format version and re-seal the trailer, simulating a file
  // written by a future build: the envelope is intact, only the version
  // differs, and it must still be rejected.
  const uint32_t future = kSnapshotVersion + 1;
  std::memcpy(&snapshot[4], &future, sizeof(future));
  const uint64_t reseal =
      Hash64(snapshot.data(), snapshot.size() - kSnapshotTrailerBytes);
  std::memcpy(&snapshot[snapshot.size() - kSnapshotTrailerBytes], &reseal,
              sizeof(reseal));
  const Status st = VerifySnapshot(snapshot, ArtifactKind::kEventLog);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("version skew"), std::string::npos);
}

TEST(SnapshotFramingTest, RejectsKindMismatch) {
  SnapshotWriter w;
  w.U64(1);
  const std::string snapshot = w.Finish(ArtifactKind::kDependencyGraph);
  EXPECT_FALSE(VerifySnapshot(snapshot, ArtifactKind::kEventLog).ok());
  EXPECT_TRUE(VerifySnapshot(snapshot, ArtifactKind::kDependencyGraph).ok());
}

TEST(SnapshotFramingTest, ReaderErrorIsSticky) {
  SnapshotWriter w;
  w.U32(5);
  const std::string snapshot = w.Finish(ArtifactKind::kEventLog);
  SnapshotReader r =
      std::move(SnapshotReader::Open(snapshot, ArtifactKind::kEventLog))
          .value();
  EXPECT_EQ(r.U32(), 5u);
  EXPECT_EQ(r.U64(), 0u);  // past the end: fails
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // still failing, returns zero
  EXPECT_FALSE(r.ExpectEnd().ok());
}

TEST(SnapshotFramingTest, CheckCountBlocksAllocationBombs) {
  SnapshotWriter w;
  w.U64(0xFFFFFFFFFFFFFFFFULL);  // hostile element count
  const std::string snapshot = w.Finish(ArtifactKind::kEventLog);
  SnapshotReader r =
      std::move(SnapshotReader::Open(snapshot, ArtifactKind::kEventLog))
          .value();
  const uint64_t count = r.U64();
  EXPECT_FALSE(r.CheckCount(count, 4));
  EXPECT_FALSE(r.ok());
}

// ---------------------------------------------------------------------
// EventLog round-trip
// ---------------------------------------------------------------------

void ExpectLogRoundTrip(const EventLog& log) {
  const std::string snapshot = EncodeEventLog(log);
  Result<EventLog> decoded = DecodeEventLog(snapshot);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameLog(log, *decoded);
  // Bit identity: re-encoding the decoded log reproduces the bytes.
  EXPECT_EQ(EncodeEventLog(*decoded), snapshot);
  EXPECT_EQ(EstimateLogSnapshotBytes(log), snapshot.size());
}

TEST(EventLogSnapshotTest, RoundTripsHandWrittenLog) {
  ExpectLogRoundTrip(SampleLog());
}

TEST(EventLogSnapshotTest, RoundTripsEmptyAndDegenerateLogs) {
  ExpectLogRoundTrip(EventLog());
  EventLog no_traces;
  no_traces.AddEvent("lonely");
  ExpectLogRoundTrip(no_traces);
  EventLog empty_trace;
  empty_trace.AddTraceIds({});
  ExpectLogRoundTrip(empty_trace);
}

TEST(EventLogSnapshotTest, RoundTripsSyntheticLogs) {
  for (uint64_t seed : {1u, 7u, 99u}) {
    SCOPED_TRACE(seed);
    ExpectLogRoundTrip(SyntheticLog(seed));
  }
}

TEST(EventLogSnapshotTest, RoundTripsEveryParserFormat) {
  const EventLog source = SyntheticLog(5);
  const std::string dir = TempDir();

  const std::string csv = dir + "/snapshot_roundtrip.csv";
  {
    std::ofstream out(csv);
    ASSERT_TRUE(WriteCsv(source, out).ok());
  }
  Result<EventLog> from_csv = ReadCsvFile(csv);
  ASSERT_TRUE(from_csv.ok());
  ExpectLogRoundTrip(*from_csv);
  std::remove(csv.c_str());

  const std::string xes = dir + "/snapshot_roundtrip.xes";
  ASSERT_TRUE(WriteXesFile(source, xes).ok());
  Result<EventLog> from_xes = ReadXesFile(xes);
  ASSERT_TRUE(from_xes.ok());
  ExpectLogRoundTrip(*from_xes);
  std::remove(xes.c_str());

  const std::string mxml = dir + "/snapshot_roundtrip.mxml";
  ASSERT_TRUE(WriteMxmlFile(source, mxml).ok());
  Result<EventLog> from_mxml = ReadMxmlFile(mxml);
  ASSERT_TRUE(from_mxml.ok());
  ExpectLogRoundTrip(*from_mxml);
  std::remove(mxml.c_str());
}

TEST(EventLogSnapshotTest, RejectsOutOfRangeEventIds) {
  // Hand-build a payload whose trace references a nonexistent event.
  SnapshotWriter w;
  w.U64(1);  // one event
  w.Str("a");
  w.U64(1);  // one trace
  w.U64(1);  // of length one
  w.I32(7);  // invalid id
  Result<EventLog> decoded = DecodeEventLog(w.Finish(ArtifactKind::kEventLog));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsParseError());
}

TEST(EventLogSnapshotTest, RejectsDuplicateEventNames) {
  SnapshotWriter w;
  w.U64(2);
  w.Str("same");
  w.Str("same");
  w.U64(0);
  EXPECT_FALSE(DecodeEventLog(w.Finish(ArtifactKind::kEventLog)).ok());
}

// ---------------------------------------------------------------------
// DependencyGraph round-trip
// ---------------------------------------------------------------------

void ExpectSameGraph(const DependencyGraph& a, const DependencyGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.has_artificial(), b.has_artificial());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  for (NodeId v = 0; v < static_cast<NodeId>(a.NumNodes()); ++v) {
    EXPECT_EQ(a.NodeName(v), b.NodeName(v));
    EXPECT_EQ(a.NodeFrequency(v), b.NodeFrequency(v));  // exact doubles
    EXPECT_EQ(a.Members(v), b.Members(v));
    EXPECT_EQ(a.Predecessors(v), b.Predecessors(v));
    EXPECT_EQ(a.PredecessorFrequencies(v), b.PredecessorFrequencies(v));
    EXPECT_EQ(a.Successors(v), b.Successors(v));
    EXPECT_EQ(a.SuccessorFrequencies(v), b.SuccessorFrequencies(v));
  }
  const CsrAdjacency csr_a = a.ExportPredecessorCsr();
  const CsrAdjacency csr_b = b.ExportPredecessorCsr();
  EXPECT_EQ(csr_a.offsets, csr_b.offsets);
  EXPECT_EQ(csr_a.neighbors, csr_b.neighbors);
  EXPECT_EQ(csr_a.frequencies, csr_b.frequencies);
}

TEST(DependencyGraphSnapshotTest, RoundTripsWithEmbeddedDistances) {
  const EventLog log = SyntheticLog(11);
  const DependencyGraph g = DependencyGraph::Build(log);
  const std::vector<int> from = g.LongestDistancesFromArtificial();
  const std::vector<int> to = g.LongestDistancesToArtificial();

  const std::string snapshot = EncodeDependencyGraph(g);
  Result<DependencyGraph> decoded = DecodeDependencyGraph(snapshot);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameGraph(g, *decoded);
  // The lazy caches were embedded: the decoded graph returns the same
  // distances (and re-encoding reproduces the bytes, caches included).
  EXPECT_EQ(decoded->LongestDistancesFromArtificial(), from);
  EXPECT_EQ(decoded->LongestDistancesToArtificial(), to);
  EXPECT_EQ(EncodeDependencyGraph(*decoded), snapshot);
}

TEST(DependencyGraphSnapshotTest, RoundTripsWithoutDistances) {
  const EventLog log = SampleLog();
  const DependencyGraph g = DependencyGraph::Build(log);
  const std::string snapshot =
      EncodeDependencyGraph(g, /*include_distances=*/false);
  Result<DependencyGraph> decoded = DecodeDependencyGraph(snapshot);
  ASSERT_TRUE(decoded.ok());
  ExpectSameGraph(g, *decoded);
  // Distances recompute lazily and agree with the source graph.
  EXPECT_EQ(decoded->LongestDistancesFromArtificial(),
            g.LongestDistancesFromArtificial());
}

TEST(DependencyGraphSnapshotTest, RoundTripsGraphWithoutArtificialNode) {
  DependencyGraphOptions options;
  options.add_artificial_event = false;
  const DependencyGraph g = DependencyGraph::Build(SampleLog(), options);
  Result<DependencyGraph> decoded =
      DecodeDependencyGraph(EncodeDependencyGraph(g));
  ASSERT_TRUE(decoded.ok());
  ExpectSameGraph(g, *decoded);
}

TEST(DependencyGraphSnapshotTest, RejectsOutOfRangeNeighbors) {
  SnapshotWriter w;
  w.U8(0);   // no artificial node
  w.U64(1);  // one node
  w.Str("a");
  w.F64(1.0);
  w.U64(0);   // no members
  w.U64(1);   // pre degree 1
  w.I32(99);  // invalid neighbor
  w.F64(0.5);
  w.U64(0);  // post degree 0
  w.U8(0);   // no distance caches
  w.U8(0);
  Result<DependencyGraph> decoded =
      DecodeDependencyGraph(w.Finish(ArtifactKind::kDependencyGraph));
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsParseError());
}

// ---------------------------------------------------------------------
// Graph summary round-trip
// ---------------------------------------------------------------------

TEST(GraphSummarySnapshotTest, RestoredBuilderProducesBitIdenticalGraphs) {
  const EventLog log = SyntheticLog(23);
  const DependencyGraphBuilder source(log);
  const std::string snapshot = EncodeGraphSummary(source);

  Result<std::unique_ptr<DependencyGraphBuilder>> restored =
      DecodeGraphSummary(snapshot, log);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ((*restored)->num_traces(), source.num_traces());
  EXPECT_EQ((*restored)->num_trace_groups(), source.num_trace_groups());
  // Re-encoding the restored summary reproduces the bytes.
  EXPECT_EQ(EncodeGraphSummary(**restored), snapshot);

  // The real contract: graphs built from the restored summary are bit
  // identical to graphs built from the fresh one (compare via encoding,
  // which captures every field and double exactly).
  std::vector<std::vector<EventId>> composites;
  if (log.NumEvents() >= 2) composites.push_back({0, 1});
  for (const auto& candidate :
       {std::vector<std::vector<EventId>>{}, composites}) {
    Result<DependencyGraph> fresh = source.BuildWithComposites(candidate);
    Result<DependencyGraph> warm = (*restored)->BuildWithComposites(candidate);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(EncodeDependencyGraph(*warm, false),
              EncodeDependencyGraph(*fresh, false));
  }
}

TEST(GraphSummarySnapshotTest, RejectsSummaryOfDifferentLog) {
  const EventLog log = SampleLog();
  const DependencyGraphBuilder builder(log);
  const std::string snapshot = EncodeGraphSummary(builder);

  EventLog other;
  other.AddTrace({"x", "y"});
  EXPECT_FALSE(DecodeGraphSummary(snapshot, other).ok());
}

// ---------------------------------------------------------------------
// Label cache round-trip
// ---------------------------------------------------------------------

TEST(LabelCacheSnapshotTest, ImportedScoresReplayWithoutRecomputation) {
  QGramCosineSimilarity base(3);
  CachedLabelSimilarity source(base);
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"receive order", "order received"},
      {"check stock", "stock check"},
      {"ship", "shipment"},
  };
  for (const auto& [a, b] : pairs) (void)source.Similarity(a, b);

  const std::string snapshot = EncodeLabelCache(source);
  CachedLabelSimilarity restored(base);
  ASSERT_TRUE(DecodeLabelCacheInto(snapshot, &restored).ok());
  for (const auto& [a, b] : pairs) {
    EXPECT_EQ(restored.Similarity(a, b), source.Similarity(a, b));
  }
  EXPECT_EQ(restored.hits(), pairs.size());  // every lookup was seeded
  EXPECT_EQ(restored.misses(), 0u);
  EXPECT_EQ(EncodeLabelCache(restored), snapshot);
}

TEST(LabelCacheSnapshotTest, RejectsSnapshotOfDifferentMeasure) {
  QGramCosineSimilarity qgram(3);
  CachedLabelSimilarity source(qgram);
  (void)source.Similarity("a", "b");
  const std::string snapshot = EncodeLabelCache(source);

  LevenshteinLabelSimilarity lev;
  CachedLabelSimilarity other(lev);
  const Status st = DecodeLabelCacheInto(snapshot, &other);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
}

// Typed decoders inherit envelope protection: corrupting any byte of a
// typed snapshot yields a clean error from every decoder.
TEST(TypedCorruptionTest, AllDecodersSurviveCorruptInput) {
  const EventLog log = SampleLog();
  const std::string snapshot = EncodeEventLog(log);
  for (size_t i = 0; i < snapshot.size(); i += 3) {
    std::string mutated = snapshot;
    mutated[i] ^= 0x40;
    Result<EventLog> decoded = DecodeEventLog(mutated);
    if (decoded.ok()) {
      // A flip that survives verification is impossible: the checksum
      // covers every byte.
      ADD_FAILURE() << "corrupt snapshot decoded at byte " << i;
    }
  }
  EXPECT_FALSE(DecodeDependencyGraph(snapshot).ok());  // wrong kind
  EXPECT_FALSE(DecodeGraphSummary(snapshot, log).ok());
}

TEST(WarmSeedSnapshotTest, RoundTripsBitExactly) {
  WarmSeed seed;
  seed.forward = SimilarityMatrix(3, 4);
  seed.backward = SimilarityMatrix(3, 4);
  double v = 0.0;
  for (NodeId r = 0; r < 3; ++r) {
    for (NodeId c = 0; c < 4; ++c) {
      seed.forward.set(r, c, v += 0.0625);
      seed.backward.set(r, c, 1.0 / (v + 1.0));
    }
  }
  seed.forward.set(0, 0, -0.0);  // signed-zero round-trip
  seed.cold_iterations = 17;
  seed.valid = true;

  const std::string snapshot = EncodeWarmSeed(seed);
  Result<WarmSeed> decoded = DecodeWarmSeed(snapshot);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->valid);
  EXPECT_EQ(decoded->cold_iterations, 17);
  ASSERT_EQ(decoded->forward.rows(), 3u);
  ASSERT_EQ(decoded->forward.cols(), 4u);
  ASSERT_EQ(decoded->backward.rows(), 3u);
  for (size_t i = 0; i < seed.forward.data().size(); ++i) {
    EXPECT_EQ(std::memcmp(&decoded->forward.data()[i],
                          &seed.forward.data()[i], sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&decoded->backward.data()[i],
                          &seed.backward.data()[i], sizeof(double)),
              0);
  }
  // Re-encoding reproduces the same bytes.
  EXPECT_EQ(EncodeWarmSeed(*decoded), snapshot);
}

TEST(WarmSeedSnapshotTest, RejectsCorruptionAndWrongKind) {
  WarmSeed seed;
  seed.forward = SimilarityMatrix(2, 2, 0.5);
  seed.backward = SimilarityMatrix(2, 2, 0.25);
  seed.cold_iterations = 3;
  seed.valid = true;
  const std::string snapshot = EncodeWarmSeed(seed);
  for (size_t i = 0; i < snapshot.size(); i += 3) {
    std::string mutated = snapshot;
    mutated[i] ^= 0x40;
    EXPECT_FALSE(DecodeWarmSeed(mutated).ok()) << "byte " << i;
  }
  EXPECT_FALSE(DecodeWarmSeed(EncodeEventLog(SampleLog())).ok());
  EXPECT_FALSE(DecodeEventLog(snapshot).ok());
}

}  // namespace
}  // namespace store
}  // namespace ems
