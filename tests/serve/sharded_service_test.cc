// Router semantics: single-shard equivalence with the plain service,
// deterministic canonical-path routing, admission-control rejections,
// drain behavior, per-shard metrics, and the aggregated admin commands.
#include "serve/sharded_service.h"

#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/context.h"
#include "serve/service.h"
#include "util/json_parser.h"

namespace ems {
namespace serve {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

void WriteFile(const std::string& path, const std::string& body) {
  std::ofstream out(path);
  ASSERT_TRUE(out) << path;
  out << body;
}

// Strips the "millis" member — the only nondeterministic bytes of a
// result line.
std::string StripMillis(const std::string& line) {
  const size_t key = line.find("\"millis\":");
  if (key == std::string::npos) return line;
  size_t end = key + 9;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end < line.size() && line[end] == ',') ++end;
  return line.substr(0, key) + line.substr(end);
}

class ShardedServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    log1_ = TempDir() + "/sharded_service_log1.txt";
    log2_ = TempDir() + "/sharded_service_log2.txt";
    WriteFile(log1_, "a;b;c;d\na;b;d\na;c;d\n");
    WriteFile(log2_, "a;b;c;d\na;c;b;d\nb;c;d\n");
  }

  void TearDown() override {
    std::remove(log1_.c_str());
    std::remove(log2_.c_str());
  }

  std::string JobLine(const std::string& id) const {
    return "{\"id\":\"" + id + "\",\"log1\":\"" + log1_ + "\",\"log2\":\"" +
           log2_ + "\",\"labels\":\"none\"}";
  }

  std::string log1_;
  std::string log2_;
};

// A single-shard router is the plain service behind a hash ring that
// always answers 0: results must be byte-identical modulo millis.
TEST_F(ShardedServiceTest, SingleShardMatchesPlainServiceByteForByte) {
  ShardedServiceOptions sharded_options;
  sharded_options.num_shards = 1;
  sharded_options.total_threads = 2;
  ShardedMatchService router(sharded_options);

  ServiceOptions plain_options;
  plain_options.threads = 2;
  BatchMatchService plain(plain_options);

  for (const std::string id : {"j1", "j2"}) {
    const std::string via_router = router.HandleLineSync(JobLine(id));
    const std::string via_plain = plain.HandleJobLine(JobLine(id));
    EXPECT_EQ(StripMillis(via_router), StripMillis(via_plain));
    EXPECT_NE(via_router.find("\"status\":\"ok\""), std::string::npos)
        << via_router;
  }
}

TEST_F(ShardedServiceTest, RoutingIsDeterministicAndCanonicalized) {
  ShardedServiceOptions options;
  options.num_shards = 4;
  options.total_threads = 4;
  ShardedMatchService router(options);
  const int shard = router.ShardForPath(log1_);
  EXPECT_EQ(router.ShardForPath(log1_), shard);
  // CanonicalPath realpath()s existing files: spelling variants of one
  // log must land on one shard (one warm cache). log1_ is
  // "<tmpdir>/sharded_service_log1.txt", so dot and double-slash
  // variants resolve to it.
  const size_t slash = log1_.rfind('/');
  const std::string dotted =
      log1_.substr(0, slash) + "/./" + log1_.substr(slash + 1);
  const std::string doubled =
      log1_.substr(0, slash) + "//" + log1_.substr(slash + 1);
  EXPECT_EQ(router.ShardForPath(dotted), shard);
  EXPECT_EQ(router.ShardForPath(doubled), shard);
}

TEST_F(ShardedServiceTest, JobsAreAnsweredAndRoutedCountersAdvance) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.total_threads = 2;
  ShardedMatchService router(options);

  const std::string response = router.HandleLineSync(JobLine("j1"));
  EXPECT_NE(response.find("\"id\":\"j1\""), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);

  uint64_t routed_total = 0;
  for (int i = 0; i < router.num_shards(); ++i) {
    routed_total += router.obs()->metrics.CounterValue(
        ShardMetricName("serve.shard", i, "routed"));
  }
  EXPECT_EQ(routed_total, 1u);
  // The inflight count drops after the emit fires; WaitDrained is the
  // rendezvous for "all admitted jobs fully answered".
  router.WaitDrained();
  EXPECT_EQ(router.shard_inflight(0), 0);
  EXPECT_EQ(router.shard_inflight(1), 0);
}

TEST_F(ShardedServiceTest, MalformedLinesRenderErrorsInline) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.total_threads = 2;
  ShardedMatchService router(options);

  const std::string not_json = router.HandleLineSync("this is not json");
  EXPECT_NE(not_json.find("\"status\":\"error\""), std::string::npos)
      << not_json;
  const std::string no_logs =
      router.HandleLineSync("{\"id\":\"x\",\"log1\":\"only-one.xes\"}");
  EXPECT_NE(no_logs.find("\"status\":\"error\""), std::string::npos)
      << no_logs;
  EXPECT_EQ(router.obs()->metrics.CounterValue("net.protocol_errors"), 1u);
}

// Deterministic overload: block the target shard's only worker, fill
// the single admission slot, and watch the next job shed.
TEST_F(ShardedServiceTest, OverAdmissionShedsWithExplicitResponse) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.total_threads = 2;  // one worker per shard
  options.max_inflight_per_shard = 1;
  ShardedMatchService router(options);
  const int shard = router.ShardForPath(log1_);

  // Park the shard's worker so the admitted job cannot start.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(router.shard_service(shard).pool().Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));

  std::mutex emit_mu;
  std::vector<std::string> async_responses;
  router.HandleLine(JobLine("admitted"), [&](const std::string& response) {
    std::lock_guard<std::mutex> lock(emit_mu);
    async_responses.push_back(response);
  });
  EXPECT_EQ(router.shard_inflight(shard), 1);

  // Admission budget exhausted: the second job must be answered inline
  // with an explicit overloaded response naming the shard.
  const std::string shed = router.HandleLineSync(JobLine("shed"));
  EXPECT_NE(shed.find("\"status\":\"overloaded\""), std::string::npos)
      << shed;
  EXPECT_NE(shed.find("\"id\":\"shed\""), std::string::npos);
  EXPECT_NE(shed.find("\"shard\":" + std::to_string(shard)),
            std::string::npos)
      << shed;
  EXPECT_EQ(router.obs()->metrics.CounterValue(
                ShardMetricName("serve.shard", shard,
                                "rejected_overloaded")),
            1u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  router.WaitDrained();  // inflight back to zero = admitted job answered
  std::lock_guard<std::mutex> lock(emit_mu);
  ASSERT_EQ(async_responses.size(), 1u);
  EXPECT_NE(async_responses[0].find("\"id\":\"admitted\""),
            std::string::npos);
  EXPECT_NE(async_responses[0].find("\"status\":\"ok\""),
            std::string::npos);
}

TEST_F(ShardedServiceTest, DrainRejectsNewJobsButAnswersAdmin) {
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.total_threads = 2;
  ShardedMatchService router(options);

  int callbacks = 0;
  router.SetDrainRequestCallback([&callbacks] { ++callbacks; });

  const std::string ack =
      router.HandleLineSync("{\"cmd\":\"drain\",\"id\":\"d1\"}");
  EXPECT_NE(ack.find("\"draining\":true"), std::string::npos) << ack;
  EXPECT_TRUE(router.draining());
  EXPECT_EQ(callbacks, 1);

  // Jobs are rejected — but still answered — while admin commands keep
  // working; a second drain acks again without re-firing the callback.
  const std::string rejected = router.HandleLineSync(JobLine("late"));
  EXPECT_NE(rejected.find("\"status\":\"draining\""), std::string::npos)
      << rejected;
  EXPECT_NE(rejected.find("\"id\":\"late\""), std::string::npos);
  const std::string health =
      router.HandleLineSync("{\"cmd\":\"health\",\"id\":\"h\"}");
  EXPECT_NE(health.find("\"healthy\":false"), std::string::npos) << health;
  router.HandleLineSync("{\"cmd\":\"drain\",\"id\":\"d2\"}");
  EXPECT_EQ(callbacks, 1);

  router.WaitDrained();  // nothing in flight: returns immediately
}

TEST_F(ShardedServiceTest, StatsCarriesRouterAndPerShardBreakdown) {
  ShardedServiceOptions options;
  options.num_shards = 3;
  options.total_threads = 3;
  ShardedMatchService router(options);
  router.HandleLineSync(JobLine("j1"));

  const std::string stats =
      router.HandleLineSync("{\"cmd\":\"stats\",\"id\":\"s\"}");
  EXPECT_NE(stats.find("\"router\""), std::string::npos);
  EXPECT_NE(stats.find("\"num_shards\":3"), std::string::npos);
  EXPECT_NE(stats.find("\"shards\":["), std::string::npos);
  EXPECT_NE(stats.find("\"queue_capacity\""), std::string::npos);
  EXPECT_NE(stats.find("\"max_inflight\""), std::string::npos);
  EXPECT_NE(stats.find("\"serve.shard.0.routed\""), std::string::npos)
      << "per-shard instruments missing from the snapshot";

  const std::string slow =
      router.HandleLineSync("{\"cmd\":\"slow\",\"id\":\"sl\"}");
  EXPECT_NE(slow.find("\"flight_recorder\""), std::string::npos);
  const std::string unknown =
      router.HandleLineSync("{\"cmd\":\"nope\",\"id\":\"u\"}");
  EXPECT_NE(unknown.find("\"status\":\"error\""), std::string::npos);
}

// topk fan-out: members partition across shards by the hash ring, each
// shard ranks its subset, and the router's merge must reproduce the
// single service's ranking — same members, same order, same exact
// score bits.
TEST_F(ShardedServiceTest, TopKFanOutMergesToTheSingleServiceRanking) {
  std::vector<std::string> members;
  for (int i = 0; i < 6; ++i) {
    const std::string path =
        TempDir() + "/sharded_topk_" + std::to_string(i) + ".txt";
    WriteFile(path, i < 3 ? "a;b;c;d\na;b;d\na;c;d\n"
                          : "x;y;z\nx;z;y\nz;x;y\n");
    members.push_back(path);
  }
  std::string member_list;
  for (const std::string& m : members) {
    member_list += (member_list.empty() ? "\"" : ",\"") + m + "\"";
  }
  const std::string line = R"({"id":"tk1","query":")" + members[0] +
                           R"(","topk":4,"members":[)" + member_list +
                           R"(],"labels":"qgram","alpha":0.5})";

  ShardedServiceOptions sharded_options;
  sharded_options.num_shards = 2;
  sharded_options.total_threads = 2;
  ShardedMatchService router(sharded_options);
  const std::string merged_line = router.HandleLineSync(line);
  router.WaitDrained();

  ServiceOptions plain_options;
  plain_options.threads = 2;
  BatchMatchService plain(plain_options);
  const std::string plain_line = plain.HandleJobLine(line);

  Result<JsonValue> merged = ParseJson(merged_line);
  Result<JsonValue> single = ParseJson(plain_line);
  ASSERT_TRUE(merged.ok()) << merged_line;
  ASSERT_TRUE(single.ok()) << plain_line;
  EXPECT_EQ(merged->GetString("status", ""), "ok") << merged_line;
  EXPECT_EQ(single->GetString("status", ""), "ok") << plain_line;
  // The hash ring decides the partition; at least one shard answered.
  EXPECT_GE(merged->GetInt("shards", -1), 1);

  const JsonValue* mh = merged->Find("hits");
  const JsonValue* sh = single->Find("hits");
  ASSERT_NE(mh, nullptr);
  ASSERT_NE(sh, nullptr);
  ASSERT_EQ(mh->array_items().size(), 4u);
  ASSERT_EQ(sh->array_items().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    const JsonValue& a = mh->array_items()[i];
    const JsonValue& b = sh->array_items()[i];
    EXPECT_EQ(a.GetString("member", "?"), b.GetString("member", "!"))
        << "rank " << i;
    EXPECT_EQ(a.GetString("score_bits", "?"), b.GetString("score_bits", "!"))
        << "rank " << i;
    EXPECT_EQ(a.GetInt("rank", -1), static_cast<int>(i) + 1);
  }
  // The query is members[0]; its family twins must lead the ranking.
  EXPECT_EQ(mh->array_items()[0].GetString("member", ""), members[0]);

  // The merged stats aggregate every shard's candidates.
  const JsonValue* stats = merged->Find("index");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->GetInt("candidates_retrieved", -1), 6);

  for (const std::string& m : members) std::remove(m.c_str());
}

TEST_F(ShardedServiceTest, PerShardCacheDirsAreDisjoint) {
  const std::string root = TempDir() + "/sharded_service_store_test";
  ShardedServiceOptions options;
  options.num_shards = 2;
  options.total_threads = 2;
  options.cache_dir = root;
  ShardedMatchService router(options);
  for (int i = 0; i < 2; ++i) {
    auto* store = router.shard_service(i).artifact_store();
    ASSERT_NE(store, nullptr) << "shard " << i;
  }
  router.HandleLineSync(JobLine("warm"));
  std::filesystem::remove_all(root);
}

// Appends are jobs, not inline admin: they must route through the hash
// ring by log 1's canonical path — the same key match jobs use — so a
// session's appends and matches always land on the one shard that owns
// its state.
TEST_F(ShardedServiceTest, AppendsRouteToTheSessionOwningShard) {
  ShardedServiceOptions options;
  options.num_shards = 3;
  options.total_threads = 3;
  ShardedMatchService router(options);

  const std::string pair = "\"log1\":\"" + log1_ + "\",\"log2\":\"" + log2_ +
                           "\",\"labels\":\"none\"";
  const std::string append_line =
      "{\"cmd\":\"append\",\"id\":\"a1\"," + pair +
      ",\"traces\":[[\"a\",\"b\",\"d\"]]}";

  const std::string first = router.HandleLineSync(append_line);
  EXPECT_NE(first.find("\"status\":\"ok\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"session_created\":true"), std::string::npos)
      << first;

  // A second append to the same pair must find the session created by
  // the first — only possible if both were routed to the same shard.
  const std::string second = router.HandleLineSync(append_line);
  EXPECT_NE(second.find("\"status\":\"ok\""), std::string::npos) << second;
  EXPECT_NE(second.find("\"session_created\":false"), std::string::npos)
      << second;
  EXPECT_NE(second.find("\"warm\":true"), std::string::npos) << second;

  // And a match on the pair is answered from that session's grown state
  // (the appended 'd' is visible), not a fresh parse of the base file.
  const std::string match = router.HandleLineSync(JobLine("m1"));
  EXPECT_NE(match.find("\"status\":\"ok\""), std::string::npos) << match;

  router.WaitDrained();
  uint64_t routed_total = 0;
  for (int i = 0; i < router.num_shards(); ++i) {
    routed_total += router.obs()->metrics.CounterValue(
        ShardMetricName("serve.shard", i, "routed"));
  }
  EXPECT_EQ(routed_total, 3u);
  EXPECT_EQ(router.obs()->metrics.CounterValue("stream.appends"), 2u);
  EXPECT_EQ(router.obs()->metrics.CounterValue("stream.warm_matches"), 1u);
  EXPECT_EQ(router.obs()->metrics.CounterValue("stream.session_matches"), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace ems
