// Probabilistic matching over the serving wire protocol: jobs with
// "prob":true get per-correspondence confidences and a "prob" stats
// object; jobs without stay byte-identical to the pre-prob protocol
// (no stray keys); bad prob parameters are rejected at parse time.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/context.h"
#include "serve/service.h"
#include "util/json_parser.h"

namespace ems {
namespace serve {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

std::string WriteTraceLog(const std::string& name, const std::string& body) {
  const std::string path = TempDir() + "/" + name;
  std::ofstream out(path);
  EXPECT_TRUE(out) << path;
  out << body;
  return path;
}

std::string StripMillis(std::string line) {
  const size_t pos = line.find("\"millis\":");
  if (pos == std::string::npos) return line;
  const size_t end = line.find(',', pos);
  line.erase(pos, end == std::string::npos ? std::string::npos : end - pos + 1);
  return line;
}

class ServeProbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    log1_ = WriteTraceLog("serve_prob_1.txt",
                          "a;b;c;d\na;b;d\na;c;d\na;b;c;d\n");
    log2_ = WriteTraceLog("serve_prob_2.txt",
                          "a;b;c;d\na;c;b;d\nb;c;d\na;b;c;d\n");
  }
  void TearDown() override {
    std::remove(log1_.c_str());
    std::remove(log2_.c_str());
  }
  std::string Job(const std::string& extra) const {
    return R"({"id":"j","log1":")" + log1_ + R"(","log2":")" + log2_ +
           R"(","labels":"none")" + extra + "}";
  }
  std::string log1_, log2_;
};

TEST_F(ServeProbTest, ProbJobCarriesConfidencesAndStats) {
  ServiceOptions options;
  BatchMatchService service(options);
  const std::string line = service.HandleJobLine(Job(R"(,"prob":true)"));
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"confidence\":"), std::string::npos);
  EXPECT_NE(line.find("\"prob\":{"), std::string::npos);
  EXPECT_NE(line.find("\"iterations\":"), std::string::npos);
  EXPECT_NE(line.find("\"converged\":"), std::string::npos);
  EXPECT_NE(line.find("\"mean_entropy\":"), std::string::npos);
  // The line stays parseable JSON.
  EXPECT_TRUE(ParseJson(line).ok());
}

TEST_F(ServeProbTest, ProbOffIsByteIdenticalToPreProbProtocol) {
  ServiceOptions options;
  BatchMatchService service(options);
  const std::string off = service.HandleJobLine(Job(""));
  const std::string explicit_off =
      service.HandleJobLine(Job(R"(,"prob":false)"));
  // No prob keys leak into the default path…
  EXPECT_EQ(off.find("\"prob\""), std::string::npos);
  EXPECT_EQ(off.find("\"confidence\""), std::string::npos);
  // …and an explicit prob:false renders the very same bytes.
  EXPECT_EQ(StripMillis(off), StripMillis(explicit_off));
}

TEST_F(ServeProbTest, ProbTuningKnobsAreHonored) {
  ServiceOptions options;
  BatchMatchService service(options);
  // A hopeless tolerance with a cap of 1 iteration cannot converge.
  const std::string line = service.HandleJobLine(
      Job(R"(,"prob":true,"prob_tol":1e-300,"prob_iters":1)"));
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"iterations\":1"), std::string::npos);
  EXPECT_NE(line.find("\"converged\":false"), std::string::npos);
}

TEST_F(ServeProbTest, BadProbParametersAreRejected) {
  ServiceOptions options;
  BatchMatchService service(options);
  for (const char* extra :
       {R"(,"prob":true,"prob_temp":0)", R"(,"prob":true,"prob_temp":-1)",
        R"(,"prob":true,"prob_tol":0)", R"(,"prob":true,"prob_iters":0)",
        R"(,"prob":true,"prob_min_confidence":1.5)",
        R"(,"prob":true,"prob_min_confidence":-0.1)"}) {
    const std::string line = service.HandleJobLine(Job(extra));
    EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos) << extra;
  }
}

TEST_F(ServeProbTest, ProbMetricsLandInTheServiceRegistry) {
  ObsContext obs;
  ServiceOptions options;
  options.obs = &obs;
  BatchMatchService service(options);
  service.HandleJobLine(Job(R"(,"prob":true)"));
  service.HandleJobLine(Job(R"(,"prob":true)"));
  EXPECT_EQ(obs.metrics.CounterValue("prob.runs"), 2u);
  EXPECT_GT(obs.metrics.CounterValue("prob.iterations"), 0u);
  EXPECT_LE(obs.metrics.CounterValue("prob.converged_runs"), 2u);
}

}  // namespace
}  // namespace serve
}  // namespace ems
