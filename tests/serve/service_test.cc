// serve layer: LRU cache semantics, the log load-through cache, job-line
// parsing, and the batch service end to end over in-memory streams.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/context.h"
#include "serve/log_cache.h"
#include "serve/lru_cache.h"
#include "serve/service.h"
#include "util/json_parser.h"

namespace ems {
namespace serve {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

std::string WriteTraceLog(const std::string& name, const std::string& body) {
  const std::string path = TempDir() + "/" + name;
  std::ofstream out(path);
  EXPECT_TRUE(out) << path;
  out << body;
  return path;
}

// Drops the wall-clock "millis" field so result lines from different
// runs can be compared byte for byte.
std::string StripMillis(std::string line) {
  const size_t pos = line.find("\"millis\":");
  if (pos == std::string::npos) return line;
  const size_t end = line.find(',', pos);
  line.erase(pos, end == std::string::npos ? std::string::npos : end - pos + 1);
  return line;
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  EXPECT_EQ(cache.Get(1), "one");  // refreshes 1: now 2 is coldest
  cache.Put(3, "three");           // evicts 2
  EXPECT_EQ(cache.Get(2), std::nullopt);
  EXPECT_EQ(cache.Get(1), "one");
  EXPECT_EQ(cache.Get(3), "three");
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LruCacheTest, PutOverwritesAndRefreshes) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // overwrite refreshes 1: 2 becomes coldest
  cache.Put(3, 30);
  EXPECT_EQ(cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), std::nullopt);
}

TEST(LruCacheTest, CountsHitsAndMisses) {
  LruCache<int, int> cache(4);
  cache.Put(1, 1);
  (void)cache.Get(1);
  (void)cache.Get(1);
  (void)cache.Get(9);
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LogCacheTest, SecondLoadOfSamePathHits) {
  const std::string path =
      WriteTraceLog("log_cache_test_a.txt", "a;b;c\na;c;b\n");
  LogCache cache(4);
  auto first = cache.GetOrLoad(path, "auto");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->NumTraces(), 2u);
  auto second = cache.GetOrLoad(path, "auto");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());  // same shared parse
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  std::remove(path.c_str());
}

TEST(LogCacheTest, MissingFileReportsErrorWithoutCaching) {
  LogCache cache(4);
  auto result = cache.GetOrLoad(TempDir() + "/log_cache_missing.txt", "auto");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(cache.size(), 0u);
}

// Regression: keys carry the file's content hash, so a log rewritten
// between jobs must be re-parsed — the old behavior (path-only keys)
// served the stale parse forever.
TEST(LogCacheTest, RewrittenFileIsReparsedNotServedStale) {
  const std::string path =
      WriteTraceLog("log_cache_stale.txt", "a;b;c\na;c;b\n");
  LogCache cache(4);
  auto before = cache.GetOrLoad(path, "auto");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ((*before)->NumTraces(), 2u);

  WriteTraceLog("log_cache_stale.txt", "x;y\nx;z\ny;z\n");
  auto after = cache.GetOrLoad(path, "auto");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ((*after)->NumTraces(), 3u);
  EXPECT_NE((*after)->FindEvent("x"), kInvalidEvent);
  EXPECT_EQ(cache.misses(), 2u);  // both versions were real loads
  EXPECT_EQ(cache.hits(), 0u);

  // The same bytes again: back to a plain hit.
  auto again = cache.GetOrLoad(path, "auto");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(after->get(), again->get());
  EXPECT_EQ(cache.hits(), 1u);
  std::remove(path.c_str());
}

TEST(LruCacheTest, ByteBudgetEvictsColdestEntries) {
  LruCache<int, std::string> cache(/*capacity=*/10, /*max_cost=*/100);
  cache.Put(1, "a", 40);
  cache.Put(2, "b", 40);
  EXPECT_EQ(cache.cost_bytes(), 80u);
  cache.Put(3, "c", 40);  // 120 > 100: evicts 1
  EXPECT_EQ(cache.cost_bytes(), 80u);
  EXPECT_EQ(cache.Get(1), std::nullopt);
  EXPECT_EQ(cache.Get(2), "b");
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(LruCacheTest, OversizedEntryAloneIsKept) {
  LruCache<int, int> cache(4, /*max_cost=*/10);
  cache.Put(1, 1, 3);
  cache.Put(2, 2, 50);  // over budget by itself: evicts 1, keeps 2
  EXPECT_EQ(cache.Get(1), std::nullopt);
  EXPECT_EQ(cache.Get(2), 2);
  EXPECT_EQ(cache.cost_bytes(), 50u);
}

TEST(LruCacheTest, OverwriteReplacesCost) {
  LruCache<int, int> cache(4, /*max_cost=*/100);
  cache.Put(1, 1, 60);
  cache.Put(1, 2, 10);
  EXPECT_EQ(cache.cost_bytes(), 10u);
  EXPECT_EQ(cache.Get(1), 2);
}

TEST(LruCacheTest, ZeroBudgetKeepsEntryCountSemantics) {
  LruCache<int, int> cache(2);  // default: no byte budget
  cache.Put(1, 1, 1u << 30);
  cache.Put(2, 2, 1u << 30);
  EXPECT_EQ(cache.Get(1), 1);
  EXPECT_EQ(cache.Get(2), 2);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(LogCacheTest, ByteBudgetBoundsResidentLogsAndExportsGauge) {
  const std::string big = WriteTraceLog(
      "log_cache_budget_big.txt",
      std::string(50, 'a') + ";" + std::string(50, 'b') + "\n");
  const std::string small1 = WriteTraceLog("log_cache_budget_s1.txt", "a;b\n");
  const std::string small2 = WriteTraceLog("log_cache_budget_s2.txt", "c;d\n");

  ObsContext obs;
  LogCache cache(8, &obs, nullptr, /*max_cost_bytes=*/200);
  ASSERT_TRUE(cache.GetOrLoad(small1, "auto").ok());
  const double gauge_one =
      obs.metrics.GetGauge("serve.cache_bytes")->value();
  EXPECT_GT(gauge_one, 0.0);
  EXPECT_EQ(static_cast<uint64_t>(gauge_one), cache.cost_bytes());

  ASSERT_TRUE(cache.GetOrLoad(small2, "auto").ok());
  ASSERT_TRUE(cache.GetOrLoad(big, "auto").ok());  // evicts down to budget
  EXPECT_LE(cache.cost_bytes(), 200u);
  EXPECT_EQ(static_cast<uint64_t>(
                obs.metrics.GetGauge("serve.cache_bytes")->value()),
            cache.cost_bytes());

  std::remove(big.c_str());
  std::remove(small1.c_str());
  std::remove(small2.c_str());
}

TEST(ParseJobRequestTest, ParsesFullRequest) {
  Result<JobRequest> request = ParseJobRequest(
      R"({"id":"j9","log1":"a.xes","log2":"b.csv","labels":"none",)"
      R"("c":0.7,"engine":"estimated","iterations":3,"selection":"greedy",)"
      R"("min_similarity":0.1})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, "j9");
  EXPECT_EQ(request->log1, "a.xes");
  EXPECT_EQ(request->log2, "b.csv");
  EXPECT_EQ(request->options.label_measure, LabelMeasure::kNone);
  EXPECT_DOUBLE_EQ(request->options.ems.alpha, 1.0);  // forced by labels=none
  EXPECT_DOUBLE_EQ(request->options.ems.c, 0.7);
  EXPECT_EQ(request->options.engine, SimilarityEngine::kEstimated);
  EXPECT_EQ(request->options.estimation_iterations, 3);
  EXPECT_EQ(request->options.selection, SelectionStrategy::kGreedy);
  EXPECT_DOUBLE_EQ(request->options.min_match_similarity, 0.1);
}

TEST(ParseJobRequestTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseJobRequest("not json").ok());
  EXPECT_FALSE(ParseJobRequest("[1,2]").ok());
  EXPECT_FALSE(ParseJobRequest(R"({"log1":"a.xes"})").ok());  // log2 missing
  EXPECT_FALSE(
      ParseJobRequest(R"({"log1":"a","log2":"b","alpha":1.5})").ok());
  EXPECT_FALSE(
      ParseJobRequest(R"({"log1":"a","log2":"b","engine":"warp"})").ok());
  EXPECT_FALSE(
      ParseJobRequest(R"({"log1":"a","log2":"b","selection":"best"})").ok());
}

TEST(BatchMatchServiceTest, HandlesJobsAndRendersErrors) {
  const std::string log1 =
      WriteTraceLog("service_test_1.txt", "a;b;c;d\na;b;d\na;c;d\n");
  const std::string log2 =
      WriteTraceLog("service_test_2.txt", "a;b;c;d\na;c;b;d\nb;c;d\n");

  ServiceOptions options;
  options.threads = 2;
  BatchMatchService service(options);

  std::string ok_line = service.HandleJobLine(
      R"({"id":"good","log1":")" + log1 + R"(","log2":")" + log2 +
      R"(","labels":"none"})");
  EXPECT_NE(ok_line.find("\"id\":\"good\""), std::string::npos);
  EXPECT_NE(ok_line.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(ok_line.find("\"correspondences\""), std::string::npos);

  std::string missing_line = service.HandleJobLine(
      R"({"id":"gone","log1":"/definitely/not/here.txt","log2":")" + log2 +
      R"("})");
  EXPECT_NE(missing_line.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(missing_line.find("\"id\":\"gone\""), std::string::npos);

  std::string bad_line = service.HandleJobLine("{broken");
  EXPECT_NE(bad_line.find("\"status\":\"error\""), std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

TEST(BatchMatchServiceTest, RunStreamEmitsOneResultPerJob) {
  const std::string log1 =
      WriteTraceLog("service_stream_1.txt", "a;b;c\na;c;b\na;b;c\n");
  const std::string log2 =
      WriteTraceLog("service_stream_2.txt", "a;b;c\nb;a;c\n");

  ServiceOptions options;
  options.threads = 4;
  BatchMatchService service(options);

  std::ostringstream jobs;
  const std::string pair = R"("log1":")" + log1 + R"(","log2":")" + log2 +
                           R"(","labels":"none")";
  jobs << R"({"id":"j1",)" << pair << "}\n";
  jobs << "\n";  // blank lines are skipped
  jobs << R"({"id":"j2",)" << pair << "}\n";
  jobs << R"({"id":"j3",)" << pair << "}\n";

  std::istringstream in(jobs.str());
  std::ostringstream out;
  EXPECT_EQ(service.RunStream(in, out), 3u);

  std::vector<std::string> lines;
  std::istringstream result(out.str());
  std::string line;
  while (std::getline(result, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& l : lines) {
    EXPECT_NE(l.find("\"status\":\"ok\""), std::string::npos) << l;
  }
  // Six lookups over two distinct logs. Concurrent first touches may
  // both miss (double-load is allowed by design), so only bound the
  // counts instead of pinning them.
  EXPECT_EQ(service.cache().hits() + service.cache().misses(), 6u);
  EXPECT_GE(service.cache().misses(), 2u);
  EXPECT_GE(service.cache().hits(), 1u);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

// Warm start: a restarted service pointed at the same --cache-dir must
// serve its first job from log snapshots (store hits, no source
// re-parse) and produce a byte-identical result line.
TEST(BatchMatchServiceTest, RestartWithCacheDirStartsWarm) {
  const std::string log1 =
      WriteTraceLog("service_warm_1.txt", "a;b;c;d\na;b;d\na;c;d\n");
  const std::string log2 =
      WriteTraceLog("service_warm_2.txt", "a;b;c;d\na;c;b;d\nb;c;d\n");
  const std::string cache_dir = TempDir() + "/service_warm_store";
  std::filesystem::remove_all(cache_dir);
  const std::string job = R"({"id":"w1","log1":")" + log1 + R"(","log2":")" +
                          log2 + R"(","labels":"none"})";

  std::string cold_line;
  {
    ObsContext obs;
    ServiceOptions options;
    options.threads = 1;
    options.cache_dir = cache_dir;
    options.obs = &obs;
    BatchMatchService service(options);
    cold_line = service.HandleJobLine(job);
    EXPECT_NE(cold_line.find("\"status\":\"ok\""), std::string::npos);
    EXPECT_EQ(obs.metrics.CounterValue("store.hits"), 0u);
    EXPECT_EQ(obs.metrics.CounterValue("store.misses"), 2u);
    EXPECT_EQ(obs.metrics.CounterValue("store.writes"), 2u);
  }  // service restarts: all memory state gone, the store directory stays

  {
    ObsContext obs;
    ServiceOptions options;
    options.threads = 1;
    options.cache_dir = cache_dir;
    options.obs = &obs;
    BatchMatchService service(options);
    const std::string warm_line = service.HandleJobLine(job);
    // Both logs came from snapshots, and the result is bit-identical.
    EXPECT_EQ(obs.metrics.CounterValue("store.hits"), 2u);
    EXPECT_EQ(obs.metrics.CounterValue("store.misses"), 0u);
    EXPECT_EQ(StripMillis(warm_line), StripMillis(cold_line));
  }

  std::filesystem::remove_all(cache_dir);
  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

// A poisoned cache directory must never fail a request: corrupt
// snapshot files re-derive from source transparently.
TEST(BatchMatchServiceTest, CorruptCacheDirNeverFailsAJob) {
  const std::string log1 =
      WriteTraceLog("service_poison_1.txt", "a;b;c\na;c;b\n");
  const std::string log2 = WriteTraceLog("service_poison_2.txt", "a;b\nb;a\n");
  const std::string cache_dir = TempDir() + "/service_poison_store";
  std::filesystem::remove_all(cache_dir);
  const std::string job = R"({"id":"p1","log1":")" + log1 + R"(","log2":")" +
                          log2 + R"(","labels":"none"})";

  std::string cold_line;
  {
    ServiceOptions options;
    options.threads = 1;
    options.cache_dir = cache_dir;
    BatchMatchService service(options);
    cold_line = service.HandleJobLine(job);
    EXPECT_NE(cold_line.find("\"status\":\"ok\""), std::string::npos);
  }

  // Vandalize every snapshot in the store.
  for (const auto& entry : std::filesystem::directory_iterator(cache_dir)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::trunc);
    out << "not a snapshot";
  }

  ObsContext obs;
  ServiceOptions options;
  options.threads = 1;
  options.cache_dir = cache_dir;
  options.obs = &obs;
  BatchMatchService service(options);
  const std::string recovered_line = service.HandleJobLine(job);
  EXPECT_EQ(StripMillis(recovered_line), StripMillis(cold_line));
  EXPECT_EQ(obs.metrics.CounterValue("store.fallback_rederives"), 2u);
  EXPECT_EQ(obs.metrics.CounterValue("store.hits"), 0u);

  std::filesystem::remove_all(cache_dir);
  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

TEST(BatchMatchServiceTest, StatsCommandReportsQuantilesAndRates) {
  const std::string log1 =
      WriteTraceLog("service_stats_1.txt", "a;b;c\na;c;b\n");
  const std::string log2 = WriteTraceLog("service_stats_2.txt", "a;b\nb;a\n");
  ServiceOptions options;
  options.threads = 1;
  BatchMatchService service(options);
  const std::string job = R"({"id":"s1","log1":")" + log1 + R"(","log2":")" +
                          log2 + R"(","labels":"none"})";
  EXPECT_NE(service.HandleJobLine(job).find("\"status\":\"ok\""),
            std::string::npos);
  (void)service.HandleJobLine(
      R"({"id":"bad","log1":"/nope.txt","log2":"/nope2.txt"})");

  // First stats call: full snapshot, no interval yet.
  const std::string first =
      service.HandleJobLine(R"({"cmd":"stats","id":"st1"})");
  EXPECT_NE(first.find("\"id\":\"st1\""), std::string::npos);
  EXPECT_NE(first.find("\"cmd\":\"stats\""), std::string::npos);
  EXPECT_NE(first.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(first.find("\"snapshot\""), std::string::npos);
  EXPECT_NE(first.find("\"serve.jobs_ok\":1"), std::string::npos);
  EXPECT_NE(first.find("\"serve.jobs_failed\":1"), std::string::npos);
  // Per-outcome latency quantiles from the quantile histograms.
  EXPECT_NE(first.find("\"serve.latency_ms.ok\""), std::string::npos);
  EXPECT_NE(first.find("\"serve.latency_ms.error\""), std::string::npos);
  EXPECT_NE(first.find("\"p50\""), std::string::npos);
  EXPECT_NE(first.find("\"p90\""), std::string::npos);
  EXPECT_NE(first.find("\"p99\""), std::string::npos);
  EXPECT_NE(first.find("\"cache\""), std::string::npos);
  EXPECT_NE(first.find("\"pool\""), std::string::npos);

  // Second stats call after another job: interval rates appear.
  EXPECT_NE(service.HandleJobLine(job).find("\"status\":\"ok\""),
            std::string::npos);
  const std::string second =
      service.HandleJobLine(R"({"cmd":"stats","id":"st2"})");
  EXPECT_NE(second.find("\"rates\""), std::string::npos);
  EXPECT_NE(second.find("\"interval_seconds\""), std::string::npos);
  EXPECT_NE(second.find("\"serve.jobs_ok\":2"), std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

TEST(BatchMatchServiceTest, HealthCommandReportsLiveness) {
  ServiceOptions options;
  options.threads = 2;
  options.queue_capacity = 32;
  BatchMatchService service(options);
  const std::string health =
      service.HandleJobLine(R"({"cmd":"health","id":"h1"})");
  EXPECT_NE(health.find("\"id\":\"h1\""), std::string::npos);
  EXPECT_NE(health.find("\"healthy\":true"), std::string::npos);
  EXPECT_NE(health.find("\"draining\":false"), std::string::npos);
  EXPECT_NE(health.find("\"queue_capacity\":32"), std::string::npos);
  EXPECT_NE(health.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(health.find("\"jobs_in_flight\":0"), std::string::npos);
  EXPECT_NE(health.find("\"uptime_seconds\""), std::string::npos);

  service.Cancel();
  const std::string draining =
      service.HandleJobLine(R"({"cmd":"health","id":"h2"})");
  EXPECT_NE(draining.find("\"healthy\":false"), std::string::npos);
  EXPECT_NE(draining.find("\"draining\":true"), std::string::npos);
}

TEST(BatchMatchServiceTest, SlowCommandDumpsFlightRecords) {
  const std::string log1 =
      WriteTraceLog("service_slow_1.txt", "a;b;c\na;c;b\n");
  const std::string log2 = WriteTraceLog("service_slow_2.txt", "a;b\nb;a\n");
  ServiceOptions options;
  options.threads = 1;
  BatchMatchService service(options);
  const std::string ok_job = R"({"id":"fast","log1":")" + log1 +
                             R"(","log2":")" + log2 + R"(","labels":"none"})";
  (void)service.HandleJobLine(ok_job);
  (void)service.HandleJobLine(
      R"({"id":"broken","log1":"/missing.txt","log2":"/missing2.txt"})");

  const std::string slow = service.HandleJobLine(R"({"cmd":"slow","id":"sl"})");
  EXPECT_NE(slow.find("\"cmd\":\"slow\""), std::string::npos);
  EXPECT_NE(slow.find("\"flight_recorder\""), std::string::npos);
  EXPECT_NE(slow.find("\"records_seen\":2"), std::string::npos);
  // Both requests retained on the slow side; the failure also appears in
  // recent_failures with its error and span tree.
  EXPECT_NE(slow.find("\"fast\""), std::string::npos);
  EXPECT_NE(slow.find("\"recent_failures\""), std::string::npos);
  EXPECT_NE(slow.find("\"broken\""), std::string::npos);
  EXPECT_NE(slow.find("\"request:fast\""), std::string::npos);  // span name
  EXPECT_NE(slow.find("\"load_logs\""), std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

TEST(BatchMatchServiceTest, UnknownAdminCommandRendersError) {
  BatchMatchService service(ServiceOptions{});
  const std::string line =
      service.HandleJobLine(R"({"cmd":"reboot","id":"x"})");
  EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(line.find("reboot"), std::string::npos);
}

TEST(BatchMatchServiceTest, JobsWithoutIdGetAssignedRequestIds) {
  BatchMatchService service(ServiceOptions{});
  const std::string line = service.HandleJobLine(
      R"({"log1":"/missing1.txt","log2":"/missing2.txt"})");
  EXPECT_NE(line.find("\"id\":\"req-"), std::string::npos);
}

TEST(BatchMatchServiceTest, TelemetryOffRunsBare) {
  const std::string log1 =
      WriteTraceLog("service_bare_1.txt", "a;b;c\na;c;b\n");
  const std::string log2 = WriteTraceLog("service_bare_2.txt", "a;b\nb;a\n");
  ServiceOptions options;
  options.threads = 1;
  options.telemetry = false;
  BatchMatchService service(options);
  EXPECT_EQ(service.obs(), nullptr);
  EXPECT_EQ(service.flight_recorder(), nullptr);
  const std::string line = service.HandleJobLine(
      R"({"id":"b1","log1":")" + log1 + R"(","log2":")" + log2 +
      R"(","labels":"none"})");
  EXPECT_NE(line.find("\"status\":\"ok\""), std::string::npos);
  // Admin commands still answer; stats degrades to the structural gauges.
  const std::string stats = service.HandleJobLine(R"({"cmd":"stats"})");
  EXPECT_NE(stats.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(stats.find("\"snapshot\""), std::string::npos);
  EXPECT_NE(stats.find("\"cache\""), std::string::npos);
  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

TEST(BatchMatchServiceTest, RunStreamAnswersAdminCommandsMidStream) {
  const std::string log1 =
      WriteTraceLog("service_admin_1.txt", "a;b;c\na;c;b\n");
  const std::string log2 = WriteTraceLog("service_admin_2.txt", "a;b\nb;a\n");
  ServiceOptions options;
  options.threads = 2;
  BatchMatchService service(options);

  std::ostringstream jobs;
  const std::string pair = R"("log1":")" + log1 + R"(","log2":")" + log2 +
                           R"(","labels":"none")";
  jobs << R"({"id":"j1",)" << pair << "}\n";
  jobs << R"({"cmd":"stats","id":"mid-stats"})" << "\n";
  jobs << R"({"id":"j2",)" << pair << "}\n";
  jobs << R"({"cmd":"health","id":"mid-health"})" << "\n";

  std::istringstream in(jobs.str());
  std::ostringstream out;
  EXPECT_EQ(service.RunStream(in, out), 4u);  // 2 jobs + 2 admin lines

  const std::string output = out.str();
  EXPECT_NE(output.find("\"id\":\"mid-stats\""), std::string::npos);
  EXPECT_NE(output.find("\"id\":\"mid-health\""), std::string::npos);
  EXPECT_NE(output.find("\"id\":\"j1\""), std::string::npos);
  EXPECT_NE(output.find("\"id\":\"j2\""), std::string::npos);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

TEST(BatchMatchServiceTest, CancelledServiceReportsCancelledJobs) {
  ServiceOptions options;
  options.threads = 1;
  BatchMatchService service(options);
  service.Cancel();
  std::string line = service.HandleJobLine(
      R"({"id":"late","log1":"a.txt","log2":"b.txt"})");
  EXPECT_NE(line.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(line.find("Cancelled"), std::string::npos);
}

TEST(ParseTopKRequestTest, ParsesAndValidates) {
  Result<TopKRequest> request = ParseTopKRequest(
      R"({"id":"t1","query":"q.txt","topk":3,"members":["a.txt","b.txt"],)"
      R"("alpha":0.4,"labels":"qgram"})");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->id, "t1");
  EXPECT_EQ(request->query, "q.txt");
  EXPECT_EQ(request->k, 3u);
  EXPECT_EQ(request->members,
            (std::vector<std::string>{"a.txt", "b.txt"}));
  EXPECT_DOUBLE_EQ(request->options.ems.alpha, 0.4);
  EXPECT_FALSE(request->brute_force);

  EXPECT_FALSE(ParseTopKRequest(R"({"query":"q.txt"})").ok());  // no corpus
  EXPECT_FALSE(  // both member sources
      ParseTopKRequest(
          R"({"query":"q","members":["a"],"corpus":"/c"})")
          .ok());
  EXPECT_FALSE(ParseTopKRequest(R"({"query":"q","members":[]})").ok());
  EXPECT_FALSE(
      ParseTopKRequest(R"({"query":"q","members":[1]})").ok());
  EXPECT_FALSE(
      ParseTopKRequest(R"({"topk":2,"members":["a"]})").ok());  // no query
}

// topk over an explicit member list: the indexed and the brute-forced
// response must carry identical hits (member order, rank, exact score
// bits) — the service-level face of the scheduler's exactness contract.
TEST(BatchMatchServiceTest, TopKJobRanksMembersAndMatchesBruteForce) {
  std::vector<std::string> members;
  for (int i = 0; i < 4; ++i) {
    members.push_back(WriteTraceLog(
        "service_topk_" + std::to_string(i) + ".txt",
        i < 2 ? "a;b;c;d\na;b;d\na;c;d\n" : "x;y;z\nx;z;y\nz;x;y\n"));
  }
  ServiceOptions options;
  options.threads = 2;
  BatchMatchService service(options);

  std::string member_list;
  for (const std::string& m : members) {
    member_list += (member_list.empty() ? "\"" : ",\"") + m + "\"";
  }
  const std::string base = R"({"id":"t1","query":")" + members[0] +
                           R"(","topk":2,"members":[)" + member_list + "]";
  const std::string indexed_line = service.HandleJobLine(base + "}");
  const std::string brute_line =
      service.HandleJobLine(base + R"(,"brute_force":true})");

  Result<JsonValue> indexed = ParseJson(indexed_line);
  Result<JsonValue> brute = ParseJson(brute_line);
  ASSERT_TRUE(indexed.ok()) << indexed_line;
  ASSERT_TRUE(brute.ok()) << brute_line;
  EXPECT_EQ(indexed->GetString("status", ""), "ok");
  EXPECT_EQ(brute->GetString("status", ""), "ok");

  const JsonValue* ih = indexed->Find("hits");
  const JsonValue* bh = brute->Find("hits");
  ASSERT_NE(ih, nullptr);
  ASSERT_NE(bh, nullptr);
  ASSERT_EQ(ih->array_items().size(), 2u);
  ASSERT_EQ(bh->array_items().size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    const JsonValue& a = ih->array_items()[i];
    const JsonValue& b = bh->array_items()[i];
    EXPECT_EQ(a.GetString("member", "?"), b.GetString("member", "!"));
    // Exact IEEE-754 bits, hex-encoded: lossless across the wire.
    EXPECT_EQ(a.GetString("score_bits", "?"), b.GetString("score_bits", "!"));
    EXPECT_EQ(a.GetInt("rank", -1), static_cast<int>(i) + 1);
  }
  // The query is members[0] itself; its twin content is members[1].
  EXPECT_EQ(ih->array_items()[0].GetString("member", ""), members[0]);
  EXPECT_EQ(ih->array_items()[1].GetString("member", ""), members[1]);

  const JsonValue* stats = indexed->Find("index");
  const JsonValue* brute_stats = brute->Find("index");
  ASSERT_NE(stats, nullptr);
  ASSERT_NE(brute_stats, nullptr);
  EXPECT_EQ(stats->GetInt("candidates_retrieved", -1), 4);
  EXPECT_FALSE(stats->GetBool("brute_force", true));
  EXPECT_TRUE(brute_stats->GetBool("brute_force", false));

  // Same members again: the corpus cache must answer the second build.
  ASSERT_NE(service.obs(), nullptr);
  EXPECT_GE(service.obs()->metrics.CounterValue("serve.corpus_cache.hits"),
            1u);

  for (const std::string& m : members) std::remove(m.c_str());
}

TEST(BatchMatchServiceTest, TopKJobReportsErrors) {
  ServiceOptions options;
  options.threads = 1;
  BatchMatchService service(options);
  const std::string missing = service.HandleJobLine(
      R"({"id":"t2","query":"/not/here.txt","members":["/also/not.txt"]})");
  EXPECT_NE(missing.find("\"status\":\"error\""), std::string::npos);
  EXPECT_NE(missing.find("\"id\":\"t2\""), std::string::npos);
  const std::string invalid = service.HandleJobLine(
      R"({"id":"t3","query":"q.txt","members":[]})");
  EXPECT_NE(invalid.find("\"status\":\"error\""), std::string::npos);
}

TEST(BatchMatchServiceTest, AppendJobReportsStreamFieldsAndWarms) {
  const std::string log1 =
      WriteTraceLog("service_append_1.txt", "a;b;c\na;b;c\na;c\n");
  const std::string log2 =
      WriteTraceLog("service_append_2.txt", "a;b;c\na;c;b\n");

  ObsContext obs;
  ServiceOptions options;
  options.threads = 1;
  options.obs = &obs;
  BatchMatchService service(options);

  const std::string pair =
      R"("log1":")" + log1 + R"(","log2":")" + log2 + R"(")";
  const std::string first = service.HandleJobLine(
      R"({"cmd":"append","id":"a1",)" + pair +
      R"(,"traces":[["a","b","c"]]})");
  EXPECT_NE(first.find("\"status\":\"ok\""), std::string::npos) << first;
  EXPECT_NE(first.find("\"stream\":{"), std::string::npos) << first;
  EXPECT_NE(first.find("\"appended_traces\":1"), std::string::npos);
  EXPECT_NE(first.find("\"total_traces\":4"), std::string::npos);
  EXPECT_NE(first.find("\"session_created\":true"), std::string::npos);
  EXPECT_NE(first.find("\"resumed_from_store\":false"), std::string::npos);
  // The first append starts the chain: nothing to warm from yet.
  EXPECT_NE(first.find("\"warm\":false"), std::string::npos);

  const std::string second = service.HandleJobLine(
      R"({"cmd":"append","id":"a2",)" + pair +
      R"(,"traces":[["a","c"]]})");
  EXPECT_NE(second.find("\"status\":\"ok\""), std::string::npos) << second;
  EXPECT_NE(second.find("\"session_created\":false"), std::string::npos);
  EXPECT_NE(second.find("\"warm\":true"), std::string::npos) << second;
  EXPECT_NE(second.find("\"iterations_saved\":"), std::string::npos);
  EXPECT_NE(second.find("\"total_traces\":5"), std::string::npos);

  EXPECT_EQ(obs.metrics.CounterValue("serve.append_jobs"), 2u);
  EXPECT_EQ(obs.metrics.CounterValue("stream.appends"), 2u);
  EXPECT_EQ(obs.metrics.CounterValue("stream.appended_traces"), 2u);
  EXPECT_EQ(obs.metrics.CounterValue("stream.warm_matches"), 1u);

  // An empty append is a no-op touch: the graphs are bit-identical to
  // the seed's, so the re-match degenerates to a one-iteration resume.
  const std::string empty = service.HandleJobLine(
      R"({"cmd":"append","id":"a3",)" + pair + "}");
  EXPECT_NE(empty.find("\"status\":\"ok\""), std::string::npos) << empty;
  EXPECT_NE(empty.find("\"appended_traces\":0"), std::string::npos);
  EXPECT_NE(empty.find("\"warm\":true"), std::string::npos);
  EXPECT_NE(empty.find("\"iterations\":1"), std::string::npos) << empty;

  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

// Regression for the stale-parse hazard: a match job after an append
// must be answered from the session's grown state, never from the
// parsed-log cache entry of the original file (which no longer reflects
// the pair being served).
TEST(BatchMatchServiceTest, MatchAfterAppendServesSessionStateNotStaleParse) {
  const std::string log1 =
      WriteTraceLog("service_append_stale_1.txt", "a;b\na;b\n");
  const std::string log2 =
      WriteTraceLog("service_append_stale_2.txt", "a;b;c\na;c;b\n");

  ObsContext obs;
  ServiceOptions options;
  options.threads = 1;
  options.obs = &obs;
  BatchMatchService service(options);

  const std::string pair =
      R"("log1":")" + log1 + R"(","log2":")" + log2 + R"(")";
  // Prime the parsed-log cache with the original two-trace file.
  const std::string before =
      service.HandleJobLine(R"({"id":"m1",)" + pair + "}");
  EXPECT_NE(before.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(before.find("\"c\""), std::string::npos)
      << "log1 has no 'c' yet: " << before;

  // The append introduces 'c' into log 1 — in the session only, the
  // file on disk is untouched (and still cached).
  const std::string append = service.HandleJobLine(
      R"({"cmd":"append","id":"a1",)" + pair +
      R"(,"traces":[["a","c","b"],["a","c","b"]]})");
  EXPECT_NE(append.find("\"status\":\"ok\""), std::string::npos) << append;
  EXPECT_NE(append.find("\"new_events\":1"), std::string::npos) << append;

  const std::string after =
      service.HandleJobLine(R"({"id":"m2",)" + pair + "}");
  EXPECT_NE(after.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(after.find("\"c\""), std::string::npos)
      << "match after append served the stale parse: " << after;
  EXPECT_EQ(obs.metrics.CounterValue("stream.session_matches"), 1u);

  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

// Restart resume: a new service pointed at the same --cache-dir picks a
// streaming session back up from the persisted seed matrix — log
// snapshots answer the parses and the first re-match is warm.
TEST(BatchMatchServiceTest, RestartWithCacheDirResumesStreamSessionWarm) {
  const std::string log1 =
      WriteTraceLog("service_stream_warm_1.txt", "a;b;c\na;b;c\na;c\n");
  const std::string log2 =
      WriteTraceLog("service_stream_warm_2.txt", "a;b;c\na;c;b\n");
  const std::string cache_dir = TempDir() + "/service_stream_warm_store";
  std::filesystem::remove_all(cache_dir);

  const std::string pair =
      R"("log1":")" + log1 + R"(","log2":")" + log2 + R"(")";
  // The batch stays inside the base vocabulary so the persisted seed's
  // dimensions still fit the graphs a restarted service rebuilds from
  // the unchanged base files.
  const std::string append_line = R"({"cmd":"append","id":"a1",)" + pair +
                                  R"(,"traces":[["a","b","c"]]})";

  {
    ObsContext obs;
    ServiceOptions options;
    options.threads = 1;
    options.cache_dir = cache_dir;
    options.obs = &obs;
    BatchMatchService service(options);
    const std::string first = service.HandleJobLine(append_line);
    EXPECT_NE(first.find("\"status\":\"ok\""), std::string::npos) << first;
    EXPECT_NE(first.find("\"resumed_from_store\":false"), std::string::npos);
    EXPECT_EQ(obs.metrics.CounterValue("stream.seed_resumes"), 0u);
  }  // restart: sessions gone, the store directory survives

  {
    ObsContext obs;
    ServiceOptions options;
    options.threads = 1;
    options.cache_dir = cache_dir;
    options.obs = &obs;
    BatchMatchService service(options);
    const std::string resumed = service.HandleJobLine(append_line);
    EXPECT_NE(resumed.find("\"status\":\"ok\""), std::string::npos)
        << resumed;
    EXPECT_NE(resumed.find("\"resumed_from_store\":true"), std::string::npos)
        << resumed;
    EXPECT_NE(resumed.find("\"warm\":true"), std::string::npos) << resumed;
    // Exactly one seed snapshot resumed the chain, and both base logs
    // came back from snapshots — zero source re-parses.
    EXPECT_EQ(obs.metrics.CounterValue("stream.seed_resumes"), 1u);
    EXPECT_GE(obs.metrics.CounterValue("store.hits"), 2u);
    EXPECT_EQ(obs.metrics.CounterValue("store.misses"), 0u);
  }

  std::filesystem::remove_all(cache_dir);
  std::remove(log1.c_str());
  std::remove(log2.c_str());
}

}  // namespace
}  // namespace serve
}  // namespace ems
