#include "eval/table.h"
#include <algorithm>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer-name", "2.50"});
  std::string s = t.ToString();
  // Header, separator, two rows.
  size_t lines = std::count(s.begin(), s.end(), '\n');
  EXPECT_EQ(lines, 4u);
  // Every row starts at the same column offsets: the separator spans
  // the full width.
  size_t header_end = s.find('\n');
  size_t sep_end = s.find('\n', header_end + 1);
  std::string sep = s.substr(header_end + 1, sep_end - header_end - 1);
  EXPECT_EQ(sep.find_first_not_of('-'), std::string::npos);
  EXPECT_GE(sep.size(), std::string("longer-name  2.50").size());
}

TEST(TextTableTest, HeaderOnlyTable) {
  TextTable t({"a", "b", "c"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);  // header + separator
}

TEST(CellTest, Formatting) {
  EXPECT_EQ(Cell(0.45714), "0.457");
  EXPECT_EQ(Cell(1.0, 1), "1.0");
  EXPECT_EQ(Cell(0.05, 2), "0.05");
}

TEST(MillisCellTest, UnitsSwitch) {
  EXPECT_EQ(MillisCell(12.34), "12.3ms");
  EXPECT_EQ(MillisCell(999.94), "999.9ms");
  EXPECT_EQ(MillisCell(1500.0), "1.50s");
  EXPECT_EQ(MillisCell(0.0), "0.0ms");
}

}  // namespace
}  // namespace ems
