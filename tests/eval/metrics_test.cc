#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

using Links = std::set<std::pair<std::string, std::string>>;

TEST(EvaluateLinksTest, PerfectMatch) {
  Links truth = {{"a", "x"}, {"b", "y"}};
  MatchQuality q = EvaluateLinks(truth, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f_measure, 1.0);
  EXPECT_EQ(q.correct_links, 2u);
}

TEST(EvaluateLinksTest, PartialOverlap) {
  Links truth = {{"a", "x"}, {"b", "y"}, {"c", "z"}};
  Links found = {{"a", "x"}, {"b", "WRONG"}};
  MatchQuality q = EvaluateLinks(truth, found);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_NEAR(q.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.f_measure, 2 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0 / 3.0), 1e-12);
}

TEST(EvaluateLinksTest, EmptyFound) {
  Links truth = {{"a", "x"}};
  MatchQuality q = EvaluateLinks(truth, {});
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.f_measure, 0.0);
}

TEST(EvaluateLinksTest, EmptyTruthNonEmptyFound) {
  Links found = {{"a", "x"}};
  MatchQuality q = EvaluateLinks({}, found);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
}

TEST(EvaluateLinksTest, BothEmptyIsPerfect) {
  MatchQuality q = EvaluateLinks({}, {});
  EXPECT_DOUBLE_EQ(q.f_measure, 1.0);
}

TEST(GroundTruthTest, ComplexEntriesFlattenToLinks) {
  GroundTruth truth;
  truth.AddComplex({"c", "d"}, {"cd"});
  truth.Add("a", "x");
  Links links = truth.Links();
  EXPECT_EQ(links, (Links{{"c", "cd"}, {"d", "cd"}, {"a", "x"}}));
}

TEST(GroundTruthTest, RenameRight) {
  GroundTruth truth;
  truth.Add("a", "x");
  truth.Add("b", "y");
  truth.RenameRight({{"x", "opaque_x"}});
  Links links = truth.Links();
  EXPECT_TRUE(links.count({"a", "opaque_x"}));
  EXPECT_TRUE(links.count({"b", "y"}));  // unmapped name kept
}

TEST(GroundTruthTest, RenameLeft) {
  GroundTruth truth;
  truth.AddComplex({"c", "d"}, {"cd"});
  truth.RenameLeft({{"c", "C"}});
  EXPECT_TRUE(truth.Links().count({"C", "cd"}));
  EXPECT_TRUE(truth.Links().count({"d", "cd"}));
}

TEST(GroundTruthTest, RestrictToVocabularies) {
  GroundTruth truth;
  truth.Add("a", "x");
  truth.Add("gone", "y");
  truth.AddComplex({"c", "d"}, {"cd"});
  truth.RestrictToVocabularies({"a", "c"}, {"x", "cd", "y"});
  // "gone" entry dropped entirely; complex entry shrinks to {c}.
  Links links = truth.Links();
  EXPECT_EQ(links, (Links{{"a", "x"}, {"c", "cd"}}));
}

TEST(GroundTruthTest, RestrictDropsEmptySides) {
  GroundTruth truth;
  truth.Add("a", "x");
  truth.RestrictToVocabularies({"a"}, {});
  EXPECT_EQ(truth.size(), 0u);
}

TEST(CorrespondenceLinksTest, FlattensMtoN) {
  std::vector<Correspondence> found;
  Correspondence c;
  c.events1 = {"c", "d"};
  c.events2 = {"u", "v"};
  found.push_back(c);
  Links links = CorrespondenceLinks(found);
  EXPECT_EQ(links.size(), 4u);
  EXPECT_TRUE(links.count({"c", "v"}));
}

TEST(QualityAccumulatorTest, MacroAverage) {
  QualityAccumulator acc;
  MatchQuality q1;
  q1.precision = 1.0;
  q1.recall = 0.5;
  q1.f_measure = 2.0 / 3.0;
  MatchQuality q2;
  q2.precision = 0.0;
  q2.recall = 0.5;
  q2.f_measure = 0.0;
  acc.Add(q1);
  acc.Add(q2);
  MatchQuality mean = acc.Mean();
  EXPECT_DOUBLE_EQ(mean.precision, 0.5);
  EXPECT_DOUBLE_EQ(mean.recall, 0.5);
  EXPECT_NEAR(mean.f_measure, 1.0 / 3.0, 1e-12);
  EXPECT_EQ(acc.count(), 2u);
}

TEST(QualityAccumulatorTest, EmptyMeanIsZero) {
  QualityAccumulator acc;
  MatchQuality mean = acc.Mean();
  EXPECT_DOUBLE_EQ(mean.f_measure, 0.0);
}

}  // namespace
}  // namespace ems
