#include "eval/harness.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

LogPair SmallPair(uint64_t seed = 21, int dislocation = 1) {
  PairOptions opts;
  opts.num_activities = 14;
  opts.num_traces = 100;
  opts.dislocation = dislocation;
  opts.seed = seed;
  return MakeLogPair(Testbed::kDsB, opts);
}

TEST(HarnessTest, FloodingMethodRuns) {
  LogPair pair = SmallPair();
  HarnessOptions opts;
  MethodRun run = RunMethod(Method::kFlooding, pair, opts);
  EXPECT_FALSE(run.dnf);
  EXPECT_GE(run.quality.f_measure, 0.0);
  EXPECT_LE(run.quality.f_measure, 1.0);
  EXPECT_STREQ(MethodName(Method::kFlooding), "SimFlood");
}

TEST(HarnessTest, MethodNamesAreStable) {
  EXPECT_STREQ(MethodName(Method::kEms), "EMS");
  EXPECT_STREQ(MethodName(Method::kEmsEstimated), "EMS+es");
  EXPECT_STREQ(MethodName(Method::kGed), "GED");
  EXPECT_STREQ(MethodName(Method::kOpq), "OPQ");
  EXPECT_STREQ(MethodName(Method::kBhv), "BHV");
  EXPECT_STREQ(MethodName(Method::kSimRank), "SimRank");
}

TEST(HarnessTest, AllMethodsRunOnSmallPair) {
  LogPair pair = SmallPair();
  HarnessOptions opts;
  for (Method m : {Method::kEms, Method::kEmsEstimated, Method::kGed,
                   Method::kBhv, Method::kSimRank}) {
    MethodRun run = RunMethod(m, pair, opts);
    EXPECT_FALSE(run.dnf) << MethodName(m);
    EXPECT_GE(run.quality.f_measure, 0.0) << MethodName(m);
    EXPECT_LE(run.quality.f_measure, 1.0) << MethodName(m);
    EXPECT_GE(run.millis, 0.0);
  }
}

TEST(HarnessTest, OpqRunsOrReportsDnf) {
  LogPair pair = SmallPair();
  HarnessOptions opts;
  opts.opq_max_expansions = 5'000'000;
  MethodRun run = RunMethod(Method::kOpq, pair, opts);
  if (!run.dnf) {
    EXPECT_GE(run.quality.f_measure, 0.0);
  }
}

TEST(HarnessTest, OpqTinyBudgetIsDnf) {
  LogPair pair = SmallPair();
  HarnessOptions opts;
  opts.opq_max_expansions = 1;
  opts.opq_fallback_hill_climb = false;
  MethodRun run = RunMethod(Method::kOpq, pair, opts);
  EXPECT_TRUE(run.dnf);
}

TEST(HarnessTest, OpqTinyBudgetFallsBackToHillClimb) {
  LogPair pair = SmallPair();
  HarnessOptions opts;
  opts.opq_max_expansions = 1;
  opts.opq_fallback_hill_climb = true;
  MethodRun run = RunMethod(Method::kOpq, pair, opts);
  EXPECT_FALSE(run.dnf);
}

TEST(HarnessTest, EmsBeatsBhvOnHeadDislocation) {
  // The core claim of the paper (Figure 3, DS-B): EMS handles dislocated
  // events at trace beginnings; BHV does not. Averaged over several
  // pairs to avoid single-seed flukes.
  HarnessOptions opts;
  QualityAccumulator ems_acc, bhv_acc;
  for (uint64_t seed : {31u, 32u, 33u, 34u, 35u}) {
    LogPair pair = SmallPair(seed, /*dislocation=*/2);
    ems_acc.Add(RunMethod(Method::kEms, pair, opts).quality);
    bhv_acc.Add(RunMethod(Method::kBhv, pair, opts).quality);
  }
  EXPECT_GT(ems_acc.Mean().f_measure, bhv_acc.Mean().f_measure);
}

TEST(HarnessTest, LabelsImproveEmsOnNonOpaquePair) {
  PairOptions pair_opts;
  pair_opts.num_activities = 8;
  pair_opts.num_traces = 60;
  pair_opts.dislocation = 1;
  pair_opts.opaque = false;  // labels carry signal
  pair_opts.seed = 51;
  LogPair pair = MakeLogPair(Testbed::kDsB, pair_opts);
  HarnessOptions structural;
  HarnessOptions with_labels;
  with_labels.use_labels = true;
  MethodRun s = RunMethod(Method::kEms, pair, structural);
  MethodRun l = RunMethod(Method::kEms, pair, with_labels);
  EXPECT_GE(l.quality.f_measure + 1e-9, s.quality.f_measure);
}

TEST(HarnessTest, EstimationIsFasterOnLargerPairs) {
  PairOptions pair_opts;
  pair_opts.num_activities = 30;
  pair_opts.num_traces = 100;
  pair_opts.seed = 61;
  LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
  HarnessOptions opts;
  opts.estimation_iterations = 0;
  MethodRun exact = RunMethod(Method::kEms, pair, opts);
  MethodRun est = RunMethod(Method::kEmsEstimated, pair, opts);
  EXPECT_LT(est.ems_stats.formula_evaluations,
            exact.ems_stats.formula_evaluations);
}

TEST(HarnessTest, CompositeFlagRunsCompositePipeline) {
  PairOptions pair_opts;
  pair_opts.num_activities = 8;
  pair_opts.num_traces = 60;
  pair_opts.num_composites = 1;
  pair_opts.dislocation = 0;
  pair_opts.seed = 71;
  LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
  HarnessOptions opts;
  opts.composites = true;
  MethodRun run = RunMethod(Method::kEms, pair, opts);
  EXPECT_FALSE(run.dnf);
  EXPECT_GT(run.composite_stats.candidates_evaluated, 0);
}

}  // namespace
}  // namespace ems
