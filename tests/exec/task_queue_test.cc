// BoundedTaskQueue: FIFO semantics, saturation backpressure, and Close
// wake-ups — the contracts the thread pool and the batch service build on.
#include <atomic>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/task_queue.h"

namespace ems {
namespace exec {
namespace {

TEST(TaskQueueTest, FifoOrder) {
  BoundedTaskQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    std::optional<int> item = q.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(TaskQueueTest, TryPushFailsWhenSaturated) {
  BoundedTaskQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_EQ(q.size(), q.capacity());
  EXPECT_FALSE(q.TryPush(3));  // full: backpressure, not growth
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_TRUE(q.TryPush(3));  // room again
}

TEST(TaskQueueTest, PushBlocksUntilConsumerMakesRoom) {
  BoundedTaskQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks on the full queue
    pushed.store(true);
  });
  // The producer cannot complete until we pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.Pop(), 2);
}

TEST(TaskQueueTest, CloseWakesBlockedProducer) {
  BoundedTaskQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(2));  // blocked, then woken by Close -> false
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  producer.join();
}

TEST(TaskQueueTest, PopDrainsRemainingItemsAfterClose) {
  BoundedTaskQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  q.Close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.Push(3));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.Pop(), 1);  // closed queues still drain
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_EQ(q.Pop(), std::nullopt);  // idempotent
}

TEST(TaskQueueTest, CloseWakesBlockedConsumer) {
  BoundedTaskQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.Pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Close();
  consumer.join();
}

TEST(TaskQueueTest, TryPopOnEmptyIsNullopt) {
  BoundedTaskQueue<int> q(2);
  EXPECT_EQ(q.TryPop(), std::nullopt);
  EXPECT_TRUE(q.Push(7));
  EXPECT_EQ(q.TryPop(), 7);
}

TEST(TaskQueueTest, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 200;
  BoundedTaskQueue<int> q(8);  // far smaller than the item count

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int> item = q.Pop()) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
      }
    });
  }
  for (std::thread& t : producers) t.join();
  q.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace exec
}  // namespace ems
