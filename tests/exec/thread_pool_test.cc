// ThreadPool, ParallelFor, and TaskGroup: scheduling, inline-degradation
// safety, Status/exception propagation, and cooperative cancellation.
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "obs/context.h"

namespace ems {
namespace exec {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();  // drains the queue before joining
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_FALSE(pool.TrySubmit([] {}));
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, EffectiveThreadsResolvesZeroToHardware) {
  EXPECT_GE(ThreadPool::EffectiveThreads(0), 1);
  EXPECT_EQ(ThreadPool::EffectiveThreads(1), 1);
  EXPECT_EQ(ThreadPool::EffectiveThreads(7), 7);
  EXPECT_GE(ThreadPool::EffectiveThreads(-3), 1);
}

TEST(ThreadPoolTest, InWorkerThreadDistinguishesWorkers) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InWorkerThread());
  std::atomic<bool> inside{false};
  ASSERT_TRUE(pool.Submit([&] { inside.store(pool.InWorkerThread()); }));
  pool.Shutdown();
  EXPECT_TRUE(inside.load());
}

TEST(ThreadPoolTest, RecordsMetricsWhenObserved) {
  ObsContext obs;
  ThreadPoolOptions options;
  options.num_threads = 2;
  options.obs = &obs;
  {
    ThreadPool pool(options);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(pool.Submit([] {}));
    }
  }
  EXPECT_EQ(obs.metrics.CounterValue("exec.pool.tasks_submitted"), 10u);
  EXPECT_EQ(obs.metrics.CounterValue("exec.pool.tasks_completed"), 10u);
  EXPECT_EQ(obs.metrics.GetHistogram("exec.pool.task_millis")->count(), 10u);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 500;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(&pool, 0, kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 3, 8, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{3, 4, 5, 6, 7}));
}

TEST(ParallelForTest, ChunkGeometryIsAPureFunctionOfInputs) {
  // The same (range, max_chunks) must produce the same chunks whether or
  // not a pool is present — this is what makes per-chunk reductions
  // bit-identical across thread counts.
  auto collect = [](ThreadPool* pool) {
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> ranges;
    ParallelForChunks(pool, 0, 10, 4, [&](int, size_t b, size_t e) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.insert({b, e});
    });
    return ranges;
  };
  ThreadPool pool(4);
  const auto expected =
      std::set<std::pair<size_t, size_t>>{{0, 3}, {3, 6}, {6, 8}, {8, 10}};
  EXPECT_EQ(collect(nullptr), expected);
  EXPECT_EQ(collect(&pool), expected);
}

TEST(ParallelForTest, NestedCallFromWorkerDegradesInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<int> inner_ran{0};
  ParallelFor(&pool, 0, 4, [&](size_t) {
    // Nested parallelism on the same pool must run inline, not deadlock
    // on the bounded queue.
    ParallelFor(&pool, 0, 8, [&](size_t) { inner_ran.fetch_add(1); });
  });
  EXPECT_EQ(inner_ran.load(), 32);
}

TEST(TaskGroupTest, WaitReturnsOkWhenAllTasksSucceed) {
  ThreadPool pool(3);
  TaskGroup group(&pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 20; ++i) {
    group.Run([&ran]() -> Status {
      ran.fetch_add(1);
      return Status::OK();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(ran.load(), 20);
}

TEST(TaskGroupTest, FirstErrorWinsAndCancelsTheGroup) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Run([]() -> Status { return Status::InvalidArgument("boom"); });
  Status status = group.Wait();
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_TRUE(group.cancelled());  // an error cancels the remaining tasks
}

TEST(TaskGroupTest, ExceptionBecomesInternalStatus) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  group.Run([]() -> Status { throw std::runtime_error("kaboom"); });
  Status status = group.Wait();
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.message().find("kaboom"), std::string::npos);
}

TEST(TaskGroupTest, CancellationStopsTasksMidBatch) {
  ThreadPool pool(2);
  CancellationSource source;
  TaskGroup group(&pool, source.token());
  std::atomic<int> executed{0};
  for (int i = 0; i < 200; ++i) {
    group.Run([&]() -> Status {
      if (group.cancelled()) return Status::OK();  // honor the token
      if (executed.fetch_add(1) == 4) source.Cancel();
      return Status::OK();
    });
  }
  Status status = group.Wait();
  EXPECT_TRUE(status.IsCancelled());
  // The batch stopped well short of 200 once the source fired.
  EXPECT_LT(executed.load(), 200);
  EXPECT_GE(executed.load(), 5);
}

TEST(TaskGroupTest, NullPoolRunsTasksInline) {
  TaskGroup group(nullptr);
  int ran = 0;
  group.Run([&ran]() -> Status {
    ++ran;
    return Status::OK();
  });
  EXPECT_EQ(ran, 1);  // already executed, before Wait
  EXPECT_TRUE(group.Wait().ok());
}

}  // namespace
}  // namespace exec
}  // namespace ems
