#include "assignment/selection.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

const std::vector<std::vector<double>> kSim = {
    {0.9, 0.2, 0.1},
    {0.8, 0.7, 0.0},
    {0.1, 0.6, 0.5},
};

std::set<std::pair<int, int>> AsSet(const std::vector<Match>& ms) {
  std::set<std::pair<int, int>> out;
  for (const Match& m : ms) out.emplace(m.row, m.col);
  return out;
}

TEST(SelectionTest, MaxTotalSimilarityFindsGlobalOptimum) {
  // Optimal total: (0,0)=0.9 + (1,1)=0.7 + (2,2)=0.5 = 2.1.
  std::vector<Match> ms = SelectMaxTotalSimilarity(kSim);
  EXPECT_EQ(AsSet(ms), (std::set<std::pair<int, int>>{{0, 0}, {1, 1}, {2, 2}}));
}

TEST(SelectionTest, GreedyCanDifferFromOptimal) {
  // Greedy: takes (0,0)=0.9, then (1,1)=0.7, then (2,2)=0.5 here — same.
  // Construct a matrix where greedy is suboptimal:
  std::vector<std::vector<double>> sim = {{0.9, 0.8}, {0.85, 0.1}};
  std::vector<Match> greedy = SelectGreedy(sim);
  std::vector<Match> optimal = SelectMaxTotalSimilarity(sim);
  double g = 0.0, o = 0.0;
  for (const Match& m : greedy) g += m.similarity;
  for (const Match& m : optimal) o += m.similarity;
  EXPECT_DOUBLE_EQ(g, 1.0);        // 0.9 + 0.1
  EXPECT_DOUBLE_EQ(o, 1.65);       // 0.8 + 0.85
}

TEST(SelectionTest, ThresholdFilters) {
  SelectionOptions opts;
  opts.min_similarity = 0.6;
  std::vector<Match> ms = SelectMaxTotalSimilarity(kSim, opts);
  EXPECT_EQ(AsSet(ms), (std::set<std::pair<int, int>>{{0, 0}, {1, 1}}));
  for (const Match& m : ms) EXPECT_GE(m.similarity, 0.6);
}

TEST(SelectionTest, GreedyRespectsThreshold) {
  SelectionOptions opts;
  opts.min_similarity = 0.65;
  std::vector<Match> ms = SelectGreedy(kSim, opts);
  EXPECT_EQ(AsSet(ms), (std::set<std::pair<int, int>>{{0, 0}, {1, 1}}));
}

TEST(SelectionTest, GreedyDeterministicTieBreak) {
  std::vector<std::vector<double>> sim = {{0.5, 0.5}, {0.5, 0.5}};
  std::vector<Match> a = SelectGreedy(sim);
  std::vector<Match> b = SelectGreedy(sim);
  EXPECT_EQ(AsSet(a), AsSet(b));
  EXPECT_EQ(AsSet(a), (std::set<std::pair<int, int>>{{0, 0}, {1, 1}}));
}

TEST(SelectionTest, MutualBestKeepsOnlyReciprocalPairs) {
  // (0,0): 0.9 is best in row 0 and col 0 -> kept.
  // Row 1's best is col 0 (0.8) but col 0 prefers row 0 -> dropped.
  // Row 2's best is col 1 (0.6); col 1's best is row 1 (0.7) -> dropped.
  std::vector<Match> ms = SelectMutualBest(kSim);
  EXPECT_EQ(AsSet(ms), (std::set<std::pair<int, int>>{{0, 0}}));
}

TEST(SelectionTest, EmptyMatrix) {
  EXPECT_TRUE(SelectMaxTotalSimilarity({}).empty());
  EXPECT_TRUE(SelectGreedy({}).empty());
  EXPECT_TRUE(SelectMutualBest({}).empty());
}

TEST(SelectionTest, OneToOneProperty) {
  for (auto* fn : {&SelectMaxTotalSimilarity, &SelectGreedy,
                   &SelectMutualBest}) {
    std::vector<Match> ms = (*fn)(kSim, SelectionOptions{});
    std::set<int> rows, cols;
    for (const Match& m : ms) {
      EXPECT_TRUE(rows.insert(m.row).second);
      EXPECT_TRUE(cols.insert(m.col).second);
    }
  }
}

}  // namespace
}  // namespace ems
