#include "assignment/hungarian.h"

#include <random>
#include <set>
#include <algorithm>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(HungarianTest, TrivialSingleCell) {
  std::vector<int> a = MaxWeightAssignment({{5.0}});
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 0);
}

TEST(HungarianTest, PicksOffDiagonalOptimum) {
  // Greedy-per-row would pick (0,0)=3 then (1,1)=1 for 4; the optimum is
  // (0,1)=2 + (1,0)=3 = 5.
  std::vector<std::vector<double>> w = {{3.0, 2.0}, {3.0, 1.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 0);
  EXPECT_DOUBLE_EQ(AssignmentWeight(w, a), 5.0);
}

TEST(HungarianTest, ClassicThreeByThree) {
  std::vector<std::vector<double>> w = {
      {7.0, 5.0, 11.0}, {5.0, 4.0, 1.0}, {9.0, 3.0, 2.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  EXPECT_DOUBLE_EQ(AssignmentWeight(w, a), 11.0 + 4.0 + 9.0);
}

TEST(HungarianTest, RectangularMoreRows) {
  std::vector<std::vector<double>> w = {{1.0}, {9.0}, {2.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  ASSERT_EQ(a.size(), 3u);
  int assigned = 0;
  for (int x : a) assigned += x >= 0;
  EXPECT_EQ(assigned, 1);
  EXPECT_EQ(a[1], 0);  // the 9.0 row wins the single column
}

TEST(HungarianTest, RectangularMoreCols) {
  std::vector<std::vector<double>> w = {{1.0, 9.0, 2.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0], 1);
}

TEST(HungarianTest, AllZeroWeightsAssignNothingOfValue) {
  std::vector<std::vector<double>> w = {{0.0, 0.0}, {0.0, 0.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  EXPECT_DOUBLE_EQ(AssignmentWeight(w, a), 0.0);
}

TEST(HungarianTest, NegativeWeightsNotForced) {
  // Leaving rows unassigned (padding) beats taking negative pairs.
  std::vector<std::vector<double>> w = {{-1.0, -2.0}, {-3.0, -4.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  EXPECT_DOUBLE_EQ(AssignmentWeight(w, a), 0.0);
}

TEST(HungarianTest, MixedSignsTakeOnlyProfitablePairs) {
  std::vector<std::vector<double>> w = {{5.0, -1.0}, {-1.0, -1.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  EXPECT_EQ(a[0], 0);
  EXPECT_DOUBLE_EQ(AssignmentWeight(w, a), 5.0);
}

// Tie-break pins: on all-equal weights every permutation is optimal, so
// these lock in the order the solver actually produces. The EM MAP path
// (prob/em_engine.cc) runs MaxWeightAssignment over posteriors whose
// rows can tie exactly — downstream consumers (snapshots, serve output)
// rely on re-runs picking the same assignment.
TEST(HungarianTest, AllEqualSquareTieBreaksToIdentity) {
  std::vector<std::vector<double>> w = {
      {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}, {1.0, 1.0, 1.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  EXPECT_EQ(a, (std::vector<int>{0, 1, 2}));
  // Determinism: a second run reproduces the identical vector.
  EXPECT_EQ(MaxWeightAssignment(w), a);
}

TEST(HungarianTest, AllEqualWideTieBreaksToLowestColumns) {
  std::vector<std::vector<double>> w = {{2.0, 2.0, 2.0, 2.0},
                                        {2.0, 2.0, 2.0, 2.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  EXPECT_EQ(a, (std::vector<int>{0, 1}));
}

TEST(HungarianTest, AllEqualTallLeavesExtraRowsUnassigned) {
  std::vector<std::vector<double>> w = {{3.0}, {3.0}, {3.0}};
  std::vector<int> a = MaxWeightAssignment(w);
  ASSERT_EQ(a.size(), 3u);
  int assigned_to_0 = 0;
  for (int x : a) {
    if (x == 0) ++assigned_to_0;
    else EXPECT_EQ(x, -1);
  }
  EXPECT_EQ(assigned_to_0, 1);
  // The winner row is stable across runs.
  EXPECT_EQ(MaxWeightAssignment(w), a);
}

TEST(HungarianTest, PartialTieInsideOneRowIsStable) {
  // Row 0 ties between columns 1 and 2; the pinned choice must not
  // depend on the (equal) weight landing first or last.
  std::vector<std::vector<double>> w = {{0.5, 1.0, 1.0}, {0.2, 0.1, 0.3}};
  std::vector<int> a = MaxWeightAssignment(w);
  EXPECT_EQ(a, MaxWeightAssignment(w));
  EXPECT_DOUBLE_EQ(AssignmentWeight(w, a), 1.0 + 0.3);
}

TEST(HungarianTest, EmptyInputs) {
  EXPECT_TRUE(MaxWeightAssignment({}).empty());
  std::vector<std::vector<double>> no_cols = {{}, {}};
  std::vector<int> a = MaxWeightAssignment(no_cols);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], -1);
  EXPECT_EQ(a[1], -1);
}

// Brute-force cross-check on random instances.
double BruteForceBest(const std::vector<std::vector<double>>& w) {
  // Pad to a square and enumerate all permutations; skipping a pair is
  // modeled by counting only its positive part (equivalent to routing the
  // row through padding).
  size_t n = w.size();
  size_t m = w[0].size();
  size_t k = std::max(n, m);
  std::vector<int> perm(k);
  for (size_t j = 0; j < k; ++j) perm[j] = static_cast<int>(j);
  double best = 0.0;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      size_t j = static_cast<size_t>(perm[i]);
      if (j >= m) continue;  // padding column
      double v = w[i][j];
      if (v > 0) total += v;
    }
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, MatchesBruteForceOnRandomInstances) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    size_t n = 1 + rng() % 5;
    size_t m = 1 + rng() % 5;
    std::vector<std::vector<double>> w(n, std::vector<double>(m));
    for (auto& row : w) {
      for (double& v : row) {
        v = static_cast<double>(rng() % 2000) / 100.0 - 5.0;  // [-5, 15)
      }
    }
    std::vector<int> a = MaxWeightAssignment(w);
    EXPECT_NEAR(AssignmentWeight(w, a), BruteForceBest(w), 1e-9)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace ems
