#include "assignment/set_packing.h"

#include <random>
#include <set>
#include <algorithm>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(SetPackingTest, PicksDisjointOptimum) {
  // {0,1} w=3 and {2,3} w=3 beat the single {0,1,2,3} w=5.
  std::vector<WeightedSet> cands = {
      {{0, 1}, 3.0}, {{2, 3}, 3.0}, {{0, 1, 2, 3}, 5.0}};
  Result<PackingResult> r = MaxWeightSetPacking(cands, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_weight, 6.0);
  EXPECT_EQ(r->chosen.size(), 2u);
}

TEST(SetPackingTest, SingleBigSetWinsWhenHeavier) {
  std::vector<WeightedSet> cands = {
      {{0, 1}, 3.0}, {{2, 3}, 3.0}, {{0, 1, 2, 3}, 7.0}};
  Result<PackingResult> r = MaxWeightSetPacking(cands, 4);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_weight, 7.0);
}

TEST(SetPackingTest, OverlapForcesChoice) {
  std::vector<WeightedSet> cands = {{{0, 1}, 2.0}, {{1, 2}, 2.5}};
  Result<PackingResult> r = MaxWeightSetPacking(cands, 3);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->total_weight, 2.5);
  EXPECT_EQ(r->chosen.size(), 1u);
}

TEST(SetPackingTest, NegativeWeightsNeverChosen) {
  std::vector<WeightedSet> cands = {{{0}, -1.0}, {{1}, -2.0}};
  Result<PackingResult> r = MaxWeightSetPacking(cands, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->chosen.empty());
  EXPECT_DOUBLE_EQ(r->total_weight, 0.0);
}

TEST(SetPackingTest, EmptyCandidates) {
  Result<PackingResult> r = MaxWeightSetPacking({}, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->chosen.empty());
}

TEST(SetPackingTest, RejectsOutOfUniverseElements) {
  std::vector<WeightedSet> cands = {{{5}, 1.0}};
  EXPECT_TRUE(MaxWeightSetPacking(cands, 3).status().IsInvalidArgument());
  std::vector<WeightedSet> negative = {{{-1}, 1.0}};
  EXPECT_TRUE(MaxWeightSetPacking(negative, 3).status().IsInvalidArgument());
}

TEST(SetPackingTest, NodeBudgetExhaustion) {
  std::vector<WeightedSet> cands;
  for (int i = 0; i < 30; ++i) cands.push_back({{i}, 1.0});
  Result<PackingResult> r = MaxWeightSetPacking(cands, 30, /*max_nodes=*/10);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(SetPackingTest, GreedyIsFeasibleButMaybeSuboptimal) {
  // Greedy grabs the heavy overlapping set and blocks the better pair.
  std::vector<WeightedSet> cands = {
      {{0, 1, 2}, 4.0}, {{0, 1}, 3.0}, {{2, 3}, 3.0}};
  PackingResult greedy = GreedySetPacking(cands, 4);
  EXPECT_DOUBLE_EQ(greedy.total_weight, 4.0);
  Result<PackingResult> exact = MaxWeightSetPacking(cands, 4);
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->total_weight, 6.0);
  EXPECT_GE(exact->total_weight, greedy.total_weight);
}

TEST(SetPackingTest, ExactMatchesGreedyUpperBoundOnRandomInstances) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    int universe = 8;
    std::vector<WeightedSet> cands;
    size_t num = 2 + rng() % 8;
    for (size_t k = 0; k < num; ++k) {
      WeightedSet s;
      int size = 1 + static_cast<int>(rng() % 3);
      std::set<int> members;
      while (static_cast<int>(members.size()) < size) {
        members.insert(static_cast<int>(rng() % universe));
      }
      s.elements.assign(members.begin(), members.end());
      s.weight = static_cast<double>(rng() % 100) / 10.0;
      cands.push_back(std::move(s));
    }
    Result<PackingResult> exact = MaxWeightSetPacking(cands, universe);
    ASSERT_TRUE(exact.ok());
    PackingResult greedy = GreedySetPacking(cands, universe);
    EXPECT_GE(exact->total_weight + 1e-9, greedy.total_weight);
    // Verify chosen sets are pairwise disjoint.
    std::set<int> used;
    for (size_t idx : exact->chosen) {
      for (int e : cands[idx].elements) {
        EXPECT_TRUE(used.insert(e).second);
      }
    }
  }
}

}  // namespace
}  // namespace ems
