// Symmetry and invariance properties of the core similarity:
//  * EMS is symmetric: S(G1, G2) equals S(G2, G1) transposed
//    (Definition 2 averages s(v1,v2) and s(v2,v1)).
//  * Dependency graphs are frequency-normalized: duplicating the whole
//    multiset of traces changes nothing.
//  * The pipeline is deterministic: repeated runs agree exactly.
#include <gtest/gtest.h>

#include "core/ems_similarity.h"
#include "core/matcher.h"
#include "synth/dataset.h"

namespace ems {
namespace {

class SymmetryProperty : public ::testing::TestWithParam<uint64_t> {};

LogPair MakePair(uint64_t seed) {
  PairOptions opts;
  opts.num_activities = 12;
  opts.num_traces = 60;
  opts.dislocation = 1;
  opts.seed = seed;
  return MakeLogPair(Testbed::kDsFB, opts);
}

TEST_P(SymmetryProperty, EmsSimilarityIsTransposeSymmetric) {
  LogPair pair = MakePair(GetParam());
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  for (Direction dir : {Direction::kForward, Direction::kBackward,
                        Direction::kBoth}) {
    EmsOptions opts;
    opts.direction = dir;
    EmsSimilarity ab(g1, g2, opts);
    EmsSimilarity ba(g2, g1, opts);
    SimilarityMatrix s_ab = ab.Compute();
    SimilarityMatrix s_ba = ba.Compute();
    ASSERT_EQ(s_ab.rows(), s_ba.cols());
    ASSERT_EQ(s_ab.cols(), s_ba.rows());
    for (NodeId v1 = 0; v1 < static_cast<NodeId>(s_ab.rows()); ++v1) {
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(s_ab.cols()); ++v2) {
        ASSERT_NEAR(s_ab.at(v1, v2), s_ba.at(v2, v1), 1e-12)
            << "direction " << static_cast<int>(dir) << " pair (" << v1
            << ", " << v2 << ")";
      }
    }
  }
}

TEST_P(SymmetryProperty, DuplicatingTheLogChangesNothing) {
  LogPair pair = MakePair(GetParam() + 40);
  EventLog doubled;
  for (int round = 0; round < 2; ++round) {
    for (const Trace& t : pair.log1.traces()) {
      std::vector<std::string> names;
      for (EventId e : t) names.push_back(pair.log1.EventName(e));
      doubled.AddTrace(names);
    }
  }
  DependencyGraph original = DependencyGraph::Build(pair.log1);
  DependencyGraph scaled = DependencyGraph::Build(doubled);
  ASSERT_EQ(original.NumNodes(), scaled.NumNodes());
  ASSERT_EQ(original.NumEdges(), scaled.NumEdges());
  for (NodeId v = 0; v < static_cast<NodeId>(original.NumNodes()); ++v) {
    ASSERT_DOUBLE_EQ(original.NodeFrequency(v), scaled.NodeFrequency(v));
    const auto& succ = original.Successors(v);
    const auto& freq = original.SuccessorFrequencies(v);
    for (size_t i = 0; i < succ.size(); ++i) {
      ASSERT_DOUBLE_EQ(freq[i], scaled.EdgeFrequency(v, succ[i]));
    }
  }
}

TEST_P(SymmetryProperty, MatcherIsDeterministic) {
  LogPair pair = MakePair(GetParam() + 80);
  MatchOptions opts;
  opts.match_composites = true;
  Matcher matcher(opts);
  Result<MatchResult> a = matcher.Match(pair.log1, pair.log2);
  Result<MatchResult> b = matcher.Match(pair.log1, pair.log2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->correspondences.size(), b->correspondences.size());
  for (size_t i = 0; i < a->correspondences.size(); ++i) {
    EXPECT_EQ(a->correspondences[i].events1, b->correspondences[i].events1);
    EXPECT_EQ(a->correspondences[i].events2, b->correspondences[i].events2);
    EXPECT_DOUBLE_EQ(a->correspondences[i].similarity,
                     b->correspondences[i].similarity);
  }
  EXPECT_EQ(a->similarity.MaxAbsDifference(b->similarity), 0.0);
}

TEST_P(SymmetryProperty, LabelMatrixIsMeasureSymmetric) {
  LogPair pair = MakePair(GetParam() + 120);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  QGramCosineSimilarity qgram;
  auto ab = LabelSimilarityMatrix(g1, g2, qgram);
  auto ba = LabelSimilarityMatrix(g2, g1, qgram);
  for (size_t i = 0; i < ab.size(); ++i) {
    for (size_t j = 0; j < ab[i].size(); ++j) {
      ASSERT_DOUBLE_EQ(ab[i][j], ba[j][i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetryProperty,
                         ::testing::Values(701u, 702u, 703u, 704u));

}  // namespace
}  // namespace ems
