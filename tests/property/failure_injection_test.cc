// Failure injection: feed every parser truncated and mutated versions of
// valid documents. The required behavior is an error Status (or a valid
// smaller parse for clean truncation points) — never a crash, hang, or
// bogus success with garbage content.
#include <sstream>

#include <gtest/gtest.h>

#include "log/log_io.h"
#include "log/mxml.h"
#include "log/xes.h"
#include "util/random.h"

namespace ems {
namespace {

EventLog SampleLog() {
  EventLog log;
  log.AddTrace({"pay", "check & verify", "ship \"fast\""});
  log.AddTrace({"pay", "refund"});
  return log;
}

std::string SerializeXes() {
  std::ostringstream out;
  EXPECT_TRUE(WriteXes(SampleLog(), out).ok());
  return out.str();
}

std::string SerializeMxml() {
  std::ostringstream out;
  EXPECT_TRUE(WriteMxml(SampleLog(), out).ok());
  return out.str();
}

class TruncationProperty : public ::testing::TestWithParam<int> {};

TEST_P(TruncationProperty, XesTruncationNeverCrashes) {
  std::string doc = SerializeXes();
  size_t cut = doc.size() * static_cast<size_t>(GetParam()) / 100;
  std::istringstream in(doc.substr(0, cut));
  Result<EventLog> parsed = ReadXes(in);
  if (parsed.ok()) {
    // A clean prefix may parse; it must contain no more data than the
    // original.
    EXPECT_LE(parsed->NumTraces(), SampleLog().NumTraces());
    EXPECT_LE(parsed->TotalOccurrences(), SampleLog().TotalOccurrences());
  }
}

TEST_P(TruncationProperty, MxmlTruncationNeverCrashes) {
  std::string doc = SerializeMxml();
  size_t cut = doc.size() * static_cast<size_t>(GetParam()) / 100;
  std::istringstream in(doc.substr(0, cut));
  Result<EventLog> parsed = ReadMxml(in);
  if (parsed.ok()) {
    EXPECT_LE(parsed->NumTraces(), SampleLog().NumTraces());
  }
}

TEST_P(TruncationProperty, CsvTruncationNeverCrashes) {
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(SampleLog(), out).ok());
  std::string doc = out.str();
  size_t cut = doc.size() * static_cast<size_t>(GetParam()) / 100;
  std::istringstream in(doc.substr(0, cut));
  Result<EventLog> parsed = ReadCsv(in);
  if (parsed.ok()) {
    EXPECT_LE(parsed->NumTraces(), SampleLog().NumTraces());
  }
}

INSTANTIATE_TEST_SUITE_P(Cuts, TruncationProperty,
                         ::testing::Values(1, 10, 25, 40, 55, 70, 85, 99));

TEST(MutationTest, RandomByteFlipsNeverCrashParsers) {
  std::string xes = SerializeXes();
  std::string mxml = SerializeMxml();
  Rng rng(97);
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc = trial % 2 == 0 ? xes : mxml;
    // Flip a few random bytes to printable garbage.
    for (int flips = 0; flips < 3; ++flips) {
      size_t pos = rng.UniformIndex(doc.size());
      doc[pos] = static_cast<char>('!' + rng.UniformInt(0, 90));
    }
    std::istringstream in(doc);
    if (trial % 2 == 0) {
      (void)ReadXes(in);  // any Status is fine; no crash/UB allowed
    } else {
      (void)ReadMxml(in);
    }
  }
  SUCCEED();
}

TEST(MutationTest, GarbageInputsRejected) {
  for (const char* garbage :
       {"", "<", "<>", "<<<>>>", "<log", "random text", "<a b=>",
        "<log><trace><event><string key=", "\xff\xfe\x00"}) {
    std::istringstream in1{std::string(garbage)};
    EXPECT_FALSE(ReadXes(in1).ok()) << garbage;
    std::istringstream in2{std::string(garbage)};
    EXPECT_FALSE(ReadMxml(in2).ok()) << garbage;
  }
}

}  // namespace
}  // namespace ems
