// Properties of the two pruning mechanisms: early convergence
// (Proposition 2) must never change results, only save work; the
// unchanged-similarity identification (Proposition 4) used by the
// composite matcher must reproduce from-scratch similarities exactly.
#include <gtest/gtest.h>

#include "core/composite_matcher.h"
#include "core/ems_similarity.h"
#include "synth/dataset.h"

namespace ems {
namespace {

class PruningProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PruningProperty, EarlyConvergencePreservesResults) {
  PairOptions opts;
  opts.num_activities = 12;
  opts.num_traces = 60;
  opts.dislocation = 1;
  opts.seed = GetParam();
  LogPair pair = MakeLogPair(Testbed::kDsB, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  for (Direction dir : {Direction::kForward, Direction::kBackward}) {
    EmsOptions with_opts;
    with_opts.direction = dir;
    with_opts.prune_converged = true;
    EmsOptions without_opts = with_opts;
    without_opts.prune_converged = false;
    EmsSimilarity with(g1, g2, with_opts);
    EmsSimilarity without(g1, g2, without_opts);
    SimilarityMatrix a = with.Compute();
    SimilarityMatrix b = without.Compute();
    EXPECT_LT(a.MaxAbsDifference(b), 1e-9);
    EXPECT_LE(with.stats().formula_evaluations,
              without.stats().formula_evaluations);
  }
}

TEST_P(PruningProperty, HorizonsAreSound) {
  // For every pair, iterating past min(l(v1), l(v2)) never changes the
  // value (Proposition 2 verified empirically on random graphs).
  PairOptions opts;
  opts.num_activities = 10;
  opts.num_traces = 50;
  opts.seed = GetParam() + 1000;
  LogPair pair = MakeLogPair(Testbed::kDsF, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions eopts;
  eopts.direction = Direction::kForward;
  eopts.prune_converged = false;
  EmsSimilarity probe(g1, g2, eopts);
  const int deep = 30;
  EmsSimilarity deep_sim(g1, g2, eopts);
  SimilarityMatrix s_deep = deep_sim.ComputePartial(Direction::kForward, deep);
  for (NodeId v1 = 1; v1 < static_cast<NodeId>(g1.NumNodes()); ++v1) {
    for (NodeId v2 = 1; v2 < static_cast<NodeId>(g2.NumNodes()); ++v2) {
      int h = probe.ConvergenceHorizon(Direction::kForward, v1, v2);
      if (h == kInfiniteDistance || h >= deep) continue;
      EmsSimilarity at_h(g1, g2, eopts);
      SimilarityMatrix s_h = at_h.ComputePartial(Direction::kForward, h);
      EXPECT_NEAR(s_h.at(v1, v2), s_deep.at(v1, v2), 1e-9)
          << "pair (" << v1 << ", " << v2 << ") horizon " << h;
    }
  }
}

TEST_P(PruningProperty, CompositePruningsPreserveGreedyOutcome) {
  PairOptions opts;
  opts.num_activities = 8;
  opts.num_traces = 50;
  opts.num_composites = 1;
  opts.dislocation = 0;
  opts.seed = GetParam() + 2000;
  LogPair pair = MakeLogPair(Testbed::kDsFB, opts);

  CompositeOptions base;
  base.delta = 0.002;
  std::vector<double> averages;
  std::vector<uint64_t> evals;
  for (bool uc : {false, true}) {
    for (bool bd : {false, true}) {
      CompositeOptions copts = base;
      copts.prune_unchanged = uc;
      copts.prune_bounds = bd;
      CompositeMatcher matcher(pair.log1, pair.log2, copts);
      Result<CompositeMatchResult> r = matcher.Match();
      ASSERT_TRUE(r.ok());
      averages.push_back(r->average_similarity);
      evals.push_back(r->stats.formula_evaluations);
    }
  }
  for (size_t i = 1; i < averages.size(); ++i) {
    EXPECT_NEAR(averages[i], averages[0], 1e-3);
  }
  // Full pruning (both) must not cost more than no pruning.
  EXPECT_LE(evals[3], evals[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PruningProperty,
                         ::testing::Values(201u, 202u, 203u, 204u, 205u));

}  // namespace
}  // namespace ems
