// Property suite for EMS+es (Section 3.5): the exact-iteration knob I
// trades cost for accuracy — work grows with I, error vanishes for
// I >= horizon, outputs stay in [0, 1] — swept over random pairs.
#include <gtest/gtest.h>

#include "core/estimation.h"
#include "synth/dataset.h"

namespace ems {
namespace {

class EstimationProperty : public ::testing::TestWithParam<uint64_t> {};

LogPair MakePair(uint64_t seed) {
  PairOptions opts;
  opts.num_activities = 12;
  opts.num_traces = 60;
  opts.dislocation = 1;
  opts.seed = seed;
  return MakeLogPair(Testbed::kDsFB, opts);
}

TEST_P(EstimationProperty, WorkGrowsWithI) {
  LogPair pair = MakePair(GetParam());
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  uint64_t prev_evals = 0;
  for (int iterations : {0, 2, 5, 10}) {
    EstimationOptions opts;
    opts.exact_iterations = iterations;
    opts.ems.direction = Direction::kForward;
    EstimatedEmsSimilarity sim(g1, g2, opts);
    (void)sim.Compute();
    EXPECT_GE(sim.stats().formula_evaluations, prev_evals);
    prev_evals = sim.stats().formula_evaluations;
  }
}

TEST_P(EstimationProperty, OutputsInRangeForAllI) {
  LogPair pair = MakePair(GetParam() + 50);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  for (int iterations : {0, 1, 3, 7}) {
    EstimationOptions opts;
    opts.exact_iterations = iterations;
    opts.ems.direction = Direction::kBoth;
    EstimatedEmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix s = sim.Compute();
    for (NodeId v1 = 0; v1 < static_cast<NodeId>(s.rows()); ++v1) {
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(s.cols()); ++v2) {
        ASSERT_GE(s.at(v1, v2), 0.0);
        ASSERT_LE(s.at(v1, v2), 1.0);
      }
    }
  }
}

TEST_P(EstimationProperty, ExactForFiniteHorizonPairsWithLargeI) {
  LogPair pair = MakePair(GetParam() + 100);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EstimationOptions opts;
  opts.exact_iterations = 60;
  opts.ems.direction = Direction::kForward;
  EstimatedEmsSimilarity est(g1, g2, opts);
  SimilarityMatrix s_est = est.Compute();
  EmsOptions exact_opts;
  exact_opts.direction = Direction::kForward;
  exact_opts.epsilon = 1e-9;
  exact_opts.max_iterations = 200;
  EmsSimilarity exact(g1, g2, exact_opts);
  SimilarityMatrix s_exact = exact.Compute();
  for (NodeId v1 = 1; v1 < static_cast<NodeId>(s_est.rows()); ++v1) {
    for (NodeId v2 = 1; v2 < static_cast<NodeId>(s_est.cols()); ++v2) {
      int h = exact.ConvergenceHorizon(Direction::kForward, v1, v2);
      if (h == kInfiniteDistance || h > 60) continue;
      ASSERT_NEAR(s_est.at(v1, v2), s_exact.at(v1, v2), 1e-5);
    }
  }
}

TEST_P(EstimationProperty, AverageErrorAtTenBeatsZero) {
  LogPair pair = MakePair(GetParam() + 150);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions exact_opts;
  exact_opts.direction = Direction::kForward;
  EmsSimilarity exact(g1, g2, exact_opts);
  SimilarityMatrix s_exact = exact.Compute();
  auto error_at = [&](int iterations) {
    EstimationOptions opts;
    opts.exact_iterations = iterations;
    opts.ems.direction = Direction::kForward;
    EstimatedEmsSimilarity est(g1, g2, opts);
    SimilarityMatrix s = est.Compute();
    double total = 0.0;
    for (NodeId v1 = 1; v1 < static_cast<NodeId>(s.rows()); ++v1) {
      for (NodeId v2 = 1; v2 < static_cast<NodeId>(s.cols()); ++v2) {
        total += std::abs(s.at(v1, v2) - s_exact.at(v1, v2));
      }
    }
    return total;
  };
  EXPECT_LE(error_at(10), error_at(0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimationProperty,
                         ::testing::Values(501u, 502u, 503u, 504u));

}  // namespace
}  // namespace ems
