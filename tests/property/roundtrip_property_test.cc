// Round-trip property: every serialization format (trace, CSV, XES, MXML)
// must reproduce randomly generated logs exactly — same traces, same
// names, same order — across a seed sweep.
#include <sstream>

#include <gtest/gtest.h>

#include "log/log_io.h"
#include "log/mxml.h"
#include "log/xes.h"
#include "synth/dataset.h"

namespace ems {
namespace {

class RoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

EventLog MakeRandomLog(uint64_t seed) {
  PairOptions opts;
  opts.num_activities = 12;
  opts.num_traces = 30;
  opts.dislocation = 0;
  opts.opaque = true;  // hex names exercise odd characters lightly
  opts.seed = seed;
  return MakeLogPair(Testbed::kDsFB, opts).log2;
}

void ExpectSameLogs(const EventLog& a, const EventLog& b) {
  ASSERT_EQ(a.NumTraces(), b.NumTraces());
  for (size_t i = 0; i < a.NumTraces(); ++i) {
    ASSERT_EQ(a.trace(i).size(), b.trace(i).size()) << "trace " << i;
    for (size_t j = 0; j < a.trace(i).size(); ++j) {
      EXPECT_EQ(a.EventName(a.trace(i)[j]), b.EventName(b.trace(i)[j]))
          << "trace " << i << " position " << j;
    }
  }
}

TEST_P(RoundTripProperty, TraceFormat) {
  EventLog log = MakeRandomLog(GetParam());
  std::ostringstream out;
  ASSERT_TRUE(WriteTraceFormat(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadTraceFormat(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameLogs(log, *parsed);
}

TEST_P(RoundTripProperty, Csv) {
  EventLog log = MakeRandomLog(GetParam() + 100);
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadCsv(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameLogs(log, *parsed);
}

TEST_P(RoundTripProperty, Xes) {
  EventLog log = MakeRandomLog(GetParam() + 200);
  std::ostringstream out;
  ASSERT_TRUE(WriteXes(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadXes(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameLogs(log, *parsed);
}

TEST_P(RoundTripProperty, Mxml) {
  EventLog log = MakeRandomLog(GetParam() + 300);
  std::ostringstream out;
  ASSERT_TRUE(WriteMxml(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadMxml(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectSameLogs(log, *parsed);
}

TEST_P(RoundTripProperty, XesWithSpecialCharacters) {
  EventLog log;
  log.AddTrace({"a<b", "c&d", "e\"f", "g'h", "i>j"});
  std::ostringstream out;
  ASSERT_TRUE(WriteXes(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadXes(in);
  ASSERT_TRUE(parsed.ok());
  ExpectSameLogs(log, *parsed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Values(601u, 602u, 603u, 604u, 605u,
                                           606u));

}  // namespace
}  // namespace ems
