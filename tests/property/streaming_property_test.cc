// Append-sequence fuzz for streaming ingestion: over random batch
// ladders sliced from a log's own continued play-out,
//   * the incrementally maintained dependency graph must re-encode to
//     the exact snapshot bytes of a from-scratch rebuild after every
//     append (any instance, cycles included);
//   * on acyclic instances run to the horizon floor, a warm-started
//     re-match must reproduce the cold recompute byte for byte —
//     similarity matrix and correspondences — at every generation and
//     thread count;
//   * an assume_unchanged resume from a snapshot round-tripped seed must
//     return the persisted per-direction fixpoints byte-identically in
//     one iteration.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/warm_match.h"
#include "graph/dependency_graph.h"
#include "graph/streaming_graph.h"
#include "log/event_log.h"
#include "store/snapshot.h"
#include "synth/dataset.h"
#include "util/random.h"

namespace ems {
namespace {

struct StreamCase {
  uint64_t seed;
  int activities;
  int base_traces;
  int num_threads;
};

class StreamingProperty : public ::testing::TestWithParam<StreamCase> {};

std::vector<std::vector<std::string>> BatchNames(const EventLog& batch,
                                                 size_t first, size_t count) {
  std::vector<std::vector<std::string>> names;
  names.reserve(count);
  for (size_t t = first; t < first + count; ++t) {
    std::vector<std::string> trace;
    trace.reserve(batch.trace(t).size());
    for (EventId id : batch.trace(t)) trace.push_back(batch.EventName(id));
    names.push_back(std::move(trace));
  }
  return names;
}

bool BitIdentical(const SimilarityMatrix& a, const SimilarityMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.data().empty() ||
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(double)) == 0;
}

// Slices a random ladder of batch sizes out of one continued play-out.
std::vector<std::vector<std::vector<std::string>>> RandomBatches(
    const PairOptions& popts, uint64_t fuzz_seed, int appends) {
  Rng rng(fuzz_seed);
  std::vector<size_t> sizes;
  size_t total = 0;
  for (int i = 0; i < appends; ++i) {
    sizes.push_back(static_cast<size_t>(rng.UniformInt(1, 7)));
    total += sizes.back();
  }
  std::vector<EventLog> extension =
      MakeAppendBatches(popts, static_cast<int>(total), 1);
  std::vector<std::vector<std::vector<std::string>>> batches;
  size_t next = 0;
  for (size_t size : sizes) {
    batches.push_back(BatchNames(extension[0], next, size));
    next += size;
  }
  return batches;
}

TEST_P(StreamingProperty, IncrementalGraphMatchesRebuild) {
  const StreamCase& p = GetParam();
  PairOptions popts;
  popts.num_activities = p.activities;
  popts.num_traces = p.base_traces;
  popts.seed = p.seed;
  LogPair pair = MakeLogPair(Testbed::kDsFB, popts);

  EventLog log = pair.log1;
  StreamingDependencyGraph stream(log);
  for (const auto& batch : RandomBatches(popts, p.seed * 31 + 7, 6)) {
    const AppendDelta delta = log.AppendTraces(batch);
    const StreamingGraphStats stats = stream.ApplyAppend(delta.first_new_trace);
    EXPECT_EQ(stats.appended_traces, batch.size());
    DependencyGraph rebuilt = DependencyGraph::Build(log);
    ASSERT_EQ(store::EncodeDependencyGraph(stream.graph()),
              store::EncodeDependencyGraph(rebuilt))
        << "maintained graph diverged from rebuild at " << log.NumTraces()
        << " traces";
  }
}

TEST_P(StreamingProperty, AcyclicWarmChainIsByteIdenticalToCold) {
  const StreamCase& p = GetParam();
  PairOptions popts;
  popts.num_activities = p.activities;
  popts.num_traces = p.base_traces;
  popts.seed = p.seed;
  // SEQ/XOR-only trees yield acyclic direct-follows graphs: every pair
  // has a finite horizon, and running to the horizon floor makes the
  // fixpoint seed-independent (Proposition 2) — so warm must equal cold
  // exactly, not just within epsilon.
  popts.tree.weight_loop = 0.0;
  popts.tree.weight_and = 0.0;
  LogPair pair = MakeLogPair(Testbed::kDsFB, popts);

  MatchOptions mopts;
  mopts.ems.run_to_horizon = true;
  mopts.ems.num_threads = p.num_threads;

  EventLog log = pair.log1;
  StreamingDependencyGraph stream(log);
  DependencyGraph graph2 = DependencyGraph::Build(pair.log2);

  WarmSeed seed;
  Result<MatchResult> first =
      MatchWithGraphsWarm(mopts, log, pair.log2, stream.graph(), graph2,
                          nullptr, false, &seed, nullptr);
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  for (const auto& batch : RandomBatches(popts, p.seed * 131 + 3, 4)) {
    const AppendDelta delta = log.AppendTraces(batch);
    (void)stream.ApplyAppend(delta.first_new_trace);

    Result<MatchResult> warm =
        MatchWithGraphsWarm(mopts, log, pair.log2, stream.graph(), graph2,
                            &seed, false, &seed, nullptr);
    ASSERT_TRUE(warm.ok()) << warm.status().ToString();

    DependencyGraph rebuilt = DependencyGraph::Build(log);
    Result<MatchResult> cold =
        MatchWithGraphsWarm(mopts, log, pair.log2, rebuilt, graph2, nullptr,
                            false, nullptr, nullptr);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();

    ASSERT_TRUE(BitIdentical(warm->similarity, cold->similarity))
        << "warm similarity diverged from cold at " << log.NumTraces()
        << " traces";
    ASSERT_EQ(warm->correspondences.size(), cold->correspondences.size());
    for (size_t i = 0; i < warm->correspondences.size(); ++i) {
      EXPECT_EQ(warm->correspondences[i].events1,
                cold->correspondences[i].events1);
      EXPECT_EQ(warm->correspondences[i].events2,
                cold->correspondences[i].events2);
      EXPECT_EQ(std::memcmp(&warm->correspondences[i].similarity,
                            &cold->correspondences[i].similarity,
                            sizeof(double)),
                0);
    }
  }

  // Restart resume: snapshot round-trip, then an assume_unchanged
  // re-match must hand the persisted fixpoints back in one iteration.
  // The horizon floor is a convergence aid for real re-matches and is
  // never set on the serve resume path, so it is off here too.
  Result<WarmSeed> decoded =
      store::DecodeWarmSeed(store::EncodeWarmSeed(seed));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  MatchOptions resume_opts = mopts;
  resume_opts.ems.run_to_horizon = false;
  WarmSeed next;
  WarmMatchStats resume_stats;
  Result<MatchResult> resumed = MatchWithGraphsWarm(
      resume_opts, log, pair.log2, stream.graph(), graph2, &*decoded,
      /*assume_unchanged=*/true, &next, &resume_stats);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resume_stats.iterations, 1);
  EXPECT_TRUE(resume_stats.warm);
  EXPECT_TRUE(BitIdentical(next.forward, seed.forward));
  EXPECT_TRUE(BitIdentical(next.backward, seed.backward));
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, StreamingProperty,
    ::testing::Values(StreamCase{201, 8, 30, 1},
                      StreamCase{202, 12, 50, 1},
                      StreamCase{203, 15, 40, 4},
                      StreamCase{204, 20, 60, 4},
                      StreamCase{205, 10, 25, 1},
                      StreamCase{206, 18, 45, 4}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.activities) + "_t" +
             std::to_string(info.param.num_threads);
    });

}  // namespace
}  // namespace ems
