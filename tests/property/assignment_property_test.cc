// Property suite for the Hungarian solver: optimality against brute
// force, feasibility (injective output), and invariance under weight
// scaling/translation of profitable pairs — swept over random instances.
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "assignment/hungarian.h"

namespace ems {
namespace {

class AssignmentProperty : public ::testing::TestWithParam<uint64_t> {};

std::vector<std::vector<double>> RandomMatrix(std::mt19937_64* rng,
                                              size_t max_dim,
                                              bool allow_negative) {
  size_t n = 1 + (*rng)() % max_dim;
  size_t m = 1 + (*rng)() % max_dim;
  std::vector<std::vector<double>> w(n, std::vector<double>(m));
  for (auto& row : w) {
    for (double& v : row) {
      v = static_cast<double>((*rng)() % 1000) / 100.0;
      if (allow_negative) v -= 5.0;
    }
  }
  return w;
}

double BruteForceBest(const std::vector<std::vector<double>>& w) {
  size_t n = w.size();
  size_t m = w[0].size();
  size_t k = std::max(n, m);
  std::vector<int> perm(k);
  for (size_t j = 0; j < k; ++j) perm[j] = static_cast<int>(j);
  double best = 0.0;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      size_t j = static_cast<size_t>(perm[i]);
      if (j >= m) continue;
      if (w[i][j] > 0) total += w[i][j];
    }
    best = std::max(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST_P(AssignmentProperty, OptimalOnRandomNonNegativeInstances) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    auto w = RandomMatrix(&rng, 5, /*allow_negative=*/false);
    std::vector<int> a = MaxWeightAssignment(w);
    EXPECT_NEAR(AssignmentWeight(w, a), BruteForceBest(w), 1e-9);
  }
}

TEST_P(AssignmentProperty, OptimalWithNegativeWeights) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 40; ++trial) {
    auto w = RandomMatrix(&rng, 5, /*allow_negative=*/true);
    std::vector<int> a = MaxWeightAssignment(w);
    EXPECT_NEAR(AssignmentWeight(w, a), BruteForceBest(w), 1e-9);
  }
}

TEST_P(AssignmentProperty, OutputAlwaysInjectiveAndInRange) {
  std::mt19937_64 rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 40; ++trial) {
    auto w = RandomMatrix(&rng, 8, true);
    std::vector<int> a = MaxWeightAssignment(w);
    ASSERT_EQ(a.size(), w.size());
    std::set<int> used;
    for (int x : a) {
      if (x < 0) continue;
      EXPECT_LT(static_cast<size_t>(x), w[0].size());
      EXPECT_TRUE(used.insert(x).second);
    }
  }
}

TEST_P(AssignmentProperty, ScalingWeightsPreservesOptimalPairs) {
  std::mt19937_64 rng(GetParam() * 13 + 1);
  for (int trial = 0; trial < 20; ++trial) {
    auto w = RandomMatrix(&rng, 4, false);
    auto scaled = w;
    for (auto& row : scaled) {
      for (double& v : row) v *= 3.5;
    }
    double base = AssignmentWeight(w, MaxWeightAssignment(w));
    double scaled_total =
        AssignmentWeight(scaled, MaxWeightAssignment(scaled));
    EXPECT_NEAR(scaled_total, base * 3.5, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentProperty,
                         ::testing::Values(401u, 402u, 403u));

}  // namespace
}  // namespace ems
