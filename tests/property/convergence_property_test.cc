// Property suite for Theorem 1 (monotone, bounded, convergent iteration)
// swept over random generated log pairs and parameter combinations via
// parameterized gtest.
#include <gtest/gtest.h>

#include "core/ems_similarity.h"
#include "synth/dataset.h"

namespace ems {
namespace {

struct ConvergenceCase {
  uint64_t seed;
  double alpha;
  double c;
  int activities;
};

class ConvergenceProperty
    : public ::testing::TestWithParam<ConvergenceCase> {};

LogPair MakePair(const ConvergenceCase& p) {
  PairOptions opts;
  opts.num_activities = p.activities;
  opts.num_traces = 50;
  opts.dislocation = 1;
  opts.seed = p.seed;
  return MakeLogPair(Testbed::kDsFB, opts);
}

TEST_P(ConvergenceProperty, MonotoneBoundedAndConvergent) {
  const ConvergenceCase& p = GetParam();
  LogPair pair = MakePair(p);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions opts;
  opts.alpha = p.alpha;
  opts.c = p.c;
  opts.direction = Direction::kForward;
  opts.prune_converged = false;

  SimilarityMatrix prev;
  double prev_delta = 2.0;
  for (int n = 1; n <= 8; ++n) {
    EmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix cur = sim.ComputePartial(Direction::kForward, n);
    double max_delta = 0.0;
    for (NodeId v1 = 0; v1 < static_cast<NodeId>(cur.rows()); ++v1) {
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(cur.cols()); ++v2) {
        double v = cur.at(v1, v2);
        ASSERT_GE(v, 0.0);
        ASSERT_LE(v, 1.0);
        if (n > 1) {
          double d = v - prev.at(v1, v2);
          ASSERT_GE(d, -1e-12) << "monotonicity violated at n=" << n;
          max_delta = std::max(max_delta, d);
          // Lemma 5 increment cap.
          ASSERT_LE(d, std::pow(p.alpha * p.c, n) + 1e-9);
        }
      }
    }
    if (n > 2) {
      // Deltas shrink geometrically (within slack for plateaus).
      ASSERT_LE(max_delta, prev_delta + 1e-12);
    }
    if (n > 1) prev_delta = max_delta;
    prev = cur;
  }
}

TEST_P(ConvergenceProperty, FixedPointSatisfiesDefinition) {
  // At convergence, one more iteration must not move any value.
  const ConvergenceCase& p = GetParam();
  LogPair pair = MakePair(p);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions opts;
  opts.alpha = p.alpha;
  opts.c = p.c;
  opts.direction = Direction::kForward;
  opts.epsilon = 1e-10;
  opts.max_iterations = 500;
  EmsSimilarity sim(g1, g2, opts);
  SimilarityMatrix fixed = sim.Compute();
  int iters = sim.stats().iterations;
  EmsSimilarity more(g1, g2, opts);
  SimilarityMatrix next = more.ComputePartial(Direction::kForward, iters + 3);
  EXPECT_LT(fixed.MaxAbsDifference(next), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvergenceProperty,
    ::testing::Values(ConvergenceCase{101, 1.0, 0.8, 8},
                      ConvergenceCase{102, 1.0, 0.5, 10},
                      ConvergenceCase{103, 0.7, 0.8, 12},
                      ConvergenceCase{104, 0.5, 0.9, 8},
                      ConvergenceCase{105, 1.0, 0.95, 15},
                      ConvergenceCase{106, 0.9, 0.3, 20},
                      ConvergenceCase{107, 1.0, 0.8, 25}),
    [](const ::testing::TestParamInfo<ConvergenceCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.activities);
    });

}  // namespace
}  // namespace ems
