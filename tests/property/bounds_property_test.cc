// Property suite for the similarity upper bounds (Lemma 5, Proposition 6,
// Corollary 7) over random log pairs and parameters: bounds must dominate
// the converged values at every intermediate iteration, and the
// horizon-aware bound must never be looser than the general one.
#include <gtest/gtest.h>

#include "core/bounds.h"
#include "synth/dataset.h"

namespace ems {
namespace {

struct BoundsCase {
  uint64_t seed;
  double alpha;
  double c;
};

class BoundsProperty : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(BoundsProperty, BoundsDominateConvergedValues) {
  const BoundsCase& p = GetParam();
  PairOptions opts;
  opts.num_activities = 10;
  opts.num_traces = 50;
  opts.dislocation = 1;
  opts.seed = p.seed;
  LogPair pair = MakeLogPair(Testbed::kDsB, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions eopts;
  eopts.alpha = p.alpha;
  eopts.c = p.c;
  eopts.direction = Direction::kForward;
  EmsSimilarity converged(g1, g2, eopts);
  SimilarityMatrix s_inf = converged.Compute();
  for (int k : {0, 1, 2, 4}) {
    EmsSimilarity partial(g1, g2, eopts);
    SimilarityMatrix s_k = partial.ComputePartial(Direction::kForward, k);
    for (NodeId v1 = 1; v1 < static_cast<NodeId>(s_k.rows()); ++v1) {
      for (NodeId v2 = 1; v2 < static_cast<NodeId>(s_k.cols()); ++v2) {
        int h = partial.ConvergenceHorizon(Direction::kForward, v1, v2);
        double general = SimilarityUpperBound(s_k.at(v1, v2), k, p.alpha, p.c);
        double paper = PaperUpperBound(s_k.at(v1, v2), k, p.alpha, p.c);
        double horizon = HorizonUpperBound(s_k.at(v1, v2), k, h, p.alpha, p.c);
        ASSERT_GE(general + 1e-9, s_inf.at(v1, v2));
        ASSERT_GE(paper + 1e-9, s_inf.at(v1, v2));
        ASSERT_GE(horizon + 1e-9, s_inf.at(v1, v2));
        ASSERT_LE(horizon, general + 1e-12);
        ASSERT_LE(general, paper + 1e-12);
      }
    }
  }
}

TEST_P(BoundsProperty, AverageBoundShrinksWithK) {
  const BoundsCase& p = GetParam();
  PairOptions opts;
  opts.num_activities = 10;
  opts.num_traces = 50;
  opts.seed = p.seed + 500;
  LogPair pair = MakeLogPair(Testbed::kDsF, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions eopts;
  eopts.alpha = p.alpha;
  eopts.c = p.c;
  eopts.direction = Direction::kForward;
  double prev_bound = 1e9;
  for (int k : {0, 2, 4, 8}) {
    EmsSimilarity partial(g1, g2, eopts);
    SimilarityMatrix s_k = partial.ComputePartial(Direction::kForward, k);
    double bound =
        AverageUpperBound(partial, Direction::kForward, s_k, k, g1, g2);
    EXPECT_LE(bound, prev_bound + 1e-9) << "k=" << k;
    prev_bound = bound;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundsProperty,
                         ::testing::Values(BoundsCase{301, 1.0, 0.8},
                                           BoundsCase{302, 0.8, 0.8},
                                           BoundsCase{303, 1.0, 0.5},
                                           BoundsCase{304, 0.6, 0.9},
                                           BoundsCase{305, 1.0, 0.95}));

}  // namespace
}  // namespace ems
