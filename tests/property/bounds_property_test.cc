// Property suite for the similarity upper bounds (Lemma 5, Proposition 6,
// Corollary 7) over random log pairs and parameters: bounds must dominate
// the converged values at every intermediate iteration, and the
// horizon-aware bound must never be looser than the general one.
#include <gtest/gtest.h>

#include "core/bounds.h"
#include "synth/dataset.h"
#include "text/label_similarity.h"

namespace ems {
namespace {

struct BoundsCase {
  uint64_t seed;
  double alpha;
  double c;
};

class BoundsProperty : public ::testing::TestWithParam<BoundsCase> {};

TEST_P(BoundsProperty, BoundsDominateConvergedValues) {
  const BoundsCase& p = GetParam();
  PairOptions opts;
  opts.num_activities = 10;
  opts.num_traces = 50;
  opts.dislocation = 1;
  opts.seed = p.seed;
  LogPair pair = MakeLogPair(Testbed::kDsB, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions eopts;
  eopts.alpha = p.alpha;
  eopts.c = p.c;
  eopts.direction = Direction::kForward;
  EmsSimilarity converged(g1, g2, eopts);
  SimilarityMatrix s_inf = converged.Compute();
  for (int k : {0, 1, 2, 4}) {
    EmsSimilarity partial(g1, g2, eopts);
    SimilarityMatrix s_k = partial.ComputePartial(Direction::kForward, k);
    for (NodeId v1 = 1; v1 < static_cast<NodeId>(s_k.rows()); ++v1) {
      for (NodeId v2 = 1; v2 < static_cast<NodeId>(s_k.cols()); ++v2) {
        int h = partial.ConvergenceHorizon(Direction::kForward, v1, v2);
        double general = SimilarityUpperBound(s_k.at(v1, v2), k, p.alpha, p.c);
        double paper = PaperUpperBound(s_k.at(v1, v2), k, p.alpha, p.c);
        double horizon = HorizonUpperBound(s_k.at(v1, v2), k, h, p.alpha, p.c);
        ASSERT_GE(general + 1e-9, s_inf.at(v1, v2));
        ASSERT_GE(paper + 1e-9, s_inf.at(v1, v2));
        ASSERT_GE(horizon + 1e-9, s_inf.at(v1, v2));
        ASSERT_LE(horizon, general + 1e-12);
        ASSERT_LE(general, paper + 1e-12);
      }
    }
  }
}

TEST_P(BoundsProperty, AverageBoundShrinksWithK) {
  const BoundsCase& p = GetParam();
  PairOptions opts;
  opts.num_activities = 10;
  opts.num_traces = 50;
  opts.seed = p.seed + 500;
  LogPair pair = MakeLogPair(Testbed::kDsF, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions eopts;
  eopts.alpha = p.alpha;
  eopts.c = p.c;
  eopts.direction = Direction::kForward;
  double prev_bound = 1e9;
  for (int k : {0, 2, 4, 8}) {
    EmsSimilarity partial(g1, g2, eopts);
    SimilarityMatrix s_k = partial.ComputePartial(Direction::kForward, k);
    double bound =
        AverageUpperBound(partial, Direction::kForward, s_k, k, g1, g2);
    EXPECT_LE(bound, prev_bound + 1e-9) << "k=" << k;
    prev_bound = bound;
  }
}

// The corpus scheduler's bound (docs/CORPUS.md): on labeled runs with
// alpha < 1, LabeledHorizonUpperBound must dominate the converged value
// at every intermediate iteration (HorizonUpperBound is NOT admissible
// there), must be monotone non-increasing along the iteration sequence,
// and must degenerate to HorizonUpperBound exactly at label_max = 0.
TEST_P(BoundsProperty, LabeledBoundDominatesLabeledRuns) {
  const BoundsCase& p = GetParam();
  PairOptions opts;
  opts.num_activities = 10;
  opts.num_traces = 50;
  opts.dislocation = 1;
  opts.seed = p.seed + 900;
  LogPair pair = MakeLogPair(Testbed::kDsFB, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  QGramCosineSimilarity measure;
  std::vector<std::vector<double>> labels =
      LabelSimilarityMatrix(g1, g2, measure);
  double label_max = 0.0;
  for (const auto& row : labels) {
    for (double v : row) label_max = std::max(label_max, v);
  }
  EmsOptions eopts;
  // Force the labeled regime even for the alpha = 1 sweep points.
  eopts.alpha = p.alpha < 1.0 ? p.alpha : 0.6;
  eopts.c = p.c;
  eopts.direction = Direction::kForward;
  EmsSimilarity converged(g1, g2, eopts, &labels);
  SimilarityMatrix s_inf = converged.Compute();
  std::vector<std::vector<double>> prev_bounds(
      s_inf.rows(), std::vector<double>(s_inf.cols(), 1e9));
  for (int k : {0, 1, 2, 4}) {
    EmsSimilarity partial(g1, g2, eopts, &labels);
    SimilarityMatrix s_k = partial.ComputePartial(Direction::kForward, k);
    for (NodeId v1 = 1; v1 < static_cast<NodeId>(s_k.rows()); ++v1) {
      for (NodeId v2 = 1; v2 < static_cast<NodeId>(s_k.cols()); ++v2) {
        const int h = partial.ConvergenceHorizon(Direction::kForward, v1, v2);
        const double labeled = LabeledHorizonUpperBound(
            s_k.at(v1, v2), k, h, eopts.alpha, eopts.c, label_max);
        ASSERT_GE(labeled + 1e-9, s_inf.at(v1, v2))
            << "k=" << k << " pair (" << v1 << "," << v2 << ")";
        // Monotone along the run: tighter with every completed iteration.
        auto& prev = prev_bounds[static_cast<size_t>(v1)]
                                [static_cast<size_t>(v2)];
        ASSERT_LE(labeled, prev + 1e-9) << "k=" << k;
        prev = labeled;
        // label_max = 0 must reproduce the structural horizon bound.
        ASSERT_DOUBLE_EQ(LabeledHorizonUpperBound(s_k.at(v1, v2), k, h,
                                                  eopts.alpha, eopts.c, 0.0),
                         HorizonUpperBound(s_k.at(v1, v2), k, h, eopts.alpha,
                                           eopts.c));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BoundsProperty,
                         ::testing::Values(BoundsCase{301, 1.0, 0.8},
                                           BoundsCase{302, 0.8, 0.8},
                                           BoundsCase{303, 1.0, 0.5},
                                           BoundsCase{304, 0.6, 0.9},
                                           BoundsCase{305, 1.0, 0.95}));

}  // namespace
}  // namespace ems
