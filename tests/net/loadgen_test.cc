// The open-loop loadgen core against a trivial in-process server: every
// scheduled request is sent, answered, matched back by id, and counted;
// the report's quantile math is checked on known samples.
#include "net/loadgen.h"

#include <string>

#include <gtest/gtest.h>

#include "net/tcp_server.h"
#include "util/json_parser.h"
#include "util/json_writer.h"

namespace ems {
namespace net {
namespace {

#ifndef _WIN32
// Answers every request with {"id":<id>,"status":"ok"}.
class OkHandler : public LineHandler {
 public:
  void HandleLine(const std::string& line, EmitFn emit) override {
    std::string id;
    if (Result<JsonValue> doc = ParseJson(line); doc.ok()) {
      id = doc->GetString("id", "");
    }
    JsonWriter w;
    w.BeginObject();
    w.Key("id");
    w.String(id);
    w.Key("status");
    w.String("ok");
    w.EndObject();
    emit(w.str());
  }
};

TEST(LoadGenTest, EveryScheduledRequestIsSentAnsweredAndMeasured) {
  OkHandler handler;
  TcpServerOptions server_options;
  TcpServer server(server_options, &handler);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions options;
  options.tcp = "127.0.0.1:" + std::to_string(server.port());
  options.connections = 2;
  options.target_qps = 500.0;
  options.duration_seconds = 10.0;  // max_requests governs
  options.max_requests = 100;
  Result<LoadGenReport> run = RunLoadGen(options);
  server.RequestDrain();
  server.Wait();

  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->sent, 100u);
  EXPECT_EQ(run->responses, 100u);
  EXPECT_EQ(run->send_errors, 0u);
  EXPECT_EQ(run->protocol_errors, 0u);
  EXPECT_EQ(run->StatusCount("ok"), 100u);
  EXPECT_EQ(run->latencies_ms.size(), 100u);
  EXPECT_GT(run->achieved_qps, 0.0);
  EXPECT_GT(run->elapsed_seconds, 0.0);
  // Sorted sample: quantiles are monotone.
  EXPECT_LE(run->LatencyQuantileMs(0.50), run->LatencyQuantileMs(0.99));
  EXPECT_LE(run->LatencyQuantileMs(0.99), run->latencies_ms.back());
}

TEST(LoadGenTest, CustomLineFactoryReceivesSequenceAndId) {
  OkHandler handler;
  TcpServerOptions server_options;
  TcpServer server(server_options, &handler);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions options;
  options.tcp = "127.0.0.1:" + std::to_string(server.port());
  options.connections = 1;
  options.target_qps = 1000.0;
  options.duration_seconds = 10.0;
  options.max_requests = 10;
  options.make_line = [](uint64_t seq, const std::string& id) {
    EXPECT_EQ(std::to_string(seq), id);
    return "{\"id\":\"" + id + "\",\"cmd\":\"probe\"}";
  };
  Result<LoadGenReport> run = RunLoadGen(options);
  server.RequestDrain();
  server.Wait();
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->sent, 10u);
  EXPECT_EQ(run->responses, 10u);
}

TEST(LoadGenTest, ConnectFailureSurfacesAsError) {
  LoadGenOptions options;
  options.tcp = "127.0.0.1:1";  // nothing listens on port 1
  options.duration_seconds = 0.1;
  EXPECT_FALSE(RunLoadGen(options).ok());
}
#endif  // _WIN32

TEST(LoadGenTest, RejectsInvalidOptions) {
  LoadGenOptions no_connections;
  no_connections.tcp = "127.0.0.1:1";
  no_connections.connections = 0;
  EXPECT_TRUE(RunLoadGen(no_connections).status().IsInvalidArgument());

  LoadGenOptions bad_qps;
  bad_qps.tcp = "127.0.0.1:1";
  bad_qps.target_qps = 0.0;
  EXPECT_TRUE(RunLoadGen(bad_qps).status().IsInvalidArgument());
}

TEST(LoadGenReportTest, NearestRankQuantilesAndMean) {
  LoadGenReport report;
  report.latencies_ms = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0,
                         10.0};
  EXPECT_DOUBLE_EQ(report.LatencyQuantileMs(0.50), 5.0);
  EXPECT_DOUBLE_EQ(report.LatencyQuantileMs(0.90), 9.0);
  EXPECT_DOUBLE_EQ(report.LatencyQuantileMs(0.99), 10.0);
  EXPECT_DOUBLE_EQ(report.LatencyQuantileMs(1.0), 10.0);
  EXPECT_DOUBLE_EQ(report.MeanLatencyMs(), 5.5);

  LoadGenReport empty;
  EXPECT_DOUBLE_EQ(empty.LatencyQuantileMs(0.5), 0.0);
  EXPECT_DOUBLE_EQ(empty.MeanLatencyMs(), 0.0);
}

TEST(LoadGenReportTest, StatusCountLookup) {
  LoadGenReport report;
  report.status_counts["ok"] = 7;
  EXPECT_EQ(report.StatusCount("ok"), 7u);
  EXPECT_EQ(report.StatusCount("overloaded"), 0u);
}

}  // namespace
}  // namespace net
}  // namespace ems
