// Transport behavior of the TCP front end: framing round trips,
// concurrent connections, the connection cap, and the drain contract
// (every accepted line answered, even when emits come late from worker
// threads).
#ifndef _WIN32

#include "net/tcp_server.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/wire.h"
#include "obs/context.h"

namespace ems {
namespace net {
namespace {

// Answers every line with "echo:<line>" inline.
class EchoHandler : public LineHandler {
 public:
  void HandleLine(const std::string& line, EmitFn emit) override {
    emit("echo:" + line);
  }
};

// Answers from a worker thread after a delay — the shape of a real
// match job, and the case the drain logic has to wait out.
class SlowHandler : public LineHandler {
 public:
  ~SlowHandler() override {
    for (std::thread& t : threads_) t.join();
  }

  void HandleLine(const std::string& line, EmitFn emit) override {
    std::lock_guard<std::mutex> lock(mu_);
    threads_.emplace_back([line, emit] {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      emit("late:" + line);
    });
  }

 private:
  std::mutex mu_;
  std::vector<std::thread> threads_;
};

TEST(TcpServerTest, BindsEphemeralPortAndEchoesLines) {
  EchoHandler handler;
  TcpServerOptions options;
  TcpServer server(options, &handler);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Result<int> fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteAll(*fd, "one\ntwo\n").ok());
  ::shutdown(*fd, SHUT_WR);

  FdLineReader reader(*fd);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "echo:one");
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "echo:two");
  EXPECT_FALSE(reader.ReadLine(&line));  // server closes after EOF+drain
  ::close(*fd);

  server.RequestDrain();
  EXPECT_EQ(server.Wait(), 1u);
}

TEST(TcpServerTest, ServesConcurrentConnections) {
  EchoHandler handler;
  TcpServerOptions options;
  TcpServer server(options, &handler);
  ASSERT_TRUE(server.Start().ok());

  const int kClients = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &ok, i] {
      Result<int> fd = ConnectTcp("127.0.0.1", server.port());
      if (!fd.ok()) return;
      const std::string msg = "client-" + std::to_string(i);
      if (WriteAll(*fd, msg + "\n").ok()) {
        ::shutdown(*fd, SHUT_WR);
        FdLineReader reader(*fd);
        std::string line;
        if (reader.ReadLine(&line) && line == "echo:" + msg) ok++;
      }
      ::close(*fd);
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok.load(), kClients);

  server.RequestDrain();
  EXPECT_EQ(server.Wait(), static_cast<uint64_t>(kClients));
}

TEST(TcpServerTest, ConnectionCapSheds) {
  SlowHandler handler;  // keeps the first connection occupied
  TcpServerOptions options;
  options.max_connections = 1;
  ObsContext obs;
  options.obs = &obs;
  TcpServer server(options, &handler);
  ASSERT_TRUE(server.Start().ok());

  Result<int> first = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(WriteAll(*first, "held\n").ok());

  // The second connection must get one overloaded line and a close.
  Result<int> second = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(second.ok());
  FdLineReader reader(*second);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_NE(line.find("\"status\":\"overloaded\""), std::string::npos)
      << line;
  EXPECT_FALSE(reader.ReadLine(&line));
  ::close(*second);

  ::shutdown(*first, SHUT_WR);
  FdLineReader first_reader(*first);
  ASSERT_TRUE(first_reader.ReadLine(&line));
  EXPECT_EQ(line, "late:held");
  ::close(*first);

  server.RequestDrain();
  server.Wait();
  EXPECT_EQ(obs.metrics.CounterValue("net.connections_rejected"), 1u);
}

// The drain contract: lines already received keep their responses even
// when the emits arrive late, and Wait() only returns once they did.
TEST(TcpServerTest, DrainAnswersEveryAcceptedLine) {
  SlowHandler handler;
  TcpServerOptions options;
  TcpServer server(options, &handler);
  ASSERT_TRUE(server.Start().ok());

  Result<int> fd = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteAll(*fd, "a\nb\n").ok());
  // Give the reader thread a moment to pick both lines up, then drain
  // mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.RequestDrain();
  EXPECT_TRUE(server.draining());

  FdLineReader reader(*fd);
  std::string line;
  int answered = 0;
  while (reader.ReadLine(&line)) {
    EXPECT_EQ(line.rfind("late:", 0), 0u) << line;
    ++answered;
  }
  ::close(*fd);
  EXPECT_EQ(answered, 2);
  EXPECT_EQ(server.Wait(), 1u);
}

TEST(TcpServerTest, RequestDrainIsIdempotentAndWaitReturns) {
  EchoHandler handler;
  TcpServerOptions options;
  TcpServer server(options, &handler);
  ASSERT_TRUE(server.Start().ok());
  server.RequestDrain();
  server.RequestDrain();
  EXPECT_EQ(server.Wait(), 0u);
}

TEST(TcpServerTest, StartFailsOnUnavailableAddress) {
  EchoHandler handler;
  TcpServerOptions options;
  options.host = "203.0.113.1";  // TEST-NET; not a local interface
  options.port = 1;
  TcpServer server(options, &handler);
  EXPECT_FALSE(server.Start().ok());
}

}  // namespace
}  // namespace net
}  // namespace ems

#endif  // _WIN32
