// The three properties the sharded router stakes on the ring: balanced
// key distribution, minimal remapping under growth, and placement that
// is a pure function of the configuration (stable across processes).
#include "net/hash_ring.h"

#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace ems {
namespace net {
namespace {

std::vector<std::string> Keys(int count) {
  std::vector<std::string> keys;
  keys.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    keys.push_back("/data/logs/warehouse-" + std::to_string(i) + ".xes");
  }
  return keys;
}

TEST(HashRingTest, SingleShardOwnsEverything) {
  HashRing ring(1);
  for (const std::string& key : Keys(100)) {
    EXPECT_EQ(ring.ShardFor(key), 0);
  }
}

TEST(HashRingTest, ShardsAreInRangeAndAllUsed) {
  const int shards = 8;
  HashRing ring(shards);
  std::map<int, int> counts;
  for (const std::string& key : Keys(4000)) {
    const int shard = ring.ShardFor(key);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, shards);
    counts[shard]++;
  }
  EXPECT_EQ(counts.size(), static_cast<size_t>(shards));
}

// Balance: with 128 vnodes per shard, every shard's share of a large
// key population stays within a generous band of the uniform share. A
// chi-square-style relative bound, loose enough to be hash-stable and
// tight enough to catch a broken ring (one shard owning half the keys).
TEST(HashRingTest, DistributionIsBalanced) {
  const int shards = 8;
  const int num_keys = 20000;
  HashRing ring(HashRingOptions{shards, 128});
  std::vector<int> counts(shards, 0);
  for (const std::string& key : Keys(num_keys)) {
    counts[static_cast<size_t>(ring.ShardFor(key))]++;
  }
  const double mean = static_cast<double>(num_keys) / shards;
  double chi_square = 0.0;
  for (int count : counts) {
    EXPECT_GT(count, mean * 0.5) << "a shard is starved";
    EXPECT_LT(count, mean * 1.5) << "a shard is overloaded";
    const double dev = static_cast<double>(count) - mean;
    chi_square += dev * dev / mean;
  }
  // df = 7; a fair hash lands far below this (p ~ 1e-6 cutoff would be
  // ~33); vnode imbalance inflates it somewhat, hence the headroom.
  EXPECT_LT(chi_square, mean);
}

// Growth N -> N+1 must only move keys TO the new shard, and not many:
// the new shard steals ~1/(N+1) of the ring, so the moved fraction must
// stay under 2/(N+1).
TEST(HashRingTest, GrowingRemapsOnlyASliverAndOnlyToTheNewShard) {
  const int shards = 8;
  const int num_keys = 20000;
  HashRing before(shards);
  HashRing after(shards + 1);
  int moved = 0;
  for (const std::string& key : Keys(num_keys)) {
    const int from = before.ShardFor(key);
    const int to = after.ShardFor(key);
    if (from != to) {
      ++moved;
      EXPECT_EQ(to, shards) << "key moved between surviving shards";
    }
  }
  EXPECT_GT(moved, 0) << "the new shard owns nothing";
  const double fraction = static_cast<double>(moved) / num_keys;
  EXPECT_LT(fraction, 2.0 / (shards + 1));
}

// Shrinking is the mirror image: keys either stay or leave the removed
// shard; no key moves between surviving shards.
TEST(HashRingTest, ShrinkingOnlyReassignsTheRemovedShardsKeys) {
  const int shards = 6;
  HashRing before(shards);
  HashRing after(shards - 1);
  for (const std::string& key : Keys(5000)) {
    const int from = before.ShardFor(key);
    const int to = after.ShardFor(key);
    if (from != shards - 1) {
      EXPECT_EQ(from, to) << "surviving shard lost key " << key;
    }
  }
}

// Placement is a pure function of (num_shards, vnodes): two rings built
// from the same options agree on every key — the in-process half of
// restart determinism.
TEST(HashRingTest, IdenticallyConfiguredRingsAgree) {
  HashRing a(HashRingOptions{5, 64});
  HashRing b(HashRingOptions{5, 64});
  for (const std::string& key : Keys(2000)) {
    EXPECT_EQ(a.ShardFor(key), b.ShardFor(key));
  }
}

// Golden placements: these exact assignments were produced by this
// implementation and must never drift — a restarted process (or a
// rebuilt binary) must route every key to the same shard, or every
// shard-local disk cache goes cold. An intentional hash change must
// update these goldens and docs/SERVING.md.
TEST(HashRingTest, PlacementIsStableAcrossProcessRestarts) {
  HashRing ring(HashRingOptions{4, 64});
  const std::pair<const char*, int> golden[] = {
      {"/data/logs/warehouse-0.xes", 0},
      {"/data/logs/warehouse-1.xes", 2},
      {"a.xes", 0},
      {"b.xes", 1},
      {"/tmp/x/y/z.mxml", 2},
  };
  for (const auto& [key, shard] : golden) {
    EXPECT_EQ(ring.ShardFor(key), shard) << key;
  }
}

TEST(HashRingTest, PointCountAndClamping) {
  HashRing ring(HashRingOptions{3, 16});
  EXPECT_EQ(ring.num_points(), 48u);
  EXPECT_EQ(ring.num_shards(), 3);
  HashRing clamped(HashRingOptions{0, 8});
  EXPECT_EQ(clamped.num_shards(), 1);
  EXPECT_EQ(clamped.ShardFor("anything"), 0);
}

}  // namespace
}  // namespace net
}  // namespace ems
