// Byte-level plumbing: endpoint parsing, line framing from a raw
// descriptor, and full writes.
#include "net/wire.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ems {
namespace net {
namespace {

TEST(ParseHostPortTest, FullAndDefaultedForms) {
  Result<HostPort> full = ParseHostPort("10.1.2.3:7463");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->host, "10.1.2.3");
  EXPECT_EQ(full->port, 7463);

  Result<HostPort> colon = ParseHostPort(":80");
  ASSERT_TRUE(colon.ok());
  EXPECT_EQ(colon->host, "127.0.0.1");
  EXPECT_EQ(colon->port, 80);

  Result<HostPort> bare = ParseHostPort("9000");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->host, "127.0.0.1");
  EXPECT_EQ(bare->port, 9000);

  Result<HostPort> ephemeral = ParseHostPort("127.0.0.1:0");
  ASSERT_TRUE(ephemeral.ok());
  EXPECT_EQ(ephemeral->port, 0);
}

TEST(ParseHostPortTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseHostPort("").ok());
  EXPECT_FALSE(ParseHostPort("host:").ok());
  EXPECT_FALSE(ParseHostPort("host:abc").ok());
  EXPECT_FALSE(ParseHostPort("host:12x").ok());
  EXPECT_FALSE(ParseHostPort("host:70000").ok());
  EXPECT_FALSE(ParseHostPort("host:-1").ok());
}

#ifndef _WIN32
TEST(FdLineReaderTest, SplitsLinesAndStripsCrlf) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = "alpha\nbeta\r\n\ngamma";  // no final \n
  ASSERT_TRUE(WriteAll(fds[1], payload).ok());
  ::close(fds[1]);

  FdLineReader reader(fds[0]);
  std::vector<std::string> lines;
  std::string line;
  while (reader.ReadLine(&line)) lines.push_back(line);
  ::close(fds[0]);

  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], "alpha");
  EXPECT_EQ(lines[1], "beta");
  EXPECT_EQ(lines[2], "");
  EXPECT_EQ(lines[3], "gamma");  // final unterminated line surfaces
  EXPECT_FALSE(reader.error());
}

TEST(FdLineReaderTest, HandlesLinesLargerThanTheReadChunk) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // Pipes buffer ~64 KiB; write from a helper-free second step: a line
  // just under the pipe capacity still exceeds the reader's chunk size.
  const std::string big(48 * 1024, 'x');
  ASSERT_TRUE(WriteAll(fds[1], big + "\ntail\n").ok());
  ::close(fds[1]);

  FdLineReader reader(fds[0]);
  std::string line;
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line.size(), big.size());
  EXPECT_EQ(line, big);
  ASSERT_TRUE(reader.ReadLine(&line));
  EXPECT_EQ(line, "tail");
  EXPECT_FALSE(reader.ReadLine(&line));
  ::close(fds[0]);
}

TEST(WriteAllTest, RoundTripsThroughAPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(WriteAll(fds[1], "hello world\n").ok());
  ::close(fds[1]);
  char buffer[64] = {};
  const ssize_t n = ::read(fds[0], buffer, sizeof(buffer));
  ::close(fds[0]);
  EXPECT_EQ(std::string(buffer, static_cast<size_t>(n)), "hello world\n");
}

TEST(WriteAllTest, FailsOnClosedDescriptor) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_FALSE(WriteAll(fds[1], "x").ok());
}
#endif

TEST(ConnectEndpointTest, RequiresExactlyOneEndpoint) {
  EXPECT_TRUE(ConnectEndpoint("", "").status().IsInvalidArgument());
  EXPECT_TRUE(ConnectEndpoint("127.0.0.1:1", "/tmp/sock")
                  .status()
                  .IsInvalidArgument());
}

TEST(ConnectEndpointTest, RefusedConnectionSurfacesAsError) {
  // Port 1 on loopback is essentially never listening in the test
  // environment; either refusal or permission failure is an error.
  EXPECT_FALSE(ConnectEndpoint("127.0.0.1:1", "").ok());
  EXPECT_FALSE(ConnectEndpoint("", "/no/such/socket/path").ok());
}

}  // namespace
}  // namespace net
}  // namespace ems
