#include "log/log_stats.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

EventLog MakeLog() {
  EventLog log;
  // 4 traces: a b c / a b c / a c / b b
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "c"});
  log.AddTrace({"b", "b"});
  return log;
}

TEST(LogStatsTest, EventFrequencyIsFractionOfTraces) {
  EventLog log = MakeLog();
  LogStats stats(log);
  EventId a = log.FindEvent("a");
  EventId b = log.FindEvent("b");
  EventId c = log.FindEvent("c");
  EXPECT_DOUBLE_EQ(stats.EventFrequency(a), 0.75);
  EXPECT_DOUBLE_EQ(stats.EventFrequency(b), 0.75);
  EXPECT_DOUBLE_EQ(stats.EventFrequency(c), 0.75);
}

TEST(LogStatsTest, RepeatedEventCountsOncePerTrace) {
  EventLog log = MakeLog();
  LogStats stats(log);
  EventId b = log.FindEvent("b");
  // "b b" contributes one trace despite two occurrences.
  EXPECT_EQ(stats.EventTraceCount(b), 3u);
  EXPECT_EQ(stats.EventOccurrences(b), 4u);
}

TEST(LogStatsTest, FollowsFrequencyIsFractionOfTraces) {
  EventLog log = MakeLog();
  LogStats stats(log);
  EventId a = log.FindEvent("a");
  EventId b = log.FindEvent("b");
  EventId c = log.FindEvent("c");
  EXPECT_DOUBLE_EQ(stats.FollowsFrequency(a, b), 0.5);   // 2 of 4 traces
  EXPECT_DOUBLE_EQ(stats.FollowsFrequency(b, c), 0.5);
  EXPECT_DOUBLE_EQ(stats.FollowsFrequency(a, c), 0.25);  // only "a c"
  EXPECT_DOUBLE_EQ(stats.FollowsFrequency(c, a), 0.0);
}

TEST(LogStatsTest, SelfFollowsCounted) {
  EventLog log = MakeLog();
  LogStats stats(log);
  EventId b = log.FindEvent("b");
  EXPECT_EQ(stats.FollowsTraceCount(b, b), 1u);
  EXPECT_EQ(stats.FollowsOccurrences(b, b), 1u);
}

TEST(LogStatsTest, ConditionalFollows) {
  EventLog log = MakeLog();
  LogStats stats(log);
  EventId a = log.FindEvent("a");
  EventId b = log.FindEvent("b");
  // a occurs 3 times, followed by b twice.
  EXPECT_DOUBLE_EQ(stats.ConditionalFollows(a, b), 2.0 / 3.0);
}

TEST(LogStatsTest, EmptyLog) {
  EventLog log;
  LogStats stats(log);
  EXPECT_EQ(stats.num_traces(), 0u);
  EXPECT_EQ(stats.num_events(), 0u);
}

TEST(LogStatsTest, BigramCountedOncePerTraceInFrequency) {
  EventLog log;
  log.AddTrace({"x", "y", "x", "y"});  // bigram xy occurs twice in 1 trace
  LogStats stats(log);
  EventId x = log.FindEvent("x");
  EventId y = log.FindEvent("y");
  EXPECT_DOUBLE_EQ(stats.FollowsFrequency(x, y), 1.0);
  EXPECT_EQ(stats.FollowsOccurrences(x, y), 2u);
}

}  // namespace
}  // namespace ems
