#include "log/mxml.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(MxmlTest, ParsesMinimalDocument) {
  std::istringstream in(
      "<WorkflowLog>\n"
      " <Process id=\"p\">\n"
      "  <ProcessInstance id=\"c1\">\n"
      "   <AuditTrailEntry>\n"
      "    <WorkflowModelElement>pay</WorkflowModelElement>\n"
      "    <EventType>complete</EventType>\n"
      "   </AuditTrailEntry>\n"
      "   <AuditTrailEntry>\n"
      "    <WorkflowModelElement>ship</WorkflowModelElement>\n"
      "    <EventType>complete</EventType>\n"
      "   </AuditTrailEntry>\n"
      "  </ProcessInstance>\n"
      " </Process>\n"
      "</WorkflowLog>\n");
  Result<EventLog> parsed = ReadMxml(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->NumTraces(), 1u);
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[0]), "pay");
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[1]), "ship");
}

TEST(MxmlTest, SkipsStartEvents) {
  std::istringstream in(
      "<WorkflowLog><Process><ProcessInstance>"
      "<AuditTrailEntry>"
      "<WorkflowModelElement>pay</WorkflowModelElement>"
      "<EventType>start</EventType>"
      "</AuditTrailEntry>"
      "<AuditTrailEntry>"
      "<WorkflowModelElement>pay</WorkflowModelElement>"
      "<EventType>complete</EventType>"
      "</AuditTrailEntry>"
      "</ProcessInstance></Process></WorkflowLog>");
  Result<EventLog> parsed = ReadMxml(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->NumTraces(), 1u);
  EXPECT_EQ(parsed->trace(0).size(), 1u);  // start/complete pair -> one event
}

TEST(MxmlTest, EntryWithoutEventTypeIsKept) {
  std::istringstream in(
      "<WorkflowLog><Process><ProcessInstance>"
      "<AuditTrailEntry>"
      "<WorkflowModelElement>check</WorkflowModelElement>"
      "</AuditTrailEntry>"
      "</ProcessInstance></Process></WorkflowLog>");
  Result<EventLog> parsed = ReadMxml(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace(0).size(), 1u);
}

TEST(MxmlTest, MissingWorkflowLogIsParseError) {
  std::istringstream in("<Process></Process>");
  EXPECT_TRUE(ReadMxml(in).status().IsParseError());
}

TEST(MxmlTest, EntryWithoutElementIsParseError) {
  std::istringstream in(
      "<WorkflowLog><Process><ProcessInstance>"
      "<AuditTrailEntry><EventType>complete</EventType></AuditTrailEntry>"
      "</ProcessInstance></Process></WorkflowLog>");
  EXPECT_TRUE(ReadMxml(in).status().IsParseError());
}

TEST(MxmlTest, TextEntitiesUnescaped) {
  std::istringstream in(
      "<WorkflowLog><Process><ProcessInstance>"
      "<AuditTrailEntry>"
      "<WorkflowModelElement>ship &amp; bill</WorkflowModelElement>"
      "</AuditTrailEntry>"
      "</ProcessInstance></Process></WorkflowLog>");
  Result<EventLog> parsed = ReadMxml(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->EventName(0), "ship & bill");
}

TEST(MxmlTest, RoundTrip) {
  EventLog log;
  log.AddTrace({"Check Inventory", "Ship & Bill"});
  log.AddTrace({"Check Inventory"});
  std::ostringstream out;
  ASSERT_TRUE(WriteMxml(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadMxml(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->NumTraces(), 2u);
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[1]), "Ship & Bill");
}

TEST(MxmlTest, FileRoundTripAndMissingFile) {
  EventLog log;
  log.AddTrace({"a"});
  std::string path = ::testing::TempDir() + "/ems_mxml_test.mxml";
  ASSERT_TRUE(WriteMxmlFile(log, path).ok());
  Result<EventLog> parsed = ReadMxmlFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumTraces(), 1u);
  EXPECT_TRUE(ReadMxmlFile("/no/such.mxml").status().IsIOError());
}

TEST(MxmlTest, EmptyProcessInstance) {
  std::istringstream in(
      "<WorkflowLog><Process><ProcessInstance/></Process></WorkflowLog>");
  Result<EventLog> parsed = ReadMxml(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->NumTraces(), 1u);
  EXPECT_TRUE(parsed->trace(0).empty());
}

}  // namespace
}  // namespace ems
