#include "log/event_log.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(EventLogTest, InterningAssignsDenseIds) {
  EventLog log;
  EXPECT_EQ(log.AddEvent("a"), 0);
  EXPECT_EQ(log.AddEvent("b"), 1);
  EXPECT_EQ(log.AddEvent("a"), 0);  // idempotent
  EXPECT_EQ(log.NumEvents(), 2u);
  EXPECT_EQ(log.EventName(0), "a");
  EXPECT_EQ(log.EventName(1), "b");
}

TEST(EventLogTest, FindEvent) {
  EventLog log;
  log.AddEvent("x");
  EXPECT_EQ(log.FindEvent("x"), 0);
  EXPECT_EQ(log.FindEvent("missing"), kInvalidEvent);
}

TEST(EventLogTest, AppendTracesExtendsInPlace) {
  EventLog log;
  log.AddTrace({"a", "b"});
  log.AddTrace({"b", "c"});

  AppendDelta delta = log.AppendTraces({{"c", "a"}, {"a", "d"}});
  EXPECT_EQ(delta.first_new_trace, 2u);
  EXPECT_EQ(delta.first_new_event, 3u);
  EXPECT_EQ(delta.appended_traces, 2u);
  EXPECT_EQ(delta.new_events, 1u);  // only "d" is new

  // Strict extension: old ids, names, and traces are untouched; new
  // vocabulary interns at the end.
  EXPECT_EQ(log.NumTraces(), 4u);
  EXPECT_EQ(log.trace(0), (Trace{0, 1}));
  EXPECT_EQ(log.trace(2), (Trace{2, 0}));
  EXPECT_EQ(log.trace(3), (Trace{0, 3}));
  EXPECT_EQ(log.FindEvent("d"), 3);

  AppendDelta empty = log.AppendTraces({});
  EXPECT_EQ(empty.appended_traces, 0u);
  EXPECT_EQ(empty.new_events, 0u);
  EXPECT_EQ(log.NumTraces(), 4u);
}

TEST(EventLogTest, AddTraceInternsNames) {
  EventLog log;
  log.AddTrace({"a", "b", "a"});
  ASSERT_EQ(log.NumTraces(), 1u);
  EXPECT_EQ(log.trace(0), (Trace{0, 1, 0}));
  EXPECT_EQ(log.NumEvents(), 2u);
}

TEST(EventLogTest, MultisetSemantics) {
  EventLog log;
  log.AddTrace({"a", "b"});
  log.AddTrace({"a", "b"});  // duplicate trace kept
  EXPECT_EQ(log.NumTraces(), 2u);
  EXPECT_EQ(log.TotalOccurrences(), 4u);
}

TEST(EventLogTest, AddTraceIds) {
  EventLog log;
  log.AddEvent("a");
  log.AddEvent("b");
  log.AddTraceIds({1, 0});
  EXPECT_EQ(log.trace(0), (Trace{1, 0}));
}

TEST(EventLogTest, EmptyTraceAllowed) {
  EventLog log;
  log.AddTrace({});
  EXPECT_EQ(log.NumTraces(), 1u);
  EXPECT_TRUE(log.trace(0).empty());
}

TEST(EventLogTest, RenameEvent) {
  EventLog log;
  log.AddTrace({"a", "b"});
  ASSERT_TRUE(log.RenameEvent(0, "alpha").ok());
  EXPECT_EQ(log.EventName(0), "alpha");
  EXPECT_EQ(log.FindEvent("alpha"), 0);
  EXPECT_EQ(log.FindEvent("a"), kInvalidEvent);
}

TEST(EventLogTest, RenameEventToSameNameIsOk) {
  EventLog log;
  log.AddTrace({"a"});
  EXPECT_TRUE(log.RenameEvent(0, "a").ok());
}

TEST(EventLogTest, RenameEventRejectsCollision) {
  EventLog log;
  log.AddTrace({"a", "b"});
  EXPECT_TRUE(log.RenameEvent(0, "b").IsInvalidArgument());
}

TEST(EventLogTest, RenameEventRejectsBadId) {
  EventLog log;
  EXPECT_TRUE(log.RenameEvent(0, "x").IsOutOfRange());
  EXPECT_TRUE(log.RenameEvent(-1, "x").IsOutOfRange());
}

TEST(EventLogTest, TransformTracesReInternsVocabulary) {
  EventLog log;
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"b", "c"});
  // Drop event "a" (id 0) from all traces.
  std::vector<Trace> transformed;
  for (const Trace& t : log.traces()) {
    Trace copy;
    for (EventId e : t) {
      if (e != 0) copy.push_back(e);
    }
    transformed.push_back(copy);
  }
  std::vector<EventId> id_map;
  EventLog out = log.TransformTraces(transformed, &id_map);
  EXPECT_EQ(out.NumEvents(), 2u);
  EXPECT_EQ(out.FindEvent("a"), kInvalidEvent);
  EXPECT_NE(out.FindEvent("b"), kInvalidEvent);
  EXPECT_EQ(id_map[0], kInvalidEvent);  // "a" dropped
  EXPECT_NE(id_map[1], kInvalidEvent);
  EXPECT_EQ(out.EventName(id_map[1]), "b");
}

TEST(EventLogTest, TransformTracesPreservesOrder) {
  EventLog log;
  log.AddTrace({"x", "y"});
  EventLog out = log.TransformTraces(log.traces(), nullptr);
  EXPECT_EQ(out.NumTraces(), 1u);
  EXPECT_EQ(out.EventName(out.trace(0)[0]), "x");
  EXPECT_EQ(out.EventName(out.trace(0)[1]), "y");
}

}  // namespace
}  // namespace ems
