#include "log/log_filter.h"

#include <gtest/gtest.h>

namespace ems {
namespace {

EventLog MakeLog() {
  EventLog log;
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"a", "c"});
  log.AddTrace({"a", "b", "c", "d", "e"});
  return log;
}

TEST(FilterByTraceLengthTest, KeepsWindow) {
  EventLog out = FilterByTraceLength(MakeLog(), 3, 3);
  EXPECT_EQ(out.NumTraces(), 2u);
  for (const Trace& t : out.traces()) EXPECT_EQ(t.size(), 3u);
}

TEST(FilterByTraceLengthTest, EmptyWindowDropsAll) {
  EventLog out = FilterByTraceLength(MakeLog(), 10, 20);
  EXPECT_EQ(out.NumTraces(), 0u);
}

TEST(TraceVariantsTest, CountsAndOrder) {
  std::vector<TraceVariant> variants = TraceVariants(MakeLog());
  ASSERT_EQ(variants.size(), 3u);
  EXPECT_EQ(variants[0].count, 2u);  // "a b c" twice
  EXPECT_EQ(variants[0].activities,
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(variants[1].count, 1u);
  EXPECT_EQ(variants[2].count, 1u);
}

TEST(TraceVariantsTest, DeterministicTieBreak) {
  EventLog log;
  log.AddTrace({"b"});
  log.AddTrace({"a"});
  std::vector<TraceVariant> variants = TraceVariants(log);
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_EQ(variants[0].activities, (std::vector<std::string>{"a"}));
}

TEST(KeepTopVariantsTest, KeepsDominantBehavior) {
  EventLog out = KeepTopVariants(MakeLog(), 1);
  EXPECT_EQ(out.NumTraces(), 2u);  // the two "a b c" traces
  EXPECT_EQ(out.NumEvents(), 3u);
}

TEST(KeepTopVariantsTest, LargeKKeepsEverything) {
  EventLog out = KeepTopVariants(MakeLog(), 100);
  EXPECT_EQ(out.NumTraces(), 4u);
}

TEST(ProjectOntoEventsTest, RemovesOtherEvents) {
  EventLog out = ProjectOntoEvents(MakeLog(), {"a", "c"});
  EXPECT_EQ(out.NumEvents(), 2u);
  for (const Trace& t : out.traces()) {
    for (EventId e : t) {
      std::string name = out.EventName(e);
      EXPECT_TRUE(name == "a" || name == "c");
    }
  }
  EXPECT_EQ(out.NumTraces(), 4u);  // traces kept, just shorter
}

TEST(ProjectOntoEventsTest, UnknownNamesIgnored) {
  EventLog out = ProjectOntoEvents(MakeLog(), {"a", "zzz"});
  EXPECT_EQ(out.NumEvents(), 1u);
}

TEST(FilterRareEventsTest, DropsBelowThreshold) {
  // d and e occur in 1 of 4 traces (0.25); a in all.
  EventLog out = FilterRareEvents(MakeLog(), 0.5);
  EXPECT_EQ(out.FindEvent("d"), kInvalidEvent);
  EXPECT_EQ(out.FindEvent("e"), kInvalidEvent);
  EXPECT_NE(out.FindEvent("a"), kInvalidEvent);
  EXPECT_NE(out.FindEvent("b"), kInvalidEvent);  // 3/4 = 0.75
}

TEST(SummarizeTest, Counters) {
  LogSummary s = Summarize(MakeLog());
  EXPECT_EQ(s.num_traces, 4u);
  EXPECT_EQ(s.num_events, 5u);
  EXPECT_EQ(s.total_occurrences, 13u);
  EXPECT_EQ(s.num_variants, 3u);
  EXPECT_EQ(s.min_trace_length, 2u);
  EXPECT_EQ(s.max_trace_length, 5u);
  EXPECT_DOUBLE_EQ(s.mean_trace_length, 13.0 / 4.0);
}

TEST(SummarizeTest, EmptyLog) {
  EventLog log;
  LogSummary s = Summarize(log);
  EXPECT_EQ(s.num_traces, 0u);
  EXPECT_EQ(s.num_variants, 0u);
  EXPECT_DOUBLE_EQ(s.mean_trace_length, 0.0);
}

}  // namespace
}  // namespace ems
