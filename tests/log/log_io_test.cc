#include "log/log_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(TraceFormatTest, RoundTrip) {
  EventLog log;
  log.AddTrace({"a", "b", "c"});
  log.AddTrace({"b", "c"});
  std::ostringstream out;
  ASSERT_TRUE(WriteTraceFormat(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadTraceFormat(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumTraces(), 2u);
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[0]), "a");
  EXPECT_EQ(parsed->trace(1).size(), 2u);
}

TEST(TraceFormatTest, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\na;b\n  \nb;c\n");
  Result<EventLog> parsed = ReadTraceFormat(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumTraces(), 2u);
}

TEST(TraceFormatTest, TrimsWhitespaceAroundNames) {
  std::istringstream in(" a ; b \n");
  Result<EventLog> parsed = ReadTraceFormat(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[0]), "a");
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[1]), "b");
}

TEST(TraceFormatTest, RejectsEmptyEventName) {
  std::istringstream in("a;;b\n");
  Result<EventLog> parsed = ReadTraceFormat(in);
  EXPECT_TRUE(parsed.status().IsParseError());
}

TEST(TraceFormatTest, CustomDelimiter) {
  std::istringstream in("a|b|c\n");
  Result<EventLog> parsed = ReadTraceFormat(in, '|');
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->trace(0).size(), 3u);
}

TEST(TraceFileTest, MissingFileIsIOError) {
  Result<EventLog> r = ReadTraceFile("/nonexistent/path/log.txt");
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(TraceFileTest, WriteAndReadBack) {
  EventLog log;
  log.AddTrace({"x", "y"});
  std::string path = ::testing::TempDir() + "/ems_log_io_test.txt";
  ASSERT_TRUE(WriteTraceFile(log, path).ok());
  Result<EventLog> parsed = ReadTraceFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumTraces(), 1u);
}

TEST(CsvTest, ParsesGroupedByCase) {
  std::istringstream in(
      "case,activity\n"
      "c1,a\n"
      "c2,a\n"
      "c1,b\n"
      "c2,c\n");
  Result<EventLog> parsed = ReadCsv(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->NumTraces(), 2u);
  // Case c1: a b; case c2: a c (rows interleaved but order kept per case).
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[1]), "b");
  EXPECT_EQ(parsed->EventName(parsed->trace(1)[1]), "c");
}

TEST(CsvTest, RecognizesHeaderAliases) {
  std::istringstream in("Case ID,concept:name\n1,a\n");
  Result<EventLog> aliased = ReadCsv(in);
  ASSERT_TRUE(aliased.ok());
  EXPECT_EQ(aliased->NumTraces(), 1u);

  std::istringstream in2("case_id,Event\n1,a\n");
  Result<EventLog> good = ReadCsv(in2);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->NumTraces(), 1u);
}

TEST(CsvTest, UnknownHeadersAreParseError) {
  std::istringstream in("id,thing\n1,a\n");
  EXPECT_TRUE(ReadCsv(in).status().IsParseError());
}

TEST(CsvTest, QuotedFieldsWithCommasAndEscapes) {
  std::istringstream in(
      "case,activity\n"
      "c1,\"check, inventory\"\n"
      "c1,\"say \"\"hi\"\"\"\n");
  Result<EventLog> parsed = ReadCsv(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[0]), "check, inventory");
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[1]), "say \"hi\"");
}

TEST(CsvTest, RejectsRowWithTooFewColumns) {
  std::istringstream in("case,activity\nc1\n");
  EXPECT_TRUE(ReadCsv(in).status().IsParseError());
}

TEST(CsvTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_TRUE(ReadCsv(in).status().IsParseError());
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  std::istringstream in("case,activity\nc1,\"oops\n");
  EXPECT_TRUE(ReadCsv(in).status().IsParseError());
}

TEST(CsvTest, RoundTripThroughWriter) {
  EventLog log;
  log.AddTrace({"a,x", "b"});
  log.AddTrace({"c"});
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadCsv(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->NumTraces(), 2u);
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[0]), "a,x");
}

}  // namespace
}  // namespace ems
