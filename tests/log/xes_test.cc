#include "log/xes.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ems {
namespace {

TEST(XesTest, ParsesMinimalDocument) {
  std::istringstream in(
      "<?xml version=\"1.0\"?>\n"
      "<log>\n"
      "  <trace>\n"
      "    <event><string key=\"concept:name\" value=\"a\"/></event>\n"
      "    <event><string key=\"concept:name\" value=\"b\"/></event>\n"
      "  </trace>\n"
      "</log>\n");
  Result<EventLog> parsed = ReadXes(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->NumTraces(), 1u);
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[0]), "a");
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[1]), "b");
}

TEST(XesTest, IgnoresOtherAttributesAndComments) {
  std::istringstream in(
      "<log xes.version=\"1.0\">\n"
      "<!-- a comment <trace> inside -->\n"
      "<trace>\n"
      "  <string key=\"concept:name\" value=\"case1\"/>\n"
      "  <event>\n"
      "    <date key=\"time:timestamp\" value=\"2014-06-22\"/>\n"
      "    <string key=\"org:resource\" value=\"bob\"/>\n"
      "    <string key=\"concept:name\" value=\"ship\"/>\n"
      "  </event>\n"
      "</trace>\n"
      "</log>\n");
  Result<EventLog> parsed = ReadXes(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->NumTraces(), 1u);
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[0]), "ship");
}

TEST(XesTest, UnescapesEntities) {
  std::istringstream in(
      "<log><trace><event>"
      "<string key=\"concept:name\" value=\"a &amp; b &lt;x&gt;\"/>"
      "</event></trace></log>");
  Result<EventLog> parsed = ReadXes(in);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->EventName(0), "a & b <x>");
}

TEST(XesTest, EmptyTrace) {
  std::istringstream in("<log><trace/></log>");
  Result<EventLog> parsed = ReadXes(in);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->NumTraces(), 1u);
  EXPECT_TRUE(parsed->trace(0).empty());
}

TEST(XesTest, MissingLogElementIsParseError) {
  std::istringstream in("<trace></trace>");
  EXPECT_TRUE(ReadXes(in).status().IsParseError());
}

TEST(XesTest, EventWithoutNameIsParseError) {
  std::istringstream in("<log><trace><event></event></trace></log>");
  EXPECT_TRUE(ReadXes(in).status().IsParseError());
}

TEST(XesTest, RoundTrip) {
  EventLog log;
  log.AddTrace({"Check Inventory", "Ship & Bill", "<weird>"});
  log.AddTrace({"Check Inventory"});
  std::ostringstream out;
  ASSERT_TRUE(WriteXes(log, out).ok());
  std::istringstream in(out.str());
  Result<EventLog> parsed = ReadXes(in);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->NumTraces(), 2u);
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[1]), "Ship & Bill");
  EXPECT_EQ(parsed->EventName(parsed->trace(0)[2]), "<weird>");
}

TEST(XesTest, FileRoundTrip) {
  EventLog log;
  log.AddTrace({"a", "b"});
  std::string path = ::testing::TempDir() + "/ems_xes_test.xes";
  ASSERT_TRUE(WriteXesFile(log, path).ok());
  Result<EventLog> parsed = ReadXesFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->NumTraces(), 1u);
}

TEST(XesTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadXesFile("/no/such/file.xes").status().IsIOError());
}

}  // namespace
}  // namespace ems
