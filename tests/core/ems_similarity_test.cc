#include "core/ems_similarity.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "text/label_similarity.h"

namespace ems {
namespace {

using testing::BuildPaperGraph1;
using testing::BuildPaperGraph2;
using testing::BuildPaperLog1;
using testing::BuildPaperLog2;

EmsOptions Opts(Direction dir = Direction::kForward) {
  EmsOptions opts;
  opts.alpha = 1.0;
  opts.c = 0.8;
  opts.direction = dir;
  return opts;
}

TEST(EmsSimilarityTest, ValuesStayInUnitInterval) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, Opts(Direction::kBoth));
  SimilarityMatrix s = sim.Compute();
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(s.rows()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(s.cols()); ++v2) {
      EXPECT_GE(s.at(v1, v2), 0.0);
      EXPECT_LE(s.at(v1, v2), 1.0);
    }
  }
}

TEST(EmsSimilarityTest, ArtificialPairPinnedAtOne) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, Opts());
  SimilarityMatrix s = sim.Compute();
  EXPECT_DOUBLE_EQ(s.at(0, 0), 1.0);
  // Mixed artificial/real pairs stay 0.
  EXPECT_DOUBLE_EQ(s.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 0.0);
}

TEST(EmsSimilarityTest, MonotoneNonDecreasingAcrossIterations) {
  // Theorem 1's monotonicity, sampled at iterations 1..6.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  SimilarityMatrix prev;
  for (int n = 1; n <= 6; ++n) {
    EmsSimilarity sim(g1, g2, Opts());
    SimilarityMatrix cur = sim.ComputePartial(Direction::kForward, n);
    if (n > 1) {
      for (NodeId v1 = 0; v1 < static_cast<NodeId>(cur.rows()); ++v1) {
        for (NodeId v2 = 0; v2 < static_cast<NodeId>(cur.cols()); ++v2) {
          EXPECT_GE(cur.at(v1, v2) + 1e-12, prev.at(v1, v2));
        }
      }
    }
    prev = cur;
  }
}

TEST(EmsSimilarityTest, IdenticalGraphsPreferDiagonal) {
  // Matching a graph against itself: the diagonal must dominate its row.
  DependencyGraph g = BuildPaperGraph2();
  EmsSimilarity sim(g, g, Opts(Direction::kBoth));
  SimilarityMatrix s = sim.Compute();
  for (NodeId v = 1; v < static_cast<NodeId>(g.NumNodes()); ++v) {
    for (NodeId u = 1; u < static_cast<NodeId>(g.NumNodes()); ++u) {
      if (u == v) continue;
      EXPECT_GE(s.at(v, v) + 1e-9, s.at(v, u))
          << "diagonal not maximal for " << g.NodeName(v) << " vs "
          << g.NodeName(u);
    }
  }
}

TEST(EmsSimilarityTest, PruningDoesNotChangeResult) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  // Delta-skipping disabled to isolate Proposition-2 pruning: with it on,
  // unchanged-neighborhood skips can soak up the same pairs pruning would
  // save (their interaction is covered by ems_kernel_test).
  EmsOptions with = Opts(Direction::kBoth);
  with.prune_converged = true;
  with.skip_unchanged = false;
  EmsOptions without = Opts(Direction::kBoth);
  without.prune_converged = false;
  without.skip_unchanged = false;
  EmsSimilarity sim_with(g1, g2, with);
  EmsSimilarity sim_without(g1, g2, without);
  SimilarityMatrix a = sim_with.Compute();
  SimilarityMatrix b = sim_without.Compute();
  EXPECT_LT(a.MaxAbsDifference(b), 1e-9);
  // ... and pruning must save formula evaluations.
  EXPECT_LT(sim_with.stats().formula_evaluations,
            sim_without.stats().formula_evaluations);
  EXPECT_GT(sim_with.stats().pairs_pruned_converged, 0u);
  EXPECT_EQ(sim_with.stats().pairs_skipped_unchanged, 0u);

  // With the default options (pruning AND delta-skipping) the matrix is
  // still the same, and the combined savings are at least pruning's own.
  EmsSimilarity sim_default(g1, g2, Opts(Direction::kBoth));
  SimilarityMatrix c = sim_default.Compute();
  EXPECT_LT(a.MaxAbsDifference(c), 1e-9);
  EXPECT_GE(sim_default.stats().pairs_pruned_converged +
                sim_default.stats().pairs_skipped_unchanged,
            sim_with.stats().pairs_pruned_converged);
  EXPECT_LE(sim_default.stats().formula_evaluations,
            sim_with.stats().formula_evaluations);
}

TEST(EmsSimilarityTest, LabelSimilarityBlendsIn) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  // All-ones label matrix with alpha = 0 must give similarity 1 for all
  // real pairs.
  std::vector<std::vector<double>> labels(
      g1.NumNodes(), std::vector<double>(g2.NumNodes(), 1.0));
  EmsOptions opts = Opts();
  opts.alpha = 0.0;
  EmsSimilarity sim(g1, g2, opts, &labels);
  SimilarityMatrix s = sim.Compute();
  for (NodeId v1 = 1; v1 < static_cast<NodeId>(s.rows()); ++v1) {
    for (NodeId v2 = 1; v2 < static_cast<NodeId>(s.cols()); ++v2) {
      EXPECT_DOUBLE_EQ(s.at(v1, v2), 1.0);
    }
  }
}

TEST(EmsSimilarityTest, AlphaInterpolatesBetweenStructureAndLabels) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  std::vector<std::vector<double>> labels(
      g1.NumNodes(), std::vector<double>(g2.NumNodes(), 0.0));
  labels[1 + testing::A][1 + testing::N2] = 1.0;
  EmsOptions half = Opts();
  half.alpha = 0.5;
  EmsSimilarity sim_half(g1, g2, half, &labels);
  SimilarityMatrix s_half = sim_half.Compute();
  EmsSimilarity sim_full(g1, g2, Opts());
  SimilarityMatrix s_full = sim_full.Compute();
  // With labels favoring (A, N2), its blended similarity must exceed the
  // alpha-weighted structural one.
  EXPECT_GT(s_half.at(1 + testing::A, 1 + testing::N2),
            0.5 * s_full.at(1 + testing::A, 1 + testing::N2));
}

TEST(EmsSimilarityTest, BothDirectionIsAverageOfForwardAndBackward) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity both(g1, g2, Opts(Direction::kBoth));
  SimilarityMatrix s_both = both.Compute();
  EmsSimilarity fwd(g1, g2, Opts(Direction::kForward));
  SimilarityMatrix s_fwd = fwd.Compute();
  EmsSimilarity bwd(g1, g2, Opts(Direction::kBackward));
  SimilarityMatrix s_bwd = bwd.Compute();
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(s_both.rows()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(s_both.cols()); ++v2) {
      EXPECT_NEAR(s_both.at(v1, v2),
                  (s_fwd.at(v1, v2) + s_bwd.at(v1, v2)) / 2.0, 1e-12);
    }
  }
}

TEST(EmsSimilarityTest, EdgeCoefficientBounds) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, Opts());
  EXPECT_DOUBLE_EQ(sim.EdgeCoefficient(0.5, 0.5), 0.8);  // equal: full c
  EXPECT_NEAR(sim.EdgeCoefficient(1.0, 0.0), 0.0, 1e-12);
  double mid = sim.EdgeCoefficient(0.4, 1.0);
  EXPECT_GT(mid, 0.0);
  EXPECT_LT(mid, 0.8);
}

TEST(EmsSimilarityTest, LogPipelineConvenienceWrapper) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  EmsStats stats;
  SimilarityMatrix s = ComputeEmsSimilarity(log1, log2, Opts(Direction::kBoth),
                                            &stats);
  EXPECT_EQ(s.rows(), log1.NumEvents() + 1);
  EXPECT_EQ(s.cols(), log2.NumEvents() + 1);
  EXPECT_GT(stats.iterations, 0);
  EXPECT_GT(stats.formula_evaluations, 0u);
}

TEST(EmsSimilarityTest, FrozenRowsAreRespected) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  std::vector<bool> frozen(g1.NumNodes(), false);
  frozen[1 + testing::A] = true;
  SimilarityMatrix values(g1.NumNodes(), g2.NumNodes(), 0.0);
  values.set(1 + testing::A, 1 + testing::N1, 0.123);
  RunControls controls;
  controls.frozen_rows = &frozen;
  controls.frozen_values = &values;
  EmsSimilarity sim(g1, g2, Opts());
  SimilarityMatrix s = sim.ComputeControlled(Direction::kForward, controls);
  EXPECT_DOUBLE_EQ(s.at(1 + testing::A, 1 + testing::N1), 0.123);
  // Non-frozen rows still computed.
  EXPECT_GT(s.at(1 + testing::C, 1 + testing::N4), 0.0);
}

TEST(EmsSimilarityTest, AbortCallbackStopsIteration) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  bool aborted = false;
  RunControls controls;
  controls.should_abort = [](int k, const SimilarityMatrix&) {
    return k >= 2;
  };
  controls.aborted = &aborted;
  EmsSimilarity sim(g1, g2, Opts());
  (void)sim.ComputeControlled(Direction::kForward, controls);
  EXPECT_TRUE(aborted);
  EXPECT_EQ(sim.stats().iterations, 2);
}

}  // namespace
}  // namespace ems
