#include "core/bounds.h"
#include <cmath>

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

using testing::BuildPaperGraph1;
using testing::BuildPaperGraph2;

EmsOptions Opts() {
  EmsOptions opts;
  opts.alpha = 1.0;
  opts.c = 0.8;
  opts.direction = Direction::kForward;
  return opts;
}

TEST(BoundsTest, UpperBoundDominatesConvergedValue) {
  // Proposition 6: for every pair and every k, bound(S^k) >= S(inf).
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, Opts());
  SimilarityMatrix s_final = sim.Compute();
  for (int k : {0, 1, 2, 3, 5}) {
    EmsSimilarity partial_sim(g1, g2, Opts());
    SimilarityMatrix s_k = partial_sim.ComputePartial(Direction::kForward, k);
    for (NodeId v1 = 1; v1 < static_cast<NodeId>(s_k.rows()); ++v1) {
      for (NodeId v2 = 1; v2 < static_cast<NodeId>(s_k.cols()); ++v2) {
        double bound = SimilarityUpperBound(s_k.at(v1, v2), k, 1.0, 0.8);
        EXPECT_GE(bound + 1e-12, s_final.at(v1, v2))
            << "k=" << k << " pair (" << v1 << "," << v2 << ")";
      }
    }
  }
}

TEST(BoundsTest, TightBoundNoLooserThanPaperBound) {
  for (int k : {0, 1, 2, 5, 10}) {
    double tight = SimilarityUpperBound(0.3, k, 1.0, 0.8);
    double paper = PaperUpperBound(0.3, k, 1.0, 0.8);
    EXPECT_LE(tight, paper + 1e-12);
  }
}

TEST(BoundsTest, HorizonBoundDominatesAndTightens) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, Opts());
  SimilarityMatrix s_final = sim.Compute();
  const int k = 1;
  EmsSimilarity partial_sim(g1, g2, Opts());
  SimilarityMatrix s_k = partial_sim.ComputePartial(Direction::kForward, k);
  for (NodeId v1 = 1; v1 < static_cast<NodeId>(s_k.rows()); ++v1) {
    for (NodeId v2 = 1; v2 < static_cast<NodeId>(s_k.cols()); ++v2) {
      int h = sim.ConvergenceHorizon(Direction::kForward, v1, v2);
      double hb = HorizonUpperBound(s_k.at(v1, v2), k, h, 1.0, 0.8);
      double gb = SimilarityUpperBound(s_k.at(v1, v2), k, 1.0, 0.8);
      EXPECT_GE(hb + 1e-12, s_final.at(v1, v2));  // Corollary 7: still valid
      EXPECT_LE(hb, gb + 1e-12);                  // ... and no looser
    }
  }
}

TEST(BoundsTest, ConvergedHorizonBoundIsExact) {
  // For h <= k the pair has converged; the bound equals the value.
  EXPECT_DOUBLE_EQ(HorizonUpperBound(0.42, 3, 2, 1.0, 0.8), 0.42);
  EXPECT_DOUBLE_EQ(HorizonUpperBound(0.42, 3, 3, 1.0, 0.8), 0.42);
}

TEST(BoundsTest, BoundsClampToOne) {
  EXPECT_LE(SimilarityUpperBound(0.9, 0, 1.0, 0.8), 1.0);
  EXPECT_LE(PaperUpperBound(0.9, 0, 1.0, 0.8), 1.0);
  EXPECT_LE(HorizonUpperBound(0.9, 0, 100, 1.0, 0.8), 1.0);
}

TEST(BoundsTest, BoundsDecreaseWithK) {
  double prev = 2.0;
  for (int k = 0; k <= 10; ++k) {
    double b = SimilarityUpperBound(0.0, k, 1.0, 0.8);
    EXPECT_LE(b, prev + 1e-12);
    prev = b;
  }
  // Tail vanishes geometrically.
  EXPECT_LT(SimilarityUpperBound(0.0, 50, 1.0, 0.8), 1e-4);
}

TEST(BoundsTest, IncrementBoundLemma5Holds) {
  // Lemma 5: S^n - S^{n-1} <= (alpha c)^n, per pair.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsOptions opts = Opts();
  opts.prune_converged = false;
  SimilarityMatrix prev;
  for (int n = 1; n <= 6; ++n) {
    EmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix cur = sim.ComputePartial(Direction::kForward, n);
    if (n > 1) {
      double cap = std::pow(0.8, n);
      for (NodeId v1 = 1; v1 < static_cast<NodeId>(cur.rows()); ++v1) {
        for (NodeId v2 = 1; v2 < static_cast<NodeId>(cur.cols()); ++v2) {
          EXPECT_LE(cur.at(v1, v2) - prev.at(v1, v2), cap + 1e-12);
        }
      }
    }
    prev = cur;
  }
}

TEST(BoundsTest, AverageUpperBoundDominatesFinalAverage) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, Opts());
  SimilarityMatrix s_final = sim.Compute();
  double avg_final = s_final.Average(1, 1);
  for (int k : {0, 1, 2, 4}) {
    EmsSimilarity partial(g1, g2, Opts());
    SimilarityMatrix s_k = partial.ComputePartial(Direction::kForward, k);
    double bound = AverageUpperBound(partial, Direction::kForward, s_k, k,
                                     g1, g2);
    EXPECT_GE(bound + 1e-9, avg_final) << "k=" << k;
  }
}

}  // namespace
}  // namespace ems
