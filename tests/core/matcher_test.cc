#include "core/matcher.h"
#include <set>

#include <gtest/gtest.h>

#include "paper_example.h"
#include "synth/dataset.h"

namespace ems {
namespace {

using testing::BuildPaperLog1;
using testing::BuildPaperLog2;

MatchOptions Opts() {
  MatchOptions opts;
  opts.ems.alpha = 1.0;
  opts.ems.c = 0.8;
  return opts;
}

// Looks up the right-side name matched to `left`, or "" if unmatched.
std::string MatchedTo(const MatchResult& result, const std::string& left) {
  for (const Correspondence& c : result.correspondences) {
    for (const std::string& l : c.events1) {
      if (l == left && c.events2.size() == 1) return c.events2[0];
    }
  }
  return "";
}

TEST(MatcherTest, RecoversDislocatedCorrespondences) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  Matcher matcher(Opts());
  Result<MatchResult> result = matcher.Match(log1, log2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The dislocated pair: PaidCash (trace start in L1) matches PaidCash2
  // (second position in L2), not OrderAccepted.
  EXPECT_EQ(MatchedTo(*result, "PaidCash"), "PaidCash2");
  EXPECT_EQ(MatchedTo(*result, "PaidCredit"), "PaidCredit2");
}

TEST(MatcherTest, SimilarityMatrixShapeIncludesArtificial) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  Matcher matcher(Opts());
  Result<MatchResult> result = matcher.Match(log1, log2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->similarity.rows(), log1.NumEvents() + 1);
  EXPECT_EQ(result->similarity.cols(), log2.NumEvents() + 1);
  EXPECT_TRUE(result->graph1.has_artificial());
}

TEST(MatcherTest, CorrespondencesAreOneToOneWithoutComposites) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  Matcher matcher(Opts());
  Result<MatchResult> result = matcher.Match(log1, log2);
  ASSERT_TRUE(result.ok());
  std::set<std::string> lefts, rights;
  for (const Correspondence& c : result->correspondences) {
    ASSERT_EQ(c.events1.size(), 1u);
    ASSERT_EQ(c.events2.size(), 1u);
    EXPECT_TRUE(lefts.insert(c.events1[0]).second);
    EXPECT_TRUE(rights.insert(c.events2[0]).second);
    EXPECT_GE(c.similarity, matcher.options().min_match_similarity);
  }
}

TEST(MatcherTest, EstimatedEngineAgreesRoughlyWithExact) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  MatchOptions est_opts = Opts();
  est_opts.engine = SimilarityEngine::kEstimated;
  est_opts.estimation_iterations = 5;
  Matcher exact(Opts());
  Matcher estimated(est_opts);
  Result<MatchResult> r_exact = exact.Match(log1, log2);
  Result<MatchResult> r_est = estimated.Match(log1, log2);
  ASSERT_TRUE(r_exact.ok() && r_est.ok());
  // Same dominant matches on this small example.
  EXPECT_EQ(MatchedTo(*r_est, "PaidCash"), MatchedTo(*r_exact, "PaidCash"));
}

TEST(MatcherTest, LabelsBreakSymmetricTies) {
  // Two parallel branches with identical structure; only labels
  // distinguish them.
  EventLog log1, log2;
  for (int i = 0; i < 10; ++i) {
    log1.AddTrace(i % 2 == 0 ? std::vector<std::string>{"start", "pay_cash"}
                             : std::vector<std::string>{"start", "pay_card"});
    log2.AddTrace(i % 2 == 0 ? std::vector<std::string>{"start2", "pay_cash!"}
                             : std::vector<std::string>{"start2", "pay_card!"});
  }
  MatchOptions opts = Opts();
  opts.ems.alpha = 0.5;
  opts.label_measure = LabelMeasure::kQGramCosine;
  Matcher matcher(opts);
  Result<MatchResult> result = matcher.Match(log1, log2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(MatchedTo(*result, "pay_cash"), "pay_cash!");
  EXPECT_EQ(MatchedTo(*result, "pay_card"), "pay_card!");
}

TEST(MatcherTest, CompositePipelineProducesComplexCorrespondences) {
  // A generated pair with a guaranteed injected composite: the pipeline
  // must surface at least one m:n correspondence for it.
  PairOptions pair_opts;
  pair_opts.num_activities = 10;
  pair_opts.num_traces = 80;
  pair_opts.num_composites = 2;
  pair_opts.dislocation = 1;
  pair_opts.seed = 1;
  LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
  ASSERT_TRUE(pair.has_composites);
  MatchOptions opts = Opts();
  opts.match_composites = true;
  opts.composite.delta = 0.005;
  Matcher matcher(opts);
  Result<MatchResult> result = matcher.Match(pair.log1, pair.log2);
  ASSERT_TRUE(result.ok());
  bool complex_found = false;
  for (const Correspondence& c : result->correspondences) {
    if (c.events1.size() > 1 || c.events2.size() > 1) complex_found = true;
  }
  EXPECT_TRUE(complex_found);
  EXPECT_GT(result->composite_stats.candidates_evaluated, 0);
}

TEST(MatcherTest, MinEdgeFrequencyControlAffectsGraphs) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  MatchOptions opts = Opts();
  opts.min_edge_frequency = 0.45;
  Matcher pruned(opts);
  Matcher full(Opts());
  Result<MatchResult> r_pruned = pruned.Match(log1, log2);
  Result<MatchResult> r_full = full.Match(log1, log2);
  ASSERT_TRUE(r_pruned.ok() && r_full.ok());
  EXPECT_LT(r_pruned->graph1.NumEdges(), r_full->graph1.NumEdges());
}

TEST(MatcherTest, SelectionStrategiesAllProduceValidOutput) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  for (SelectionStrategy s :
       {SelectionStrategy::kMaxTotalSimilarity, SelectionStrategy::kGreedy,
        SelectionStrategy::kMutualBest}) {
    MatchOptions opts = Opts();
    opts.selection = s;
    Matcher matcher(opts);
    Result<MatchResult> result = matcher.Match(log1, log2);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->correspondences.empty());
  }
}

TEST(MakeLabelMeasureTest, AllVariantsConstruct) {
  EXPECT_EQ(MakeLabelMeasure(LabelMeasure::kNone)->Name(), "none");
  EXPECT_NE(MakeLabelMeasure(LabelMeasure::kQGramCosine), nullptr);
  EXPECT_EQ(MakeLabelMeasure(LabelMeasure::kLevenshtein)->Name(),
            "levenshtein");
  EXPECT_EQ(MakeLabelMeasure(LabelMeasure::kTokenJaccard)->Name(),
            "token-jaccard");
}

}  // namespace
}  // namespace ems
