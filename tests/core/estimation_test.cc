#include "core/estimation.h"
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

using testing::BuildPaperGraph1;
using testing::BuildPaperGraph2;

EstimationOptions Est(int iterations, Direction dir = Direction::kForward) {
  EstimationOptions est;
  est.exact_iterations = iterations;
  est.ems.alpha = 1.0;
  est.ems.c = 0.8;
  est.ems.direction = dir;
  return est;
}

TEST(EstimationTest, ValuesStayInUnitInterval) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  for (int iterations : {0, 1, 3, 10}) {
    EstimatedEmsSimilarity sim(g1, g2, Est(iterations, Direction::kBoth));
    SimilarityMatrix s = sim.Compute();
    for (NodeId v1 = 0; v1 < static_cast<NodeId>(s.rows()); ++v1) {
      for (NodeId v2 = 0; v2 < static_cast<NodeId>(s.cols()); ++v2) {
        EXPECT_GE(s.at(v1, v2), 0.0);
        EXPECT_LE(s.at(v1, v2), 1.0);
      }
    }
  }
}

TEST(EstimationTest, LargeIReproducesExactOnDagPairs) {
  // For pairs with a finite horizon, I >= horizon makes EMS+es exact
  // (Algorithm 1 falls through to the converged values).
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EstimatedEmsSimilarity est(g1, g2, Est(50));
  SimilarityMatrix s_est = est.Compute();

  EmsOptions exact_opts;
  exact_opts.alpha = 1.0;
  exact_opts.c = 0.8;
  exact_opts.direction = Direction::kForward;
  EmsSimilarity exact(g1, g2, exact_opts);
  SimilarityMatrix s_exact = exact.Compute();

  EmsSimilarity horizon_helper(g1, g2, exact_opts);
  for (NodeId v1 = 1; v1 < static_cast<NodeId>(s_est.rows()); ++v1) {
    for (NodeId v2 = 1; v2 < static_cast<NodeId>(s_est.cols()); ++v2) {
      int h = horizon_helper.ConvergenceHorizon(Direction::kForward, v1, v2);
      if (h == kInfiniteDistance) continue;
      EXPECT_NEAR(s_est.at(v1, v2), s_exact.at(v1, v2), 1e-6)
          << "pair (" << g1.NodeName(v1) << ", " << g2.NodeName(v2) << ")";
    }
  }
}

TEST(EstimationTest, ZeroIterationsIsCheapest) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EstimatedEmsSimilarity est0(g1, g2, Est(0));
  (void)est0.Compute();
  EstimatedEmsSimilarity est5(g1, g2, Est(5));
  (void)est5.Compute();
  EXPECT_LT(est0.stats().formula_evaluations,
            est5.stats().formula_evaluations);
  EXPECT_EQ(est0.stats().formula_evaluations, 0u);  // no exact iterations
}

TEST(EstimationTest, ErrorShrinksMonotonicallyOnAverage) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsOptions exact_opts;
  exact_opts.alpha = 1.0;
  exact_opts.c = 0.8;
  exact_opts.direction = Direction::kBoth;
  EmsSimilarity exact(g1, g2, exact_opts);
  SimilarityMatrix s_exact = exact.Compute();

  auto total_error = [&](int iterations) {
    EstimatedEmsSimilarity est(g1, g2, Est(iterations, Direction::kBoth));
    SimilarityMatrix s = est.Compute();
    double err = 0.0;
    for (NodeId v1 = 1; v1 < static_cast<NodeId>(s.rows()); ++v1) {
      for (NodeId v2 = 1; v2 < static_cast<NodeId>(s.cols()); ++v2) {
        err += std::abs(s.at(v1, v2) - s_exact.at(v1, v2));
      }
    }
    return err;
  };
  // Not guaranteed strictly monotone per pair, but the trend must hold
  // between the extremes (the trade-off Figure 5 plots).
  EXPECT_LE(total_error(10), total_error(0) + 1e-9);
}

TEST(EstimationTest, BothDirectionAveragesForwardAndBackward) {
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EstimatedEmsSimilarity both(g1, g2, Est(2, Direction::kBoth));
  SimilarityMatrix s_both = both.Compute();
  EstimatedEmsSimilarity fwd(g1, g2, Est(2, Direction::kForward));
  SimilarityMatrix s_fwd = fwd.Compute();
  EstimatedEmsSimilarity bwd(g1, g2, Est(2, Direction::kBackward));
  SimilarityMatrix s_bwd = bwd.Compute();
  for (NodeId v1 = 0; v1 < static_cast<NodeId>(s_both.rows()); ++v1) {
    for (NodeId v2 = 0; v2 < static_cast<NodeId>(s_both.cols()); ++v2) {
      EXPECT_NEAR(s_both.at(v1, v2),
                  (s_fwd.at(v1, v2) + s_bwd.at(v1, v2)) / 2.0, 1e-12);
    }
  }
}

TEST(EstimationTest, HandlesCyclicPairsViaGeometricLimit) {
  // Pairs with infinite horizon (E/F cycle in G1) extrapolate to the
  // geometric limit a / (1 - q); must stay finite and in range.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EstimatedEmsSimilarity est(g1, g2, Est(0));
  SimilarityMatrix s = est.Compute();
  double v = s.at(1 + testing::E, 1 + testing::N5);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

}  // namespace
}  // namespace ems
