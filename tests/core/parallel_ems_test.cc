// The multithreaded iteration must be bit-identical to the
// single-threaded one (each iteration reads only the previous matrix, so
// partitioning rows cannot change results).
#include <gtest/gtest.h>

#include "core/ems_similarity.h"
#include "synth/dataset.h"

namespace ems {
namespace {

class ParallelEmsTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEmsTest, MatchesSingleThreaded) {
  PairOptions opts;
  opts.num_activities = 30;
  opts.num_traces = 80;
  opts.dislocation = 1;
  opts.seed = 424;
  LogPair pair = MakeLogPair(Testbed::kDsFB, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);

  EmsOptions single;
  single.direction = Direction::kBoth;
  single.num_threads = 1;
  EmsSimilarity sim_single(g1, g2, single);
  SimilarityMatrix expected = sim_single.Compute();

  EmsOptions multi = single;
  multi.num_threads = GetParam();
  EmsSimilarity sim_multi(g1, g2, multi);
  SimilarityMatrix actual = sim_multi.Compute();

  EXPECT_EQ(expected.MaxAbsDifference(actual), 0.0);
  EXPECT_EQ(sim_single.stats().formula_evaluations,
            sim_multi.stats().formula_evaluations);
  EXPECT_EQ(sim_single.stats().iterations, sim_multi.stats().iterations);
}

TEST(ParallelEmsTest, ZeroMeansHardwareConcurrency) {
  PairOptions opts;
  opts.num_activities = 12;
  opts.num_traces = 40;
  opts.seed = 77;
  LogPair pair = MakeLogPair(Testbed::kDsB, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions auto_threads;
  auto_threads.num_threads = 0;
  EmsSimilarity sim(g1, g2, auto_threads);
  SimilarityMatrix m = sim.Compute();
  EmsOptions one;
  EmsSimilarity ref(g1, g2, one);
  EXPECT_EQ(m.MaxAbsDifference(ref.Compute()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEmsTest,
                         ::testing::Values(2, 3, 8, 16));

}  // namespace
}  // namespace ems
