// The optimized EMS iteration kernel (CSR adjacency, precomputed
// coefficient tables, fused forward/transposed scan, delta-driven
// recomputation) must be bit-identical to the retained naive reference
// kernel: same matrices to the last bit, same iteration counts — across
// random graphs, serially and with 4 threads, with and without the
// coefficient tables, and composed with every RunControls mechanism.
#include <gtest/gtest.h>

#include "core/ems_similarity.h"
#include "paper_example.h"
#include "synth/dataset.h"

namespace ems {
namespace {

LogPair RandomPair(Testbed testbed, int activities, uint64_t seed) {
  PairOptions opts;
  opts.num_activities = activities;
  opts.num_traces = 60;
  opts.dislocation = 1;
  opts.seed = seed;
  return MakeLogPair(testbed, opts);
}

// A small graph with a real cycle (a -> b -> c -> a): longest distances
// on the cycle are infinite, so Proposition-2 pruning never fires there
// and the fixpoint is reached by epsilon alone.
DependencyGraph CyclicGraph(double scale) {
  return DependencyGraph::FromExplicit(
      {"a", "b", "c", "d"}, {1.0, 0.8 * scale, 0.6, 0.5 * scale},
      {{0, 1, 0.6 * scale}, {1, 2, 0.5}, {2, 0, 0.4 * scale}, {2, 3, 0.3}});
}

void ExpectKernelsBitIdentical(const DependencyGraph& g1,
                               const DependencyGraph& g2,
                               EmsOptions base,
                               const std::vector<std::vector<double>>* labels =
                                   nullptr) {
  EmsOptions naive = base;
  naive.kernel = EmsKernel::kNaive;
  EmsOptions optimized = base;
  optimized.kernel = EmsKernel::kOptimized;
  EmsSimilarity sim_naive(g1, g2, naive, labels);
  EmsSimilarity sim_opt(g1, g2, optimized, labels);
  SimilarityMatrix a = sim_naive.Compute();
  SimilarityMatrix b = sim_opt.Compute();
  EXPECT_EQ(a.MaxAbsDifference(b), 0.0);
  EXPECT_EQ(sim_naive.stats().iterations, sim_opt.stats().iterations);
}

TEST(EmsKernelTest, BitIdenticalOnRandomGraphsSerial) {
  for (Testbed testbed : {Testbed::kDsF, Testbed::kDsB, Testbed::kDsFB}) {
    for (uint64_t seed : {11u, 42u, 1337u}) {
      LogPair pair = RandomPair(testbed, 25, seed);
      DependencyGraph g1 = DependencyGraph::Build(pair.log1);
      DependencyGraph g2 = DependencyGraph::Build(pair.log2);
      EmsOptions opts;
      opts.direction = Direction::kBoth;
      ExpectKernelsBitIdentical(g1, g2, opts);
    }
  }
}

TEST(EmsKernelTest, BitIdenticalOnRandomGraphsFourThreads) {
  LogPair pair = RandomPair(Testbed::kDsFB, 30, 99);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions opts;
  opts.direction = Direction::kBoth;
  opts.num_threads = 4;
  ExpectKernelsBitIdentical(g1, g2, opts);

  // ... and the 4-thread optimized kernel matches the serial one.
  EmsOptions serial = opts;
  serial.num_threads = 1;
  EmsSimilarity sim_serial(g1, g2, serial);
  EmsSimilarity sim_parallel(g1, g2, opts);
  SimilarityMatrix a = sim_serial.Compute();
  SimilarityMatrix b = sim_parallel.Compute();
  EXPECT_EQ(a.MaxAbsDifference(b), 0.0);
  EXPECT_EQ(sim_serial.stats().formula_evaluations,
            sim_parallel.stats().formula_evaluations);
  EXPECT_EQ(sim_serial.stats().pairs_skipped_unchanged,
            sim_parallel.stats().pairs_skipped_unchanged);
}

TEST(EmsKernelTest, BitIdenticalWithoutCoefficientTables) {
  LogPair pair = RandomPair(Testbed::kDsFB, 20, 7);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions opts;
  opts.direction = Direction::kBoth;
  opts.coeff_table_max_bytes = 0;  // force the on-the-fly fallback
  ExpectKernelsBitIdentical(g1, g2, opts);
}

TEST(EmsKernelTest, BitIdenticalWithLabelsAndAlpha) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  DependencyGraph g2 = testing::BuildPaperGraph2();
  std::vector<std::vector<double>> labels(
      g1.NumNodes(), std::vector<double>(g2.NumNodes(), 0.0));
  for (size_t i = 0; i < labels.size(); ++i) {
    for (size_t j = 0; j < labels[i].size(); ++j) {
      labels[i][j] = static_cast<double>((i * 7 + j * 3) % 10) / 10.0;
    }
  }
  EmsOptions opts;
  opts.alpha = 0.5;
  opts.direction = Direction::kBoth;
  ExpectKernelsBitIdentical(g1, g2, opts, &labels);
}

TEST(EmsKernelTest, BitIdenticalOnCyclicGraphs) {
  DependencyGraph g1 = CyclicGraph(1.0);
  DependencyGraph g2 = CyclicGraph(0.9);
  for (bool prune : {true, false}) {
    EmsOptions opts;
    opts.direction = Direction::kBoth;
    opts.prune_converged = prune;
    ExpectKernelsBitIdentical(g1, g2, opts);
  }
}

TEST(EmsKernelTest, ComputePartialBitIdentical) {
  LogPair pair = RandomPair(Testbed::kDsB, 18, 5);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  for (int iterations : {1, 3, 6}) {
    EmsOptions naive;
    naive.kernel = EmsKernel::kNaive;
    EmsOptions optimized;
    optimized.kernel = EmsKernel::kOptimized;
    EmsSimilarity sim_naive(g1, g2, naive);
    EmsSimilarity sim_opt(g1, g2, optimized);
    SimilarityMatrix a = sim_naive.ComputePartial(Direction::kForward,
                                                  iterations);
    SimilarityMatrix b = sim_opt.ComputePartial(Direction::kForward,
                                                iterations);
    EXPECT_EQ(a.MaxAbsDifference(b), 0.0) << iterations << " iterations";
  }
}

TEST(EmsKernelTest, DeltaSkipSavesEvaluationsWithoutChangingResults) {
  LogPair pair = RandomPair(Testbed::kDsFB, 30, 21);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  // Pruning disabled: on a DAG Proposition-2 pruning is checked first and
  // absorbs the very pairs whose neighborhoods stabilized, so delta-skip
  // savings only become visible on their own.
  EmsOptions with;
  with.direction = Direction::kBoth;
  with.skip_unchanged = true;
  with.prune_converged = false;
  EmsOptions without = with;
  without.skip_unchanged = false;
  EmsSimilarity sim_with(g1, g2, with);
  EmsSimilarity sim_without(g1, g2, without);
  SimilarityMatrix a = sim_with.Compute();
  SimilarityMatrix b = sim_without.Compute();
  EXPECT_EQ(a.MaxAbsDifference(b), 0.0);
  EXPECT_GT(sim_with.stats().pairs_skipped_unchanged, 0u);
  EXPECT_EQ(sim_without.stats().pairs_skipped_unchanged, 0u);
  EXPECT_LT(sim_with.stats().formula_evaluations,
            sim_without.stats().formula_evaluations);
}

TEST(EmsKernelTest, CoefficientTableMemoryReportedAndCapped) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  DependencyGraph g2 = testing::BuildPaperGraph2();
  EmsOptions opts;
  opts.direction = Direction::kBoth;
  EmsSimilarity sim(g1, g2, opts);
  EXPECT_EQ(sim.coefficient_table_bytes(), 0u);  // lazily built
  (void)sim.Compute();
  EXPECT_GT(sim.coefficient_table_bytes(), 0u);

  EmsOptions capped = opts;
  capped.coeff_table_max_bytes = 8;  // too small for any real graph pair
  EmsSimilarity sim_capped(g1, g2, capped);
  SimilarityMatrix a = sim_capped.Compute();
  EXPECT_EQ(sim_capped.coefficient_table_bytes(), 0u);
  EXPECT_EQ(a.MaxAbsDifference(sim.Compute()), 0.0);
}

// RunControls interactions (frozen rows + frozen cols + Proposition-2
// pruning + delta-skipping together, on a cyclic graph) — previously
// only tested pairwise.
TEST(EmsKernelTest, RunControlsComposeOnCyclicGraph) {
  DependencyGraph g1 = CyclicGraph(1.0);
  DependencyGraph g2 = CyclicGraph(0.8);
  const NodeId frozen_row = 2;  // node "b" (after the artificial shift)
  const NodeId frozen_col = 3;  // node "c"
  std::vector<bool> rows(g1.NumNodes(), false);
  rows[static_cast<size_t>(frozen_row)] = true;
  std::vector<bool> cols(g2.NumNodes(), false);
  cols[static_cast<size_t>(frozen_col)] = true;
  SimilarityMatrix values(g1.NumNodes(), g2.NumNodes(), 0.0);
  for (NodeId v1 = 1; v1 < static_cast<NodeId>(g1.NumNodes()); ++v1) {
    for (NodeId v2 = 1; v2 < static_cast<NodeId>(g2.NumNodes()); ++v2) {
      values.set(v1, v2, 0.25 + 0.05 * static_cast<double>(v1 + v2));
    }
  }

  auto run = [&](EmsKernel kernel, bool skip_unchanged, int threads,
                 EmsStats* stats) {
    EmsOptions opts;
    opts.kernel = kernel;
    opts.skip_unchanged = skip_unchanged;
    opts.prune_converged = true;
    opts.num_threads = threads;
    RunControls controls;
    controls.frozen_rows = &rows;
    controls.frozen_cols = &cols;
    controls.frozen_values = &values;
    EmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix s = sim.ComputeControlled(Direction::kForward, controls);
    if (stats != nullptr) *stats = sim.stats();
    return s;
  };

  EmsStats naive_stats, opt_stats;
  SimilarityMatrix naive = run(EmsKernel::kNaive, false, 1, &naive_stats);
  SimilarityMatrix opt = run(EmsKernel::kOptimized, true, 1, &opt_stats);
  SimilarityMatrix opt4 = run(EmsKernel::kOptimized, true, 4, nullptr);
  EXPECT_EQ(naive.MaxAbsDifference(opt), 0.0);
  EXPECT_EQ(naive.MaxAbsDifference(opt4), 0.0);
  EXPECT_EQ(naive_stats.iterations, opt_stats.iterations);

  // Frozen entries hold their injected values exactly, in every variant.
  for (NodeId v2 = 1; v2 < static_cast<NodeId>(g2.NumNodes()); ++v2) {
    EXPECT_DOUBLE_EQ(opt.at(frozen_row, v2), values.at(frozen_row, v2));
  }
  for (NodeId v1 = 1; v1 < static_cast<NodeId>(g1.NumNodes()); ++v1) {
    EXPECT_DOUBLE_EQ(opt.at(v1, frozen_col), values.at(v1, frozen_col));
  }
  // Non-frozen pairs still iterate to a nonzero fixpoint.
  EXPECT_GT(opt.at(1, 1), 0.0);
}

TEST(EmsKernelTest, AbortCallbackComposesWithDeltaSkip) {
  DependencyGraph g1 = CyclicGraph(1.0);
  DependencyGraph g2 = CyclicGraph(0.7);
  for (EmsKernel kernel : {EmsKernel::kNaive, EmsKernel::kOptimized}) {
    bool aborted = false;
    RunControls controls;
    controls.should_abort = [](int k, const SimilarityMatrix&) {
      return k >= 3;
    };
    controls.aborted = &aborted;
    EmsOptions opts;
    opts.kernel = kernel;
    EmsSimilarity sim(g1, g2, opts);
    (void)sim.ComputeControlled(Direction::kForward, controls);
    EXPECT_TRUE(aborted);
    EXPECT_EQ(sim.stats().iterations, 3);
  }
}

}  // namespace
}  // namespace ems
