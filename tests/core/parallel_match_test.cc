// Parallel-vs-serial equivalence at the pipeline level: the full
// MatchResult and the harness sweep tables must be bit-identical for
// threads in {0 (hardware), 1, 4} — the determinism contract of
// docs/CONCURRENCY.md.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/matcher.h"
#include "eval/harness.h"
#include "exec/thread_pool.h"
#include "obs/context.h"
#include "synth/dataset.h"

namespace ems {
namespace {

LogPair MakePair(int seed) {
  PairOptions opts;
  opts.num_activities = 25;
  opts.num_traces = 60;
  opts.dislocation = 1;
  opts.seed = seed;
  return MakeLogPair(Testbed::kDsFB, opts);
}

void ExpectIdentical(const MatchResult& a, const MatchResult& b) {
  ASSERT_EQ(a.correspondences.size(), b.correspondences.size());
  for (size_t i = 0; i < a.correspondences.size(); ++i) {
    EXPECT_EQ(a.correspondences[i].events1, b.correspondences[i].events1);
    EXPECT_EQ(a.correspondences[i].events2, b.correspondences[i].events2);
    // Bitwise equality, not approximate: same additions in the same order.
    EXPECT_EQ(a.correspondences[i].similarity, b.correspondences[i].similarity);
  }
  EXPECT_EQ(a.similarity.MaxAbsDifference(b.similarity), 0.0);
  EXPECT_EQ(a.ems_stats.iterations, b.ems_stats.iterations);
  EXPECT_EQ(a.ems_stats.formula_evaluations, b.ems_stats.formula_evaluations);
  EXPECT_EQ(a.ems_stats.pairs_pruned_converged,
            b.ems_stats.pairs_pruned_converged);
}

class ParallelMatchTest : public ::testing::TestWithParam<int> {};

// 0 = hardware concurrency, 1 = explicit serial, 4 = fixed fan-out.
INSTANTIATE_TEST_SUITE_P(Threads, ParallelMatchTest,
                         ::testing::Values(0, 1, 4));

TEST_P(ParallelMatchTest, MatchResultBitIdenticalToSerial) {
  LogPair pair = MakePair(2024);

  MatchOptions serial;
  serial.label_measure = LabelMeasure::kQGramCosine;
  serial.ems.alpha = 0.5;
  serial.ems.num_threads = 1;
  Result<MatchResult> expected = Matcher(serial).Match(pair.log1, pair.log2);
  ASSERT_TRUE(expected.ok());

  MatchOptions parallel = serial;
  parallel.ems.num_threads = GetParam();
  Result<MatchResult> actual = Matcher(parallel).Match(pair.log1, pair.log2);
  ASSERT_TRUE(actual.ok());

  ExpectIdentical(*expected, *actual);
}

TEST_P(ParallelMatchTest, SharedPoolMatchesPrivatePool) {
  LogPair pair = MakePair(77);
  MatchOptions serial;
  serial.ems.num_threads = 1;
  Result<MatchResult> expected = Matcher(serial).Match(pair.log1, pair.log2);
  ASSERT_TRUE(expected.ok());

  // A caller-provided pool (the service configuration) must behave like
  // the lazily created private one.
  exec::ThreadPool pool(exec::ThreadPool::EffectiveThreads(GetParam()));
  MatchOptions pooled;
  pooled.ems.pool = &pool;
  Result<MatchResult> actual = Matcher(pooled).Match(pair.log1, pair.log2);
  ASSERT_TRUE(actual.ok());

  ExpectIdentical(*expected, *actual);
}

TEST_P(ParallelMatchTest, HarnessSweepTableBitIdenticalToSerial) {
  std::vector<LogPair> pairs;
  for (int seed : {11, 12, 13, 14, 15, 16}) pairs.push_back(MakePair(seed));
  std::vector<const LogPair*> ptrs;
  for (const LogPair& p : pairs) ptrs.push_back(&p);

  HarnessOptions options;
  options.use_labels = false;

  for (Method method : {Method::kEms, Method::kEmsEstimated, Method::kOpq}) {
    std::vector<MethodRun> serial =
        RunMethodOnPairs(method, ptrs, options, nullptr);

    const int threads = exec::ThreadPool::EffectiveThreads(GetParam());
    exec::ThreadPool pool(threads);
    std::vector<MethodRun> parallel = RunMethodOnPairs(
        method, ptrs, options, threads > 1 ? &pool : nullptr);

    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      // Everything except wall time must match bit-for-bit; OPQ's
      // hill-climb seeds a private RNG from its options, so even the
      // stochastic method is a pure function of (method, pair, options).
      EXPECT_EQ(serial[i].dnf, parallel[i].dnf) << i;
      EXPECT_EQ(serial[i].quality.precision, parallel[i].quality.precision)
          << i;
      EXPECT_EQ(serial[i].quality.recall, parallel[i].quality.recall) << i;
      EXPECT_EQ(serial[i].quality.f_measure, parallel[i].quality.f_measure)
          << i;
      EXPECT_EQ(serial[i].ems_stats.formula_evaluations,
                parallel[i].ems_stats.formula_evaluations)
          << i;
      EXPECT_EQ(serial[i].composite_stats.formula_evaluations,
                parallel[i].composite_stats.formula_evaluations)
          << i;
    }
  }
}

TEST(ParallelMatchTest, PerPairObsCollectsOneContextPerPair) {
  std::vector<LogPair> pairs = {MakePair(21), MakePair(22), MakePair(23)};
  std::vector<const LogPair*> ptrs;
  for (const LogPair& p : pairs) ptrs.push_back(&p);

  HarnessOptions options;
  exec::ThreadPool pool(4);
  std::vector<std::unique_ptr<ObsContext>> per_pair_obs;
  std::vector<MethodRun> runs =
      RunMethodOnPairs(Method::kEms, ptrs, options, &pool, &per_pair_obs);
  ASSERT_EQ(runs.size(), ptrs.size());
  ASSERT_EQ(per_pair_obs.size(), ptrs.size());
  for (const auto& obs : per_pair_obs) {
    ASSERT_NE(obs, nullptr);
    // Each pair recorded its own span tree (match + phases).
    EXPECT_FALSE(obs->trace.Snapshot().empty());
  }
}

}  // namespace
}  // namespace ems
