// The EMS+es path through the composite matcher (use_estimation): must be
// cheaper than exact evaluation and still produce valid, deterministic
#include <set>
// results.
#include <gtest/gtest.h>

#include "core/composite_matcher.h"
#include "core/matcher.h"
#include "synth/dataset.h"

namespace ems {
namespace {

LogPair CompositePair(uint64_t seed) {
  PairOptions opts;
  opts.num_activities = 10;
  opts.num_traces = 80;
  opts.num_composites = 2;
  opts.dislocation = 1;
  opts.seed = seed;
  return MakeLogPair(Testbed::kDsFB, opts);
}

TEST(CompositeEstimationTest, RunsAndProducesValidComposites) {
  LogPair pair = CompositePair(1);
  CompositeOptions opts;
  opts.use_estimation = true;
  opts.estimation_iterations = 5;
  CompositeMatcher matcher(pair.log1, pair.log2, opts);
  Result<CompositeMatchResult> result = matcher.Match();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& side : {result->composites1, result->composites2}) {
    std::set<EventId> used;
    for (const auto& comp : side) {
      for (EventId e : comp) EXPECT_TRUE(used.insert(e).second);
    }
  }
  EXPECT_GE(result->average_similarity, 0.0);
  EXPECT_LE(result->average_similarity, 1.0);
}

TEST(CompositeEstimationTest, CheaperThanExact) {
  LogPair pair = CompositePair(2);
  CompositeOptions exact_opts;
  exact_opts.prune_unchanged = false;  // compare raw iteration costs
  exact_opts.prune_bounds = false;
  CompositeOptions est_opts = exact_opts;
  est_opts.use_estimation = true;
  est_opts.estimation_iterations = 2;
  CompositeMatcher exact(pair.log1, pair.log2, exact_opts);
  CompositeMatcher estimated(pair.log1, pair.log2, est_opts);
  Result<CompositeMatchResult> r_exact = exact.Match();
  Result<CompositeMatchResult> r_est = estimated.Match();
  ASSERT_TRUE(r_exact.ok() && r_est.ok());
  EXPECT_LT(r_est->stats.formula_evaluations,
            r_exact->stats.formula_evaluations);
}

TEST(CompositeEstimationTest, Deterministic) {
  LogPair pair = CompositePair(3);
  CompositeOptions opts;
  opts.use_estimation = true;
  CompositeMatcher a(pair.log1, pair.log2, opts);
  CompositeMatcher b(pair.log1, pair.log2, opts);
  Result<CompositeMatchResult> ra = a.Match();
  Result<CompositeMatchResult> rb = b.Match();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_EQ(ra->composites1, rb->composites1);
  EXPECT_EQ(ra->composites2, rb->composites2);
  EXPECT_DOUBLE_EQ(ra->average_similarity, rb->average_similarity);
}

TEST(CompositeEstimationTest, MatcherFacadeRoutesEstimatedEngine) {
  LogPair pair = CompositePair(4);
  MatchOptions opts;
  opts.engine = SimilarityEngine::kEstimated;
  opts.estimation_iterations = 3;
  opts.match_composites = true;
  Matcher matcher(opts);
  Result<MatchResult> result = matcher.Match(pair.log1, pair.log2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->correspondences.empty());
}

}  // namespace
}  // namespace ems
