#include "core/match_report.h"
#include <algorithm>
#include "util/json_writer.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

TEST(MatchReportTest, JsonContainsCorrespondences) {
  EventLog log1 = testing::BuildPaperLog1();
  EventLog log2 = testing::BuildPaperLog2();
  Matcher matcher;
  Result<MatchResult> result = matcher.Match(log1, log2);
  ASSERT_TRUE(result.ok());
  std::string json = MatchResultToJson(*result);
  EXPECT_NE(json.find("\"correspondences\":["), std::string::npos);
  EXPECT_NE(json.find("\"similarity\":"), std::string::npos);
  EXPECT_NE(json.find("\"stats\":{"), std::string::npos);
  EXPECT_NE(json.find("\"left_events\":6"), std::string::npos);
  EXPECT_NE(json.find("\"right_events\":6"), std::string::npos);
  // Every correspondence's left name appears.
  for (const Correspondence& c : result->correspondences) {
    EXPECT_NE(json.find(JsonWriter::Escape(c.events1[0])),
              std::string::npos);
  }
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(MatchReportTest, ConformanceJson) {
  ConformanceReport report;
  report.vocabulary_overlap = 0.8;
  report.relation_overlap = 0.6;
  report.trace_coverage_1in2 = 0.9;
  report.trace_coverage_2in1 = 0.7;
  report.f_conformance = 0.7875;
  std::string json = ConformanceToJson(report);
  EXPECT_NE(json.find("\"vocabulary_overlap\":0.8"), std::string::npos);
  EXPECT_NE(json.find("\"f_conformance\":0.7875"), std::string::npos);
}

}  // namespace
}  // namespace ems
