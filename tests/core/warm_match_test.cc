// Warm-start matching: seeded EMS runs must land on the same fixpoint as
// cold runs (byte-identical on acyclic instances under run_to_horizon,
// and on identical-state resumes in one iteration), and the warm match
// pipeline must save iterations on cyclic instances while reporting the
// same correspondences.
#include "core/warm_match.h"

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ems_similarity.h"
#include "graph/streaming_graph.h"
#include "log/event_log.h"
#include "synth/dataset.h"

namespace ems {
namespace {

void ExpectMatricesBitIdentical(const SimilarityMatrix& got,
                                const SimilarityMatrix& want) {
  ASSERT_EQ(got.rows(), want.rows());
  ASSERT_EQ(got.cols(), want.cols());
  for (size_t i = 0; i < got.data().size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint64_t>(got.data()[i]),
              std::bit_cast<uint64_t>(want.data()[i]))
        << "cell " << i;
  }
}

EventLog AcyclicLog() {
  EventLog log;
  log.AddTrace({"a", "b", "c", "e"});
  log.AddTrace({"a", "c", "d", "e"});
  log.AddTrace({"a", "b", "d"});
  log.AddTrace({"b", "c", "e"});
  return log;
}

EventLog CyclicLog() {
  EventLog log;
  log.AddTrace({"a", "b", "c", "b", "c", "d"});
  log.AddTrace({"a", "c", "b", "c", "d"});
  log.AddTrace({"a", "b", "d"});
  return log;
}

TEST(WarmMatchTest, SeededRunToHorizonIsByteIdenticalToCold) {
  EventLog log1 = AcyclicLog();
  EventLog log2;
  log2.AddTrace({"a", "b", "d", "e"});
  log2.AddTrace({"a", "c", "e"});
  log2.AddTrace({"b", "d", "e"});
  DependencyGraph g1 = DependencyGraph::Build(log1);
  DependencyGraph g2 = DependencyGraph::Build(log2);

  EmsOptions cold_opts;
  cold_opts.run_to_horizon = true;
  cold_opts.capture_direction_matrices = true;
  EmsSimilarity cold(g1, g2, cold_opts);
  SimilarityMatrix cold_result = cold.Compute();
  ASSERT_NE(cold.captured_forward(), nullptr);
  ASSERT_NE(cold.captured_backward(), nullptr);
  SimilarityMatrix seed_fwd = *cold.captured_forward();
  SimilarityMatrix seed_bwd = *cold.captured_backward();

  // Perturb the seed: any starting matrix must land on the same bits
  // once every pair has been iterated through its horizon.
  SimilarityMatrix junk_fwd = seed_fwd;
  SimilarityMatrix junk_bwd = seed_bwd;
  for (NodeId v1 = 1; v1 < static_cast<NodeId>(g1.NumNodes()); ++v1) {
    for (NodeId v2 = 1; v2 < static_cast<NodeId>(g2.NumNodes()); ++v2) {
      junk_fwd.set(v1, v2, 0.123 + 0.5 * junk_fwd.at(v1, v2));
      junk_bwd.set(v1, v2, 0.987 - 0.5 * junk_bwd.at(v1, v2));
    }
  }
  EmsSeed seed;
  seed.forward = &junk_fwd;
  seed.backward = &junk_bwd;
  EmsOptions warm_opts = cold_opts;
  warm_opts.seed = &seed;
  EmsSimilarity warm(g1, g2, warm_opts);
  SimilarityMatrix warm_result = warm.Compute();
  ExpectMatricesBitIdentical(warm_result, cold_result);
}

TEST(WarmMatchTest, AllCleanHintsResumeInOneIteration) {
  EventLog log1 = CyclicLog();
  EventLog log2 = AcyclicLog();
  DependencyGraph g1 = DependencyGraph::Build(log1);
  DependencyGraph g2 = DependencyGraph::Build(log2);

  EmsOptions opts;
  opts.capture_direction_matrices = true;
  EmsSimilarity cold(g1, g2, opts);
  SimilarityMatrix cold_result = cold.Compute();
  const int cold_iters = cold.stats().iterations;
  EXPECT_GT(cold_iters, 1);
  SimilarityMatrix seed_fwd = *cold.captured_forward();
  SimilarityMatrix seed_bwd = *cold.captured_backward();

  std::vector<uint8_t> clean_rows(g1.NumNodes(), 0);
  std::vector<uint8_t> clean_cols(g2.NumNodes(), 0);
  EmsSeed seed;
  seed.forward = &seed_fwd;
  seed.backward = &seed_bwd;
  seed.changed_rows = &clean_rows;
  seed.changed_cols = &clean_cols;
  EmsOptions warm_opts = opts;
  warm_opts.seed = &seed;
  EmsSimilarity warm(g1, g2, warm_opts);
  SimilarityMatrix warm_result = warm.Compute();
  EXPECT_EQ(warm.stats().iterations, 1);
  ExpectMatricesBitIdentical(warm_result, cold_result);
}

TEST(WarmMatchTest, SeedWithoutHintsConvergesToSameFixpointOnCycles) {
  EventLog log1 = CyclicLog();
  EventLog log2;
  log2.AddTrace({"a", "c", "b", "d", "b", "d"});
  log2.AddTrace({"a", "b", "c", "d"});
  DependencyGraph g1 = DependencyGraph::Build(log1);
  DependencyGraph g2 = DependencyGraph::Build(log2);

  EmsOptions opts;
  opts.epsilon = 1e-9;
  opts.capture_direction_matrices = true;
  EmsSimilarity cold(g1, g2, opts);
  SimilarityMatrix cold_result = cold.Compute();
  const int cold_iters = cold.stats().iterations;
  SimilarityMatrix seed_fwd = *cold.captured_forward();
  SimilarityMatrix seed_bwd = *cold.captured_backward();

  // Re-running seeded with the fixpoint (null hints: everything marked
  // changed) must converge far faster and stay within epsilon.
  EmsSeed seed;
  seed.forward = &seed_fwd;
  seed.backward = &seed_bwd;
  EmsOptions warm_opts = opts;
  warm_opts.seed = &seed;
  EmsSimilarity warm(g1, g2, warm_opts);
  SimilarityMatrix warm_result = warm.Compute();
  EXPECT_LT(warm.stats().iterations, cold_iters);
  EXPECT_LE(warm_result.MaxAbsDifference(cold_result), opts.epsilon);
}

TEST(WarmMatchTest, PipelineColdThenAppendSavesIterations) {
  PairOptions pair_opts;
  pair_opts.num_activities = 14;
  pair_opts.num_traces = 80;
  pair_opts.seed = 11;
  LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
  EventLog log1 = pair.log1;
  EventLog log2 = pair.log2;

  MatchOptions options;
  options.ems.epsilon = 1e-7;
  StreamingDependencyGraph stream1(log1);
  DependencyGraph g2 = DependencyGraph::Build(log2);

  WarmSeed seed;
  WarmMatchStats cold_stats;
  Result<MatchResult> cold = MatchWithGraphsWarm(
      options, log1, log2, stream1.graph(), g2, nullptr,
      /*assume_unchanged=*/false, &seed, &cold_stats);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold_stats.warm);
  EXPECT_TRUE(seed.valid);
  EXPECT_EQ(seed.cold_iterations, cold_stats.iterations);

  // Append a few traces to log1 and warm re-match.
  AppendDelta delta = log1.AppendTraces(
      {{"act0", "act1", "act2"}, {"act1", "act3"}});
  stream1.ApplyAppend(delta.first_new_trace);

  WarmSeed next;
  WarmMatchStats warm_stats;
  Result<MatchResult> warm = MatchWithGraphsWarm(
      options, log1, log2, stream1.graph(), g2, &seed,
      /*assume_unchanged=*/false, &next, &warm_stats);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm_stats.warm);
  EXPECT_LE(warm_stats.iterations, seed.cold_iterations);
  EXPECT_EQ(warm_stats.iterations_saved,
            seed.cold_iterations - warm_stats.iterations);
  // The baseline survives into the next generation.
  EXPECT_EQ(next.cold_iterations, seed.cold_iterations);

  // Exactness: the warm result equals a cold recompute on the appended
  // logs to within the stop threshold.
  WarmMatchStats ref_stats;
  Result<MatchResult> ref = MatchWithGraphsWarm(
      options, log1, log2, stream1.graph(), g2, nullptr,
      /*assume_unchanged=*/false, nullptr, &ref_stats);
  ASSERT_TRUE(ref.ok());
  EXPECT_LE(warm->similarity.MaxAbsDifference(ref->similarity),
            options.ems.epsilon);
  ASSERT_EQ(warm->correspondences.size(), ref->correspondences.size());
}

TEST(WarmMatchTest, AssumeUnchangedResumeIsByteIdentical) {
  EventLog log1 = CyclicLog();
  EventLog log2 = AcyclicLog();
  DependencyGraph g1 = DependencyGraph::Build(log1);
  DependencyGraph g2 = DependencyGraph::Build(log2);

  MatchOptions options;
  WarmSeed seed;
  Result<MatchResult> cold = MatchWithGraphsWarm(
      options, log1, log2, g1, g2, nullptr, false, &seed, nullptr);
  ASSERT_TRUE(cold.ok());

  WarmMatchStats stats;
  Result<MatchResult> resumed = MatchWithGraphsWarm(
      options, log1, log2, g1, g2, &seed, /*assume_unchanged=*/true,
      nullptr, &stats);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(stats.iterations, 1);
  ExpectMatricesBitIdentical(resumed->similarity, cold->similarity);
  ASSERT_EQ(resumed->correspondences.size(), cold->correspondences.size());
  for (size_t i = 0; i < cold->correspondences.size(); ++i) {
    EXPECT_EQ(resumed->correspondences[i].events1,
              cold->correspondences[i].events1);
    EXPECT_EQ(resumed->correspondences[i].events2,
              cold->correspondences[i].events2);
    EXPECT_EQ(std::bit_cast<uint64_t>(resumed->correspondences[i].similarity),
              std::bit_cast<uint64_t>(cold->correspondences[i].similarity));
  }
}

TEST(WarmMatchTest, RejectsCompositeAndEstimatedPipelines) {
  EventLog log1 = AcyclicLog();
  EventLog log2 = AcyclicLog();
  DependencyGraph g1 = DependencyGraph::Build(log1);
  DependencyGraph g2 = DependencyGraph::Build(log2);
  MatchOptions composites;
  composites.match_composites = true;
  EXPECT_TRUE(MatchWithGraphsWarm(composites, log1, log2, g1, g2, nullptr,
                                  false, nullptr, nullptr)
                  .status()
                  .IsInvalidArgument());
  MatchOptions estimated;
  estimated.engine = SimilarityEngine::kEstimated;
  EXPECT_TRUE(MatchWithGraphsWarm(estimated, log1, log2, g1, g2, nullptr,
                                  false, nullptr, nullptr)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace ems
