#include "core/estimation_error.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "synth/dataset.h"

namespace ems {
namespace {

EmsOptions ForwardOpts() {
  EmsOptions opts;
  opts.direction = Direction::kForward;
  return opts;
}

TEST(EstimationErrorTest, FiniteHorizonPairsExactAtLargeI) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  DependencyGraph g2 = testing::BuildPaperGraph2();
  EstimationErrorReport report =
      AnalyzeEstimationError(g1, g2, /*exact_iterations=*/60, ForwardOpts());
  EXPECT_LT(report.max_error_finite_horizon, 1e-6);
  EXPECT_EQ(report.pairs, 36u);
}

TEST(EstimationErrorTest, ErrorShrinksAlongTheCurve) {
  PairOptions opts;
  opts.num_activities = 14;
  opts.num_traces = 80;
  opts.dislocation = 1;
  opts.seed = 321;
  LogPair pair = MakeLogPair(Testbed::kDsFB, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  std::vector<EstimationErrorReport> curve =
      EstimationErrorCurve(g1, g2, {0, 5, 20}, ForwardOpts());
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_GE(curve[0].mean_abs_error, curve[2].mean_abs_error - 1e-9);
  EXPECT_GT(curve[0].pairs, 0u);
  for (const EstimationErrorReport& r : curve) {
    EXPECT_LE(r.mean_abs_error, r.max_abs_error + 1e-12);
    EXPECT_LE(r.rmse, r.max_abs_error + 1e-12);
    EXPECT_GE(r.undershoot_fraction, 0.0);
    EXPECT_LE(r.undershoot_fraction, 1.0);
  }
}

TEST(EstimationErrorTest, ReportsIUsed) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  DependencyGraph g2 = testing::BuildPaperGraph2();
  EstimationErrorReport r = AnalyzeEstimationError(g1, g2, 3, ForwardOpts());
  EXPECT_EQ(r.exact_iterations, 3);
}

}  // namespace
}  // namespace ems
