#include "core/repository.h"

#include <cstring>

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "synth/dataset.h"

namespace ems {
namespace {

EventLog VariantLog(uint64_t seed, int activities) {
  PairOptions opts;
  opts.num_activities = activities;
  opts.num_traces = 60;
  opts.dislocation = 0;
  opts.opaque = false;
  opts.seed = seed;
  return MakeLogPair(Testbed::kDsFB, opts).log1;
}

TEST(RepositoryTest, AddRemoveNames) {
  LogRepository repo;
  EXPECT_TRUE(repo.Add("a", VariantLog(1, 8)).ok());
  EXPECT_TRUE(repo.Add("b", VariantLog(2, 8)).ok());
  EXPECT_EQ(repo.size(), 2u);
  EXPECT_EQ(repo.Names(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(repo.Add("a", VariantLog(3, 8)).IsInvalidArgument());
  EXPECT_TRUE(repo.Add("", VariantLog(3, 8)).IsInvalidArgument());
  EXPECT_TRUE(repo.Remove("a").ok());
  EXPECT_EQ(repo.size(), 1u);
  EXPECT_TRUE(repo.Remove("a").IsNotFound());
}

TEST(RepositoryTest, GetByName) {
  LogRepository repo;
  EventLog log = VariantLog(5, 6);
  size_t traces = log.NumTraces();
  ASSERT_TRUE(repo.Add("x", std::move(log)).ok());
  Result<const EventLog*> fetched = repo.Get("x");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ((*fetched)->NumTraces(), traces);
  EXPECT_TRUE(repo.Get("missing").status().IsNotFound());
}

TEST(RepositoryTest, QueryRanksTheTwinFirst) {
  // A warehouse query uses labels when they exist (the realistic
  // configuration); structure alone cannot distinguish same-size random
  // processes reliably.
  MatchOptions match_opts;
  match_opts.ems.alpha = 0.5;
  match_opts.label_measure = LabelMeasure::kQGramCosine;
  LogRepository repo(match_opts);
  // Three different processes in the repository.
  ASSERT_TRUE(repo.Add("proc_a", VariantLog(11, 10)).ok());
  ASSERT_TRUE(repo.Add("proc_b", VariantLog(22, 10)).ok());
  ASSERT_TRUE(repo.Add("proc_c", VariantLog(33, 10)).ok());
  // The query is another play-out of proc_b's specification (log2 of the
  // same pair: drifted probabilities, one dropped activity).
  PairOptions opts;
  opts.num_activities = 10;
  opts.num_traces = 60;
  opts.dislocation = 0;
  opts.opaque = false;
  opts.seed = 22;
  EventLog query = MakeLogPair(Testbed::kDsFB, opts).log2;

  Result<std::vector<RepositoryHit>> hits = repo.Query(query, 3);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 3u);
  EXPECT_EQ((*hits)[0].name, "proc_b");
  EXPECT_GE((*hits)[0].score, (*hits)[1].score);
  EXPECT_GE((*hits)[1].score, (*hits)[2].score);
  EXPECT_FALSE((*hits)[0].match.correspondences.empty());
}

TEST(RepositoryTest, TopKTruncates) {
  LogRepository repo;
  const char* names[] = {"p1", "p2", "p3", "p4"};
  for (uint64_t s = 1; s <= 4; ++s) {
    ASSERT_TRUE(repo.Add(names[s - 1], VariantLog(s * 7, 8)).ok());
  }
  Result<std::vector<RepositoryHit>> hits =
      repo.Query(VariantLog(7, 8), 2);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 2u);
}

// The index-backed Query must reproduce the brute-force scan byte for
// byte — names, order, and bitwise scores — for any pool.
TEST(RepositoryTest, QueryMatchesBruteForceByteForByte) {
  MatchOptions match_opts;
  match_opts.ems.alpha = 0.5;
  match_opts.label_measure = LabelMeasure::kQGramCosine;
  LogRepository repo(match_opts);
  for (uint64_t s = 1; s <= 6; ++s) {
    std::string name = "p";
    name += static_cast<char>('0' + s);
    ASSERT_TRUE(repo.Add(name, VariantLog(s * 13, 8)).ok());
  }
  exec::ThreadPool pool(3);
  const EventLog query = VariantLog(3 * 13, 8);
  for (exec::ThreadPool* p :
       {static_cast<exec::ThreadPool*>(nullptr), &pool}) {
    Result<std::vector<RepositoryHit>> fast = repo.Query(query, 4, p);
    Result<std::vector<RepositoryHit>> brute =
        repo.QueryBruteForce(query, 4, p);
    ASSERT_TRUE(fast.ok() && brute.ok());
    ASSERT_EQ(fast->size(), brute->size());
    for (size_t i = 0; i < fast->size(); ++i) {
      EXPECT_EQ((*fast)[i].name, (*brute)[i].name) << "rank " << i;
      EXPECT_EQ(std::memcmp(&(*fast)[i].score, &(*brute)[i].score,
                            sizeof(double)),
                0)
          << "rank " << i;
    }
  }
}

TEST(RepositoryTest, EmptyRepositoryYieldsNoHits) {
  LogRepository repo;
  Result<std::vector<RepositoryHit>> hits = repo.Query(VariantLog(1, 6));
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(hits->empty());
}

}  // namespace
}  // namespace ems
