#include "core/composite_candidates.h"
#include <set>

#include <gtest/gtest.h>

namespace ems {
namespace {

EventLog CompositeLog() {
  EventLog log;
  // c and d always occur consecutively; a/b vary.
  log.AddTrace({"a", "c", "d", "e"});
  log.AddTrace({"b", "c", "d", "e"});
  log.AddTrace({"a", "c", "d"});
  return log;
}

TEST(CandidatesTest, FindsStrictSeqPair) {
  EventLog log = CompositeLog();
  CandidateOptions opts;
  opts.min_confidence = 1.0;
  std::vector<CompositeCandidate> cands = DiscoverCandidates(log, opts);
  EventId c = log.FindEvent("c");
  EventId d = log.FindEvent("d");
  bool found_cd = false;
  for (const auto& cand : cands) {
    if (cand.events == std::vector<EventId>{c, d}) {
      found_cd = true;
      EXPECT_DOUBLE_EQ(cand.confidence, 1.0);
    }
    // No candidate may involve "a" or "b": they are not always followed /
    // preceded consistently.
    for (EventId e : cand.events) {
      EXPECT_NE(e, log.FindEvent("a"));
      EXPECT_NE(e, log.FindEvent("b"));
    }
  }
  EXPECT_TRUE(found_cd);
}

TEST(CandidatesTest, DEFollowedByEIsNotAlwaysMutual) {
  // d -> e holds in 2 of 3 d-occurrences only; must not qualify at 1.0.
  EventLog log = CompositeLog();
  CandidateOptions opts;
  opts.min_confidence = 1.0;
  std::vector<CompositeCandidate> cands = DiscoverCandidates(log, opts);
  EventId d = log.FindEvent("d");
  EventId e = log.FindEvent("e");
  for (const auto& cand : cands) {
    EXPECT_NE(cand.events, (std::vector<EventId>{d, e}));
  }
}

TEST(CandidatesTest, LowerConfidenceAdmitsMore) {
  EventLog log = CompositeLog();
  CandidateOptions strict;
  strict.min_confidence = 1.0;
  CandidateOptions loose;
  loose.min_confidence = 0.5;
  EXPECT_GE(DiscoverCandidates(log, loose).size(),
            DiscoverCandidates(log, strict).size());
}

TEST(CandidatesTest, ChainsExtendToMaxSize) {
  EventLog log;
  log.AddTrace({"w", "x", "y", "z"});
  log.AddTrace({"w", "x", "y", "z"});
  CandidateOptions opts;
  opts.min_confidence = 1.0;
  opts.max_size = 4;
  std::vector<CompositeCandidate> cands = DiscoverCandidates(log, opts);
  // Expect the full chain w x y z among candidates.
  bool found_chain = false;
  for (const auto& cand : cands) {
    if (cand.events.size() == 4) found_chain = true;
  }
  EXPECT_TRUE(found_chain);

  opts.max_size = 2;
  for (const auto& cand : DiscoverCandidates(log, opts)) {
    EXPECT_LE(cand.events.size(), 2u);
  }
}

TEST(CandidatesTest, MaxCandidatesCapsOutput) {
  EventLog log;
  log.AddTrace({"w", "x", "y", "z"});
  log.AddTrace({"w", "x", "y", "z"});
  CandidateOptions opts;
  opts.min_confidence = 1.0;
  opts.max_candidates = 2;
  EXPECT_LE(DiscoverCandidates(log, opts).size(), 2u);
}

TEST(CandidatesTest, MinSupportFiltersRarePairs) {
  EventLog log;
  log.AddTrace({"a", "b"});
  log.AddTrace({"c"});
  CandidateOptions opts;
  opts.min_confidence = 1.0;
  opts.min_support = 2;  // "a b" occurs only once
  EXPECT_TRUE(DiscoverCandidates(log, opts).empty());
}

TEST(CandidatesTest, EmptyLogYieldsNothing) {
  EventLog log;
  EXPECT_TRUE(DiscoverCandidates(log).empty());
}

TEST(CandidatesTest, RepeatedEventNotChainedIntoCycle) {
  EventLog log;
  log.AddTrace({"a", "b", "a", "b"});
  CandidateOptions opts;
  opts.min_confidence = 0.4;
  opts.max_size = 4;
  // Chains must not loop a-b-a...
  for (const auto& cand : DiscoverCandidates(log, opts)) {
    std::set<EventId> unique(cand.events.begin(), cand.events.end());
    EXPECT_EQ(unique.size(), cand.events.size());
  }
}

TEST(CandidatesTest, DeterministicOrdering) {
  EventLog log = CompositeLog();
  auto a = DiscoverCandidates(log);
  auto b = DiscoverCandidates(log);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].events, b[i].events);
}

}  // namespace
}  // namespace ems
