#include "core/composite_matcher.h"

#include <gtest/gtest.h>

#include "exec/thread_pool.h"
#include "paper_example.h"
#include "synth/dataset.h"

namespace ems {
namespace {

using testing::BuildPaperLog1;
using testing::BuildPaperLog2;

CompositeOptions Opts() {
  CompositeOptions opts;
  opts.delta = 0.001;
  opts.ems.alpha = 1.0;
  opts.ems.c = 0.8;
  return opts;
}

// A generated pair with an injected composite: log 2 merged a strict SEQ
// pair (a, b) into one event; the greedy matcher should merge {a, b} in
// log 1. (The hand-reconstructed paper-example logs are too structurally
// uniform — all traces identical up to one XOR — for any objective to
// separate the true merge from its neighbors, so composite recovery is
// asserted on generated data with known injections instead.)
TEST(CompositeMatcherTest, RecoversInjectedComposite) {
  PairOptions pair_opts;
  pair_opts.num_activities = 10;
  pair_opts.num_traces = 80;
  pair_opts.num_composites = 2;
  pair_opts.dislocation = 1;
  pair_opts.seed = 1;
  LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
  ASSERT_TRUE(pair.has_composites);

  std::set<std::vector<std::string>> wanted;
  for (const TruthEntry& e : pair.truth.entries()) {
    if (e.left.size() == 2) {
      std::vector<std::string> sorted = e.left;
      std::sort(sorted.begin(), sorted.end());
      wanted.insert(sorted);
    }
  }
  ASSERT_FALSE(wanted.empty());

  CompositeOptions opts = Opts();
  opts.delta = 0.005;
  CompositeMatcher matcher(pair.log1, pair.log2, opts);
  Result<CompositeMatchResult> result = matcher.Match();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  size_t recovered = 0;
  for (const auto& comp : result->composites1) {
    std::vector<std::string> names;
    for (EventId e : comp) names.push_back(pair.log1.EventName(e));
    std::sort(names.begin(), names.end());
    if (wanted.count(names)) ++recovered;
  }
  EXPECT_GE(recovered, 1u);
  EXPECT_GE(result->stats.merges_accepted, 1);
}

TEST(CompositeMatcherTest, PaperLogsProduceValidDisjointComposites) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  CompositeMatcher matcher(log1, log2, Opts());
  Result<CompositeMatchResult> result = matcher.Match();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Whatever was merged must be pairwise disjoint per side.
  for (const auto& side : {result->composites1, result->composites2}) {
    std::set<EventId> used;
    for (const auto& comp : side) {
      EXPECT_GE(comp.size(), 2u);
      for (EventId e : comp) EXPECT_TRUE(used.insert(e).second);
    }
  }
}

TEST(CompositeMatcherTest, MergingImprovesAverageSimilarity) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  // Baseline: no composite matching (empty candidate sets).
  CompositeMatcher baseline(log1, log2, Opts());
  baseline.SetCandidates({}, {});
  Result<CompositeMatchResult> base = baseline.Match();
  ASSERT_TRUE(base.ok());

  CompositeMatcher matcher(log1, log2, Opts());
  Result<CompositeMatchResult> merged = matcher.Match();
  ASSERT_TRUE(merged.ok());
  EXPECT_GE(merged->average_similarity, base->average_similarity);
}

TEST(CompositeMatcherTest, HighDeltaBlocksAllMerges) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  CompositeOptions opts = Opts();
  opts.delta = 0.9;  // unreachable improvement
  CompositeMatcher matcher(log1, log2, opts);
  Result<CompositeMatchResult> result = matcher.Match();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->composites1.empty());
  EXPECT_TRUE(result->composites2.empty());
  EXPECT_EQ(result->stats.merges_accepted, 0);
}

TEST(CompositeMatcherTest, PruningConfigurationsAgreeOnResult) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  double reference_avg = -1.0;
  std::vector<std::vector<EventId>> reference_w1;
  for (bool uc : {false, true}) {
    for (bool bd : {false, true}) {
      CompositeOptions opts = Opts();
      opts.prune_unchanged = uc;
      opts.prune_bounds = bd;
      CompositeMatcher matcher(log1, log2, opts);
      Result<CompositeMatchResult> result = matcher.Match();
      ASSERT_TRUE(result.ok());
      if (reference_avg < 0) {
        reference_avg = result->average_similarity;
        reference_w1 = result->composites1;
      } else {
        EXPECT_NEAR(result->average_similarity, reference_avg, 1e-3)
            << "uc=" << uc << " bd=" << bd;
        EXPECT_EQ(result->composites1, reference_w1);
      }
    }
  }
}

TEST(CompositeMatcherTest, UcPruningFreezesRows) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  CompositeOptions opts = Opts();
  opts.prune_unchanged = true;
  opts.prune_bounds = false;
  CompositeMatcher matcher(log1, log2, opts);
  Result<CompositeMatchResult> result = matcher.Match();
  ASSERT_TRUE(result.ok());
  if (result->stats.merges_accepted > 0) {
    EXPECT_GT(result->stats.rows_frozen, 0u);
  }
}

TEST(CompositeMatcherTest, UcPruningSavesFormulaEvaluations) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  CompositeOptions with_uc = Opts();
  with_uc.prune_unchanged = true;
  with_uc.prune_bounds = false;
  CompositeOptions without = Opts();
  without.prune_unchanged = false;
  without.prune_bounds = false;
  CompositeMatcher m1(log1, log2, with_uc);
  CompositeMatcher m2(log1, log2, without);
  Result<CompositeMatchResult> r1 = m1.Match();
  Result<CompositeMatchResult> r2 = m2.Match();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_LE(r1->stats.formula_evaluations, r2->stats.formula_evaluations);
}

TEST(CompositeMatcherTest, ExplicitCandidatesRestrictSearch) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  EventId ship = log1.FindEvent("ShipGoods");
  EventId email = log1.FindEvent("EmailCustomer");
  CompositeMatcher matcher(log1, log2, Opts());
  // Only offer the wrong candidate {ShipGoods, EmailCustomer}.
  matcher.SetCandidates({CompositeCandidate{{ship, email}, 1.0}}, {});
  Result<CompositeMatchResult> result = matcher.Match();
  ASSERT_TRUE(result.ok());
  for (const auto& comp : result->composites1) {
    // If anything was merged it can only be the offered candidate.
    EXPECT_EQ(comp.size(), 2u);
  }
  EXPECT_EQ(result->stats.candidates_evaluated,
            result->stats.merges_accepted == 0
                ? 1
                : result->stats.candidates_evaluated);
}

TEST(CompositeMatcherTest, GreedyMatchesExactOnSmallInstance) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  CandidateOptions cand_opts;
  cand_opts.min_confidence = 1.0;
  std::vector<CompositeCandidate> c1 = DiscoverCandidates(log1, cand_opts);
  std::vector<CompositeCandidate> c2 = DiscoverCandidates(log2, cand_opts);
  Result<CompositeMatchResult> exact =
      ExactCompositeMatch(log1, log2, c1, c2, Opts());
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();

  CompositeMatcher matcher(log1, log2, Opts());
  matcher.SetCandidates(c1, c2);
  Result<CompositeMatchResult> greedy = matcher.Match();
  ASSERT_TRUE(greedy.ok());
  // Greedy cannot beat the optimum; on this easy instance it should tie
  // (within the acceptance threshold delta per merge step).
  EXPECT_LE(greedy->average_similarity, exact->average_similarity + 1e-9);
  EXPECT_NEAR(greedy->average_similarity, exact->average_similarity, 0.02);
}

TEST(CompositeMatcherTest, ExactMatcherRespectsCombinationBudget) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  std::vector<CompositeCandidate> many;
  for (EventId e = 0; e + 1 < static_cast<EventId>(log1.NumEvents()); ++e) {
    many.push_back(CompositeCandidate{{e, static_cast<EventId>(e + 1)}, 1.0});
  }
  Result<CompositeMatchResult> r =
      ExactCompositeMatch(log1, log2, many, many, Opts(), nullptr,
                          /*max_combinations=*/2);
  EXPECT_TRUE(r.status().IsResourceExhausted());
}

TEST(CompositeMatcherTest, ResultGraphsReflectMerges) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  CompositeMatcher matcher(log1, log2, Opts());
  Result<CompositeMatchResult> result = matcher.Match();
  ASSERT_TRUE(result.ok());
  size_t merged_members = 0;
  for (NodeId v = 1; v < static_cast<NodeId>(result->graph1.NumNodes()); ++v) {
    if (result->graph1.Members(v).size() > 1) ++merged_members;
  }
  EXPECT_EQ(merged_members, result->composites1.size());
  EXPECT_EQ(result->similarity.rows(), result->graph1.NumNodes());
  EXPECT_EQ(result->similarity.cols(), result->graph2.NumNodes());
}

LogPair InjectedPair() {
  PairOptions pair_opts;
  pair_opts.num_activities = 10;
  pair_opts.num_traces = 80;
  pair_opts.num_composites = 2;
  pair_opts.dislocation = 1;
  pair_opts.seed = 1;
  return MakeLogPair(Testbed::kDsFB, pair_opts);
}

// The fast paths (incremental graph summaries, the label cache, and the
// parallel greedy step) must be invisible in the result: same composites,
// bitwise-equal objective, and a similarity matrix with zero deviation
// from the serial reference configuration.
void ExpectBitIdentical(const CompositeMatchResult& ref,
                        const CompositeMatchResult& got,
                        const std::string& what) {
  EXPECT_EQ(ref.composites1, got.composites1) << what;
  EXPECT_EQ(ref.composites2, got.composites2) << what;
  EXPECT_EQ(ref.average_similarity, got.average_similarity) << what;
  ASSERT_EQ(ref.similarity.rows(), got.similarity.rows()) << what;
  ASSERT_EQ(ref.similarity.cols(), got.similarity.cols()) << what;
  EXPECT_EQ(ref.similarity.MaxAbsDifference(got.similarity), 0.0) << what;
}

TEST(CompositeMatcherTest, FastPathsBitIdenticalToReference) {
  LogPair pair = InjectedPair();
  QGramCosineSimilarity qgram;
  CompositeOptions reference_opts = Opts();
  reference_opts.delta = 0.005;
  reference_opts.ems.alpha = 0.5;
  reference_opts.incremental_graphs = false;
  reference_opts.cache_labels = false;
  CompositeMatcher reference(pair.log1, pair.log2, reference_opts, &qgram);
  Result<CompositeMatchResult> ref = reference.Match();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (bool incremental : {false, true}) {
    for (bool cache : {false, true}) {
      if (!incremental && !cache) continue;  // that IS the reference
      CompositeOptions opts = reference_opts;
      opts.incremental_graphs = incremental;
      opts.cache_labels = cache;
      CompositeMatcher matcher(pair.log1, pair.log2, opts, &qgram);
      Result<CompositeMatchResult> got = matcher.Match();
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectBitIdentical(*ref, *got,
                         "incremental=" + std::to_string(incremental) +
                             " cache=" + std::to_string(cache));
    }
  }
}

TEST(CompositeMatcherTest, ParallelStepBitIdenticalToSerial) {
  LogPair pair = InjectedPair();
  QGramCosineSimilarity qgram;
  CompositeOptions serial_opts = Opts();
  serial_opts.delta = 0.005;
  serial_opts.ems.alpha = 0.5;
  serial_opts.num_threads = 1;
  CompositeMatcher serial(pair.log1, pair.log2, serial_opts, &qgram);
  Result<CompositeMatchResult> ref = serial.Match();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  EXPECT_EQ(ref->stats.candidates_evaluated_parallel, 0);

  // 0 = hardware concurrency; both must reproduce the serial bits.
  for (int threads : {4, 0}) {
    CompositeOptions opts = serial_opts;
    opts.num_threads = threads;
    CompositeMatcher matcher(pair.log1, pair.log2, opts, &qgram);
    Result<CompositeMatchResult> got = matcher.Match();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(*ref, *got, "threads=" + std::to_string(threads));
    // threads=0 resolves to hardware concurrency, which may be 1 on a
    // small machine — then the step legitimately stays serial.
    const bool parallel = exec::ThreadPool::EffectiveThreads(threads) > 1;
    EXPECT_EQ(got->stats.candidates_evaluated_parallel,
              parallel ? got->stats.candidates_evaluated : 0)
        << "threads=" << threads;
  }
}

TEST(CompositeMatcherTest, ParallelStepBitIdenticalUnderEstimation) {
  LogPair pair = InjectedPair();
  QGramCosineSimilarity qgram;
  CompositeOptions serial_opts = Opts();
  serial_opts.delta = 0.005;
  serial_opts.ems.alpha = 0.5;
  serial_opts.use_estimation = true;
  serial_opts.estimation_iterations = 3;
  serial_opts.num_threads = 1;
  CompositeMatcher serial(pair.log1, pair.log2, serial_opts, &qgram);
  Result<CompositeMatchResult> ref = serial.Match();
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();

  for (int threads : {4, 0}) {
    CompositeOptions opts = serial_opts;
    opts.num_threads = threads;
    CompositeMatcher matcher(pair.log1, pair.log2, opts, &qgram);
    Result<CompositeMatchResult> got = matcher.Match();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectBitIdentical(*ref, *got,
                       "estimation threads=" + std::to_string(threads));
  }
}

// Uc freezes rows of the PREVIOUS matrices and replays them into the next
// evaluation; after a merge removes nodes, every frozen row index must be
// remapped through the new node ids. Forcing two same-side merges (delta
// < 0 accepts unconditionally) shifts ids twice; the Uc run must agree
// with the unpruned run on the chosen composites and their objective.
TEST(CompositeMatcherTest, UcRemapsFrozenRowsAcrossNodeIdShifts) {
  EventLog log1 = BuildPaperLog1();
  EventLog log2 = BuildPaperLog2();
  ASSERT_GE(log1.NumEvents(), 6u);
  std::vector<CompositeCandidate> c1 = {
      CompositeCandidate{{0, 1}, 1.0},
      CompositeCandidate{{2, 3}, 1.0},
  };

  CompositeMatchResult results[2];
  for (bool uc : {false, true}) {
    CompositeOptions opts = Opts();
    opts.delta = -1.0;  // accept every step's best merge
    opts.prune_unchanged = uc;
    opts.prune_bounds = false;
    opts.max_steps = 2;
    CompositeMatcher matcher(log1, log2, opts);
    matcher.SetCandidates(c1, {});
    Result<CompositeMatchResult> result = matcher.Match();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Both same-side merges accepted -> node ids shifted after step 1.
    ASSERT_EQ(result->stats.merges_accepted, 2);
    ASSERT_EQ(result->composites1.size(), 2u);
    if (uc) {
      EXPECT_GT(result->stats.rows_frozen, 0u);
    }
    results[uc ? 1 : 0] = std::move(*result);
  }
  EXPECT_EQ(results[0].composites1, results[1].composites1);
  EXPECT_EQ(results[0].composites2, results[1].composites2);
  EXPECT_NEAR(results[0].average_similarity, results[1].average_similarity,
              1e-3);
  EXPECT_LE(results[0].similarity.MaxAbsDifference(results[1].similarity),
            1e-3);
}

}  // namespace
}  // namespace ems
