// Locks the implementation to the arithmetic the paper works out on its
#include <cmath>
#include <set>
// running example (Examples 2-6, Figures 1-2). The constants are pinned
// in tests/paper_example.h: c = 0.8, alpha = 1.
#include <gtest/gtest.h>

#include "core/ems_similarity.h"
#include "core/estimation.h"
#include "paper_example.h"

namespace ems {
namespace {

using testing::A;
using testing::BuildPaperGraph1;
using testing::BuildPaperGraph2;
using testing::N1;
using testing::N2;

EmsOptions PaperOptions() {
  EmsOptions opts;
  opts.alpha = 1.0;
  opts.c = 0.8;
  opts.direction = Direction::kForward;
  return opts;
}

TEST(PaperExampleTest, FirstIterationSimilarityOfA1) {
  // Example 4: S^1(A, 1) = C(v1^X, A, v2^X, 1) * S^0(X, X) = 0.457.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, PaperOptions());
  SimilarityMatrix s1 = sim.ComputePartial(Direction::kForward, 1);
  // C = 0.8 * (1 - |0.4 - 1.0| / (0.4 + 1.0)) = 0.8 * (0.8 / 1.4).
  double expected = 0.8 * (1.0 - 0.6 / 1.4);
  EXPECT_NEAR(s1.at(1 + A, 1 + N1), expected, 1e-12);
  EXPECT_NEAR(s1.at(1 + A, 1 + N1), 0.457, 5e-4);  // the paper's rounding
}

TEST(PaperExampleTest, FirstIterationSimilarityOfA2) {
  // Example 4: s^1(A,2) = 0.8, s^1(2,A) = 0.4, S^1(A,2) = 0.6.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, PaperOptions());
  SimilarityMatrix s1 = sim.ComputePartial(Direction::kForward, 1);
  EXPECT_NEAR(s1.at(1 + A, 1 + N2), 0.6, 1e-12);
}

TEST(PaperExampleTest, DislocatedPairBeatsLocalPair) {
  // The point of the paper's Example 4: the dislocated true pair (A, 2)
  // scores above the positionally aligned wrong pair (A, 1).
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, PaperOptions());
  SimilarityMatrix s1 = sim.ComputePartial(Direction::kForward, 1);
  EXPECT_GT(s1.at(1 + A, 1 + N2), s1.at(1 + A, 1 + N1));
  // ... and at convergence too.
  EmsSimilarity sim2(g1, g2, PaperOptions());
  SimilarityMatrix s = sim2.Compute();
  EXPECT_GT(s.at(1 + A, 1 + N2), s.at(1 + A, 1 + N1));
}

TEST(PaperExampleTest, TrueMappingScoresAboveLocalMapping) {
  // Example 2 / Example 4 conclusion: the average similarity of the true
  // mapping M' = {A->2, B->3, C->4, D->4, E->5, F->6} is higher than that
  // of the local mapping M = {A->1, B->3, C->2, D->4, E->5, F->6}.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsOptions opts = PaperOptions();
  opts.direction = Direction::kBoth;
  EmsSimilarity sim(g1, g2, opts);
  SimilarityMatrix s = sim.Compute();
  auto avg_of = [&](const std::vector<std::pair<int, int>>& mapping) {
    double total = 0.0;
    for (auto [a, b] : mapping) total += s.at(1 + a, 1 + b);
    return total / static_cast<double>(mapping.size());
  };
  double true_avg = avg_of({{testing::A, testing::N2},
                            {testing::B, testing::N3},
                            {testing::C, testing::N4},
                            {testing::D, testing::N4},
                            {testing::E, testing::N5},
                            {testing::F, testing::N6}});
  double local_avg = avg_of({{testing::A, testing::N1},
                             {testing::B, testing::N3},
                             {testing::C, testing::N2},
                             {testing::D, testing::N4},
                             {testing::E, testing::N5},
                             {testing::F, testing::N6}});
  EXPECT_GT(true_avg, local_avg);
}

TEST(PaperExampleTest, EarlyConvergenceHorizons) {
  // Example 5: (A,1) converges after iteration 1, (C,2) after 2, (D,4)
  // after 3.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity sim(g1, g2, PaperOptions());
  EXPECT_EQ(sim.ConvergenceHorizon(Direction::kForward, 1 + testing::A,
                                   1 + testing::N1),
            1);
  EXPECT_EQ(sim.ConvergenceHorizon(Direction::kForward, 1 + testing::C,
                                   1 + testing::N2),
            2);
  EXPECT_EQ(sim.ConvergenceHorizon(Direction::kForward, 1 + testing::D,
                                   1 + testing::N4),
            3);
}

TEST(PaperExampleTest, ValuesFixedAfterHorizon) {
  // Proposition 2, checked concretely: S^n(A,1) never changes past n=1
  // and S^n(C,2) never changes past n=2.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsOptions opts = PaperOptions();
  opts.prune_converged = false;  // observe raw trajectories
  EmsSimilarity sim(g1, g2, opts);
  SimilarityMatrix s1 = sim.ComputePartial(Direction::kForward, 1);
  SimilarityMatrix s2 = sim.ComputePartial(Direction::kForward, 2);
  SimilarityMatrix s5 = sim.ComputePartial(Direction::kForward, 5);
  EXPECT_NEAR(s1.at(1 + testing::A, 1 + testing::N1),
              s5.at(1 + testing::A, 1 + testing::N1), 1e-12);
  EXPECT_NEAR(s2.at(1 + testing::C, 1 + testing::N2),
              s5.at(1 + testing::C, 1 + testing::N2), 1e-12);
}

TEST(PaperExampleTest, EstimationExactForSinglePredecessorPairs) {
  // Example 6 (corrected arithmetic, see DESIGN.md): for (A, 1) both
  // pre-set sizes are 1, so q = 0 and the estimate equals the exact
  // similarity even with I = 0.
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EstimationOptions est;
  est.exact_iterations = 0;
  est.ems = PaperOptions();
  EstimatedEmsSimilarity estimated(g1, g2, est);
  SimilarityMatrix es = estimated.Compute();

  EmsSimilarity exact(g1, g2, PaperOptions());
  SimilarityMatrix ex = exact.Compute();
  EXPECT_NEAR(es.at(1 + testing::A, 1 + testing::N1),
              ex.at(1 + testing::A, 1 + testing::N1), 1e-9);
}

TEST(PaperExampleTest, LargerIBringsEstimateCloserToExact) {
  // Example 6's point: raising I tightens the estimate (shown there for
  // (C, 4): I = 10 beats I = 0).
  DependencyGraph g1 = BuildPaperGraph1();
  DependencyGraph g2 = BuildPaperGraph2();
  EmsSimilarity exact(g1, g2, PaperOptions());
  SimilarityMatrix ex = exact.Compute();

  auto estimate_error = [&](int iterations) {
    EstimationOptions est;
    est.exact_iterations = iterations;
    est.ems = PaperOptions();
    EstimatedEmsSimilarity estimated(g1, g2, est);
    SimilarityMatrix es = estimated.Compute();
    double err = 0.0;
    for (NodeId v1 = 1; v1 < static_cast<NodeId>(g1.NumNodes()); ++v1) {
      for (NodeId v2 = 1; v2 < static_cast<NodeId>(g2.NumNodes()); ++v2) {
        err += std::abs(es.at(v1, v2) - ex.at(v1, v2));
      }
    }
    return err;
  };
  double err0 = estimate_error(0);
  double err10 = estimate_error(10);
  EXPECT_LE(err10, err0);
  EXPECT_LT(err10, 0.2);  // ten exact iterations nearly converge here
}

}  // namespace
}  // namespace ems
