#include "core/translation.h"

#include <gtest/gtest.h>

#include "paper_example.h"
#include "synth/dataset.h"

namespace ems {
namespace {

TEST(TranslationTableTest, SingletonAndCompositeMappings) {
  std::vector<Correspondence> found;
  found.push_back(Correspondence{{"a"}, {"x"}, 0.9});
  found.push_back(Correspondence{{"c", "d"}, {"cd"}, 0.8});
  std::map<std::string, std::string> table = TranslationTable(found);
  EXPECT_EQ(table.at("a"), "x");
  EXPECT_EQ(table.at("c"), "cd");
  EXPECT_EQ(table.at("d"), "cd");
  EXPECT_EQ(table.size(), 3u);
}

TEST(TranslateLogTest, RenamesAndCollapsesComposites) {
  EventLog log;
  log.AddTrace({"a", "c", "d", "b"});
  std::map<std::string, std::string> table = {
      {"a", "x"}, {"c", "cd"}, {"d", "cd"}};
  EventLog out = TranslateLog(log, table);
  ASSERT_EQ(out.NumTraces(), 1u);
  ASSERT_EQ(out.trace(0).size(), 3u);
  EXPECT_EQ(out.EventName(out.trace(0)[0]), "x");
  EXPECT_EQ(out.EventName(out.trace(0)[1]), "cd");
  EXPECT_EQ(out.EventName(out.trace(0)[2]), "b");  // unmatched name kept
}

TEST(TranslateLogTest, OneToOneMappingsDoNotCollapse) {
  EventLog log;
  log.AddTrace({"a", "a"});
  std::map<std::string, std::string> table = {{"a", "x"}};
  EventLog out = TranslateLog(log, table);
  EXPECT_EQ(out.trace(0).size(), 2u);  // repeated 1:1 events stay repeated
}

TEST(CrossLogConformanceTest, IdenticalLogsArePerfect) {
  EventLog log = testing::BuildPaperLog1();
  ConformanceReport r = CrossLogConformance(log, log);
  EXPECT_DOUBLE_EQ(r.vocabulary_overlap, 1.0);
  EXPECT_DOUBLE_EQ(r.relation_overlap, 1.0);
  EXPECT_DOUBLE_EQ(r.trace_coverage_1in2, 1.0);
  EXPECT_DOUBLE_EQ(r.trace_coverage_2in1, 1.0);
  EXPECT_DOUBLE_EQ(r.f_conformance, 1.0);
}

TEST(CrossLogConformanceTest, DisjointVocabulariesScoreZeroOverlap) {
  EventLog a, b;
  a.AddTrace({"x", "y"});
  b.AddTrace({"p", "q"});
  ConformanceReport r = CrossLogConformance(a, b);
  EXPECT_DOUBLE_EQ(r.vocabulary_overlap, 0.0);
  EXPECT_DOUBLE_EQ(r.relation_overlap, 0.0);
  EXPECT_DOUBLE_EQ(r.trace_coverage_1in2, 0.0);
}

TEST(CrossLogConformanceTest, PartialOverlap) {
  EventLog a, b;
  a.AddTrace({"x", "y", "z"});
  b.AddTrace({"x", "y", "w"});
  ConformanceReport r = CrossLogConformance(a, b);
  EXPECT_GT(r.vocabulary_overlap, 0.0);
  EXPECT_LT(r.vocabulary_overlap, 1.0);
  EXPECT_GT(r.trace_coverage_1in2, 0.5);
  EXPECT_LT(r.trace_coverage_1in2, 1.0);
}

TEST(MatchAndCompareTest, MatchingLiftsConformance) {
  // Opaque renaming destroys raw conformance; matching restores it.
  PairOptions opts;
  opts.num_activities = 12;
  opts.num_traces = 80;
  opts.dislocation = 0;
  opts.dropped_events = 0;
  opts.swap_noise = 0.0;
  opts.frequency_drift = 0.1;
  opts.seed = 99;
  LogPair pair = MakeLogPair(Testbed::kDsFB, opts);

  ConformanceReport raw = CrossLogConformance(pair.log1, pair.log2);
  EXPECT_LT(raw.vocabulary_overlap, 0.05);  // names are garbled

  MatchOptions match_opts;
  match_opts.ems.alpha = 0.5;
  match_opts.label_measure = LabelMeasure::kQGramCosine;
  Result<ConformanceReport> matched =
      MatchAndCompare(pair.log1, pair.log2, match_opts);
  ASSERT_TRUE(matched.ok());
  EXPECT_GT(matched->vocabulary_overlap, raw.vocabulary_overlap);
  EXPECT_GT(matched->trace_coverage_1in2, 0.5);
}

}  // namespace
}  // namespace ems
