#include "core/similarity_matrix.h"

#include <gtest/gtest.h>

#include "paper_example.h"

namespace ems {
namespace {

TEST(SimilarityMatrixTest, InitAndAccess) {
  SimilarityMatrix m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.5);
  m.set(1, 2, 0.9);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.9);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.5);
}

TEST(SimilarityMatrixTest, MaxAbsDifference) {
  SimilarityMatrix a(2, 2, 0.0);
  SimilarityMatrix b(2, 2, 0.0);
  b.set(1, 0, 0.25);
  b.set(0, 1, -0.1);
  EXPECT_DOUBLE_EQ(a.MaxAbsDifference(b), 0.25);
  EXPECT_DOUBLE_EQ(b.MaxAbsDifference(a), 0.25);
  EXPECT_DOUBLE_EQ(a.MaxAbsDifference(a), 0.0);
}

TEST(SimilarityMatrixTest, AverageOverSubrectangle) {
  SimilarityMatrix m(3, 3, 0.0);
  // Artificial row/col 0 left at 0; real block all 0.5.
  for (NodeId r = 1; r < 3; ++r) {
    for (NodeId c = 1; c < 3; ++c) m.set(r, c, 0.5);
  }
  EXPECT_DOUBLE_EQ(m.Average(1, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.Average(0, 0), 0.5 * 4 / 9);
}

TEST(SimilarityMatrixTest, AverageOfEmptyRegionIsZero) {
  SimilarityMatrix m(2, 2, 1.0);
  EXPECT_DOUBLE_EQ(m.Average(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.Average(0, 5), 0.0);
}

TEST(SimilarityMatrixTest, RealSubmatrixDropsArtificial) {
  SimilarityMatrix m(3, 4, 0.0);
  m.set(1, 1, 0.7);
  m.set(2, 3, 0.3);
  auto sub = m.RealSubmatrix(true, true);
  ASSERT_EQ(sub.size(), 2u);
  ASSERT_EQ(sub[0].size(), 3u);
  EXPECT_DOUBLE_EQ(sub[0][0], 0.7);
  EXPECT_DOUBLE_EQ(sub[1][2], 0.3);
}

TEST(SimilarityMatrixTest, RealSubmatrixKeepsAllWhenRequested) {
  SimilarityMatrix m(2, 2, 0.1);
  auto sub = m.RealSubmatrix(false, false);
  ASSERT_EQ(sub.size(), 2u);
  ASSERT_EQ(sub[0].size(), 2u);
}

TEST(SimilarityMatrixTest, DebugStringRuns) {
  DependencyGraph g1 = testing::BuildPaperGraph1();
  DependencyGraph g2 = testing::BuildPaperGraph2();
  SimilarityMatrix m(g1.NumNodes(), g2.NumNodes(), 0.0);
  std::string s = m.DebugString(g1, g2);
  EXPECT_FALSE(s.empty());
}

}  // namespace
}  // namespace ems
