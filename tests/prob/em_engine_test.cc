// EM soft-correspondence engine: row-stochasticity within 1e-9, the
// rtole convergence contract, temperature sharpness, the serial/parallel
// bit-identity guarantee, MAP = Hungarian-over-posterior, and calibrated
// entropy surfacing ambiguity.
#include "prob/em_engine.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "assignment/hungarian.h"
#include "exec/thread_pool.h"
#include "prob/soft_match.h"

namespace ems {
namespace prob {
namespace {

// A 4x4 surface with a clear diagonal structure plus one ambiguous row
// (row 3 likes columns 2 and 3 equally).
SimilarityMatrix ClearSurface() {
  SimilarityMatrix s(4, 4, 0.05);
  s.set(0, 0, 0.9);
  s.set(1, 1, 0.8);
  s.set(2, 2, 0.85);
  s.set(3, 2, 0.5);
  s.set(3, 3, 0.5);
  return s;
}

double RowSum(const SimilarityMatrix& m, size_t i) {
  double sum = 0.0;
  for (size_t j = 0; j < m.cols(); ++j) {
    sum += m.at(static_cast<NodeId>(i), static_cast<NodeId>(j));
  }
  return sum;
}

TEST(EmEngineTest, PosteriorRowsSumToOneWithinTolerance) {
  SimilarityMatrix s = ClearSurface();
  EmOptions opts;
  opts.enabled = true;
  EmCorrespondenceEngine engine(s, opts);
  SoftMatchResult soft = engine.Run();
  ASSERT_EQ(soft.posterior.rows(), 4u);
  ASSERT_EQ(soft.posterior.cols(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(RowSum(soft.posterior, i), 1.0, 1e-9) << "row " << i;
  }
  // Priors are a distribution too.
  double prior_sum = 0.0;
  for (double p : soft.column_prior) prior_sum += p;
  EXPECT_NEAR(prior_sum, 1.0, 1e-9);
}

TEST(EmEngineTest, ConvergesOnEasySurfaceUnderTheCap) {
  SimilarityMatrix s = ClearSurface();
  EmOptions opts;
  EmCorrespondenceEngine engine(s, opts);
  SoftMatchResult soft = engine.Run();
  EXPECT_TRUE(soft.stats.converged);
  EXPECT_GT(soft.stats.iterations, 0);
  EXPECT_LT(soft.stats.iterations, opts.max_iterations);
  EXPECT_LE(soft.stats.final_delta, opts.rtole);
}

TEST(EmEngineTest, LooseToleranceStopsAfterOneIteration) {
  SimilarityMatrix s = ClearSurface();
  EmOptions opts;
  opts.rtole = 10.0;  // any first delta (<= 1) satisfies it
  SoftMatchResult soft = EmCorrespondenceEngine(s, opts).Run();
  EXPECT_TRUE(soft.stats.converged);
  EXPECT_EQ(soft.stats.iterations, 1);
}

TEST(EmEngineTest, ImpossibleToleranceHitsIterationCap) {
  SimilarityMatrix s = ClearSurface();
  EmOptions opts;
  opts.rtole = -1.0;  // clamped to 0; exact-zero delta is unreachable here
  opts.max_iterations = 3;
  SoftMatchResult soft = EmCorrespondenceEngine(s, opts).Run();
  EXPECT_EQ(soft.stats.iterations, 3);
}

TEST(EmEngineTest, LowerTemperatureSharpensThePosterior) {
  SimilarityMatrix s = ClearSurface();
  EmOptions sharp;
  sharp.temperature = 0.02;
  EmOptions diffuse;
  diffuse.temperature = 0.5;
  SoftMatchResult a = EmCorrespondenceEngine(s, sharp).Run();
  SoftMatchResult b = EmCorrespondenceEngine(s, diffuse).Run();
  EXPECT_LT(a.stats.mean_entropy, b.stats.mean_entropy);
  // The sharp run concentrates the diagonal row near certainty.
  EXPECT_GT(a.Confidence(0, 0), b.Confidence(0, 0));
}

TEST(EmEngineTest, SerialAndParallelRunsAreBitIdentical) {
  // A surface big enough that chunking actually splits rows.
  SimilarityMatrix s(37, 29, 0.0);
  for (size_t i = 0; i < 37; ++i) {
    for (size_t j = 0; j < 29; ++j) {
      const double v =
          0.5 + 0.4 * std::sin(static_cast<double>(i * 31 + j * 17));
      s.set(static_cast<NodeId>(i), static_cast<NodeId>(j), v);
    }
  }
  EmOptions serial;
  serial.num_threads = 1;
  SoftMatchResult a = EmCorrespondenceEngine(s, serial).Run();

  exec::ThreadPool pool(4);
  EmOptions parallel;
  parallel.pool = &pool;
  SoftMatchResult b = EmCorrespondenceEngine(s, parallel).Run();

  ASSERT_EQ(a.posterior.data().size(), b.posterior.data().size());
  EXPECT_TRUE(std::equal(a.posterior.data().begin(), a.posterior.data().end(),
                         b.posterior.data().begin()))
      << "posterior differs between serial and parallel runs";
  EXPECT_EQ(a.map_assignment, b.map_assignment);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.final_delta, b.stats.final_delta);
}

TEST(EmEngineTest, MapAssignmentIsHungarianOverThePosterior) {
  SimilarityMatrix s = ClearSurface();
  SoftMatchResult soft = EmCorrespondenceEngine(s, EmOptions{}).Run();
  std::vector<std::vector<double>> w(soft.posterior.rows(),
                                     std::vector<double>(soft.posterior.cols()));
  for (size_t i = 0; i < soft.posterior.rows(); ++i) {
    for (size_t j = 0; j < soft.posterior.cols(); ++j) {
      w[i][j] =
          soft.posterior.at(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  EXPECT_EQ(soft.map_assignment, MaxWeightAssignment(w));
}

TEST(EmEngineTest, EmptySurfaceReturnsEmptyConvergedResult) {
  SimilarityMatrix s(0, 0, 0.0);
  SoftMatchResult soft = EmCorrespondenceEngine(s, EmOptions{}).Run();
  EXPECT_TRUE(soft.empty());
  EXPECT_TRUE(soft.stats.converged);
  EXPECT_EQ(soft.stats.iterations, 0);
}

TEST(EmEngineTest, SingleRowBecomesASoftmaxOverColumns) {
  SimilarityMatrix s(1, 3, 0.1);
  s.set(0, 1, 0.9);
  SoftMatchResult soft = EmCorrespondenceEngine(s, EmOptions{}).Run();
  EXPECT_NEAR(RowSum(soft.posterior, 0), 1.0, 1e-9);
  EXPECT_EQ(soft.mode[0], 1);
  EXPECT_EQ(soft.map_assignment[0], 1);
  EXPECT_GT(soft.Confidence(0, 1), soft.Confidence(0, 0));
}

TEST(EmEngineTest, FlatSurfaceYieldsUniformRows) {
  SimilarityMatrix s(3, 4, 0.7);  // zero spread: no signal at all
  SoftMatchResult soft = EmCorrespondenceEngine(s, EmOptions{}).Run();
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(
          soft.posterior.at(static_cast<NodeId>(i), static_cast<NodeId>(j)),
          0.25, 1e-9);
    }
    EXPECT_NEAR(soft.row_entropy[i], 1.0, 1e-9);
  }
}

TEST(EmEngineTest, AmbiguousRowCarriesMoreEntropyThanClearRow) {
  SimilarityMatrix s = ClearSurface();
  SoftMatchResult soft = EmCorrespondenceEngine(s, EmOptions{}).Run();
  // Row 0 has one dominant partner; row 3 is torn between two columns.
  EXPECT_LT(soft.row_entropy[0], soft.row_entropy[3]);
}

TEST(EmEngineTest, ComputeSoftMatchDropsArtificialRowAndColumn) {
  // 4x4 with index 0 artificial on both sides; the engine must see the
  // 3x3 real submatrix.
  SimilarityMatrix s(4, 4, 0.05);
  s.set(0, 0, 1.0);  // artificial-artificial; must not leak into output
  s.set(1, 1, 0.9);
  s.set(2, 2, 0.8);
  s.set(3, 3, 0.7);
  EmOptions opts;
  SoftMatchResult soft =
      ComputeSoftMatch(s, /*drop_row0=*/true, /*drop_col0=*/true, opts);
  ASSERT_EQ(soft.posterior.rows(), 3u);
  ASSERT_EQ(soft.posterior.cols(), 3u);
  EXPECT_EQ(soft.map_assignment, (std::vector<int>{0, 1, 2}));
}

TEST(SoftMatchTest, ConfidenceIsBoundsChecked) {
  SimilarityMatrix s = ClearSurface();
  SoftMatchResult soft = EmCorrespondenceEngine(s, EmOptions{}).Run();
  EXPECT_EQ(soft.Confidence(-1, 0), 0.0);
  EXPECT_EQ(soft.Confidence(0, -1), 0.0);
  EXPECT_EQ(soft.Confidence(4, 0), 0.0);
  EXPECT_EQ(soft.Confidence(0, 4), 0.0);
}

TEST(SoftMatchTest, SelectFromPosteriorAppliesBothFilters) {
  SimilarityMatrix s = ClearSurface();
  EmOptions opts;
  opts.temperature = 0.05;
  SoftMatchResult soft = EmCorrespondenceEngine(s, opts).Run();
  std::vector<std::vector<double>> sim(s.rows(),
                                       std::vector<double>(s.cols()));
  for (size_t i = 0; i < s.rows(); ++i) {
    for (size_t j = 0; j < s.cols(); ++j) {
      sim[i][j] = s.at(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }

  // Permissive thresholds keep every MAP pair.
  std::vector<SoftMatch> all = SelectFromPosterior(soft, sim, 0.0, 0.0);
  size_t assigned = 0;
  for (int j : soft.map_assignment) assigned += j >= 0;
  EXPECT_EQ(all.size(), assigned);
  for (const SoftMatch& m : all) {
    EXPECT_EQ(soft.map_assignment[m.row], m.col);
    EXPECT_DOUBLE_EQ(m.confidence, soft.Confidence(m.row, m.col));
  }

  // An impossible confidence bar (rows sum to 1) drops everything.
  EXPECT_TRUE(SelectFromPosterior(soft, sim, 0.0, 1.01).empty());

  // The similarity filter is independent of confidence.
  std::vector<SoftMatch> sim_only = SelectFromPosterior(soft, sim, 0.6, 0.0);
  for (const SoftMatch& m : sim_only) EXPECT_GE(m.similarity, 0.6);
  EXPECT_LT(sim_only.size(), all.size());
}

}  // namespace
}  // namespace prob
}  // namespace ems
