// Soft-match snapshots: decode(encode(x)) == x field for field and
// bit-for-bit on doubles, re-encode is byte-identical, and corruption
// (truncation, bit flips, hostile counts, out-of-range assignments)
// decodes to an error Status, never a crash or a wrong artifact.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "log/event_log.h"
#include "prob/em_engine.h"
#include "prob/soft_match.h"
#include "store/snapshot.h"

namespace ems {
namespace store {
namespace {

prob::SoftMatchResult SampleSoft() {
  SimilarityMatrix s(5, 4, 0.05);
  s.set(0, 0, 0.9);
  s.set(1, 1, 0.8);
  s.set(2, 3, 0.7);
  s.set(3, 2, 0.6);
  s.set(4, 1, 0.55);
  prob::EmOptions opts;
  return prob::EmCorrespondenceEngine(s, opts).Run();
}

TEST(SoftSnapshotTest, RoundTripPreservesEveryField) {
  prob::SoftMatchResult soft = SampleSoft();
  const std::string bytes = EncodeSoftMatch(soft);
  Result<prob::SoftMatchResult> back = DecodeSoftMatch(bytes);
  ASSERT_TRUE(back.ok()) << back.status().message();

  ASSERT_EQ(back->posterior.rows(), soft.posterior.rows());
  ASSERT_EQ(back->posterior.cols(), soft.posterior.cols());
  // Bit-exact doubles: the codec stores IEEE bit patterns, not decimal.
  EXPECT_EQ(back->posterior.data(), soft.posterior.data());
  EXPECT_EQ(back->column_prior, soft.column_prior);
  EXPECT_EQ(back->map_assignment, soft.map_assignment);
  EXPECT_EQ(back->mode, soft.mode);
  EXPECT_EQ(back->row_entropy, soft.row_entropy);
  EXPECT_EQ(back->stats.iterations, soft.stats.iterations);
  EXPECT_EQ(back->stats.converged, soft.stats.converged);
  EXPECT_EQ(back->stats.final_delta, soft.stats.final_delta);
  EXPECT_EQ(back->stats.mean_entropy, soft.stats.mean_entropy);
}

TEST(SoftSnapshotTest, ReencodeIsByteIdentical) {
  prob::SoftMatchResult soft = SampleSoft();
  const std::string bytes = EncodeSoftMatch(soft);
  Result<prob::SoftMatchResult> back = DecodeSoftMatch(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(EncodeSoftMatch(*back), bytes);
}

TEST(SoftSnapshotTest, EmptyResultRoundTrips) {
  prob::SoftMatchResult empty;
  empty.stats.converged = true;
  Result<prob::SoftMatchResult> back =
      DecodeSoftMatch(EncodeSoftMatch(empty));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
  EXPECT_TRUE(back->stats.converged);
}

TEST(SoftSnapshotTest, TruncationFailsCleanly) {
  const std::string bytes = EncodeSoftMatch(SampleSoft());
  for (size_t len : {size_t{0}, size_t{1}, size_t{4}, bytes.size() / 2,
                     bytes.size() - 1}) {
    EXPECT_FALSE(DecodeSoftMatch(bytes.substr(0, len)).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(SoftSnapshotTest, BitFlipsFailCleanly) {
  const std::string bytes = EncodeSoftMatch(SampleSoft());
  // Step through the buffer; every flip must be caught (checksum) or at
  // worst rejected by validation — never accepted silently as-is AND
  // never crash.
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    Result<prob::SoftMatchResult> r = DecodeSoftMatch(mutated);
    EXPECT_FALSE(r.ok()) << "flip at byte " << pos << " accepted";
  }
}

TEST(SoftSnapshotTest, WrongKindIsRejected) {
  // A valid snapshot of a different artifact kind must not decode as a
  // soft match.
  EventLog log;
  log.AddTrace({"a", "b", "c"});
  const std::string other = EncodeEventLog(log);
  EXPECT_FALSE(DecodeSoftMatch(other).ok());
}

}  // namespace
}  // namespace store
}  // namespace ems
