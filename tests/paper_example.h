// Reconstruction of the paper's running example (Figures 1 and 2): the
// turbine-order-processing logs L1 and L2 with their dependency graphs.
// Frequencies are pinned so that the values the paper computes explicitly
// hold exactly with c = 0.8:
//   f(A) = f(2) = 0.4, f(1) = 1.0  =>  S^1(A,1) = 0.457..., S^1(A,2) = 0.6
// (Example 4). The edge frequencies not stated in the paper are filled in
// from the natural play-out of Figure 1's traces (E and F concurrent
// after D; 1 splits into 2 or 3 which join at 4).
#pragma once

#include <tuple>
#include <vector>

#include "graph/dependency_graph.h"
#include "log/event_log.h"

namespace ems {
namespace testing {

// Node indices within the real (non-artificial) portion of G1.
enum PaperG1Node { A = 0, B = 1, C = 2, D = 3, E = 4, F = 5 };
// G2 nodes "1".."6" are indices 0..5.
enum PaperG2Node { N1 = 0, N2 = 1, N3 = 2, N4 = 3, N5 = 4, N6 = 5 };

inline DependencyGraph BuildPaperGraph1() {
  return DependencyGraph::FromExplicit(
      {"PaidCash", "PaidCredit", "CheckInventory", "Validate", "ShipGoods",
       "EmailCustomer"},
      {0.4, 0.6, 1.0, 1.0, 1.0, 1.0},
      {
          {A, C, 0.4},  // stated in Figure 1(c)
          {B, C, 0.6},
          {C, D, 1.0},
          {D, E, 0.5},  // E / F concurrent after D
          {D, F, 0.5},
          {E, F, 0.5},
          {F, E, 0.5},
      });
}

inline DependencyGraph BuildPaperGraph2() {
  return DependencyGraph::FromExplicit(
      {"OrderAccepted", "PaidCash2", "PaidCredit2", "InvCheckValidation",
       "Delivery", "Email2"},
      {1.0, 0.4, 0.6, 1.0, 1.0, 1.0},
      {
          {N1, N2, 0.4},
          {N1, N3, 0.6},
          {N2, N4, 0.4},
          {N3, N4, 0.6},
          {N4, N5, 1.0},
          {N5, N6, 1.0},
      });
}

// The corresponding event logs, for tests exercising the log-based
// pipeline (dependency graphs built from these differ slightly in the
// E/F edge frequencies from the explicit graphs above, which only pins
// what the similarity tests need).
inline EventLog BuildPaperLog1() {
  EventLog log;
  // 10 orders: 4 paid cash, 6 paid credit; E and F interleave after D.
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> t;
    t.push_back(i < 4 ? "PaidCash" : "PaidCredit");
    t.push_back("CheckInventory");
    t.push_back("Validate");
    if (i % 2 == 0) {
      t.push_back("ShipGoods");
      t.push_back("EmailCustomer");
    } else {
      t.push_back("EmailCustomer");
      t.push_back("ShipGoods");
    }
    log.AddTrace(t);
  }
  return log;
}

inline EventLog BuildPaperLog2() {
  EventLog log;
  // 10 orders: all start with OrderAccepted, 4 paid cash, 6 credit; the
  // inventory check and validation is one composite step.
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> t;
    t.push_back("OrderAccepted");
    t.push_back(i < 4 ? "PaidCash2" : "PaidCredit2");
    t.push_back("InvCheckValidation");
    t.push_back("Delivery");
    t.push_back("Email2");
    log.AddTrace(t);
  }
  return log;
}

}  // namespace testing
}  // namespace ems
