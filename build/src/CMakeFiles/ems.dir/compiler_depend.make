# Empty compiler generated dependencies file for ems.
# This may be replaced when dependencies are built.
