file(REMOVE_RECURSE
  "libems.a"
)
