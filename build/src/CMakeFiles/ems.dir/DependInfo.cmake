
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/assignment/hungarian.cc" "src/CMakeFiles/ems.dir/assignment/hungarian.cc.o" "gcc" "src/CMakeFiles/ems.dir/assignment/hungarian.cc.o.d"
  "/root/repo/src/assignment/selection.cc" "src/CMakeFiles/ems.dir/assignment/selection.cc.o" "gcc" "src/CMakeFiles/ems.dir/assignment/selection.cc.o.d"
  "/root/repo/src/assignment/set_packing.cc" "src/CMakeFiles/ems.dir/assignment/set_packing.cc.o" "gcc" "src/CMakeFiles/ems.dir/assignment/set_packing.cc.o.d"
  "/root/repo/src/baselines/bhv.cc" "src/CMakeFiles/ems.dir/baselines/bhv.cc.o" "gcc" "src/CMakeFiles/ems.dir/baselines/bhv.cc.o.d"
  "/root/repo/src/baselines/flooding.cc" "src/CMakeFiles/ems.dir/baselines/flooding.cc.o" "gcc" "src/CMakeFiles/ems.dir/baselines/flooding.cc.o.d"
  "/root/repo/src/baselines/ged.cc" "src/CMakeFiles/ems.dir/baselines/ged.cc.o" "gcc" "src/CMakeFiles/ems.dir/baselines/ged.cc.o.d"
  "/root/repo/src/baselines/icop.cc" "src/CMakeFiles/ems.dir/baselines/icop.cc.o" "gcc" "src/CMakeFiles/ems.dir/baselines/icop.cc.o.d"
  "/root/repo/src/baselines/opq.cc" "src/CMakeFiles/ems.dir/baselines/opq.cc.o" "gcc" "src/CMakeFiles/ems.dir/baselines/opq.cc.o.d"
  "/root/repo/src/baselines/simrank.cc" "src/CMakeFiles/ems.dir/baselines/simrank.cc.o" "gcc" "src/CMakeFiles/ems.dir/baselines/simrank.cc.o.d"
  "/root/repo/src/core/bounds.cc" "src/CMakeFiles/ems.dir/core/bounds.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/bounds.cc.o.d"
  "/root/repo/src/core/composite_candidates.cc" "src/CMakeFiles/ems.dir/core/composite_candidates.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/composite_candidates.cc.o.d"
  "/root/repo/src/core/composite_matcher.cc" "src/CMakeFiles/ems.dir/core/composite_matcher.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/composite_matcher.cc.o.d"
  "/root/repo/src/core/ems_similarity.cc" "src/CMakeFiles/ems.dir/core/ems_similarity.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/ems_similarity.cc.o.d"
  "/root/repo/src/core/estimation.cc" "src/CMakeFiles/ems.dir/core/estimation.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/estimation.cc.o.d"
  "/root/repo/src/core/estimation_error.cc" "src/CMakeFiles/ems.dir/core/estimation_error.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/estimation_error.cc.o.d"
  "/root/repo/src/core/match_report.cc" "src/CMakeFiles/ems.dir/core/match_report.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/match_report.cc.o.d"
  "/root/repo/src/core/matcher.cc" "src/CMakeFiles/ems.dir/core/matcher.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/matcher.cc.o.d"
  "/root/repo/src/core/repository.cc" "src/CMakeFiles/ems.dir/core/repository.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/repository.cc.o.d"
  "/root/repo/src/core/similarity_matrix.cc" "src/CMakeFiles/ems.dir/core/similarity_matrix.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/similarity_matrix.cc.o.d"
  "/root/repo/src/core/translation.cc" "src/CMakeFiles/ems.dir/core/translation.cc.o" "gcc" "src/CMakeFiles/ems.dir/core/translation.cc.o.d"
  "/root/repo/src/discovery/heuristic_miner.cc" "src/CMakeFiles/ems.dir/discovery/heuristic_miner.cc.o" "gcc" "src/CMakeFiles/ems.dir/discovery/heuristic_miner.cc.o.d"
  "/root/repo/src/discovery/pnml_export.cc" "src/CMakeFiles/ems.dir/discovery/pnml_export.cc.o" "gcc" "src/CMakeFiles/ems.dir/discovery/pnml_export.cc.o.d"
  "/root/repo/src/eval/ground_truth.cc" "src/CMakeFiles/ems.dir/eval/ground_truth.cc.o" "gcc" "src/CMakeFiles/ems.dir/eval/ground_truth.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/CMakeFiles/ems.dir/eval/harness.cc.o" "gcc" "src/CMakeFiles/ems.dir/eval/harness.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/ems.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/ems.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/CMakeFiles/ems.dir/eval/table.cc.o" "gcc" "src/CMakeFiles/ems.dir/eval/table.cc.o.d"
  "/root/repo/src/graph/dependency_graph.cc" "src/CMakeFiles/ems.dir/graph/dependency_graph.cc.o" "gcc" "src/CMakeFiles/ems.dir/graph/dependency_graph.cc.o.d"
  "/root/repo/src/graph/dot_export.cc" "src/CMakeFiles/ems.dir/graph/dot_export.cc.o" "gcc" "src/CMakeFiles/ems.dir/graph/dot_export.cc.o.d"
  "/root/repo/src/graph/graph_algorithms.cc" "src/CMakeFiles/ems.dir/graph/graph_algorithms.cc.o" "gcc" "src/CMakeFiles/ems.dir/graph/graph_algorithms.cc.o.d"
  "/root/repo/src/log/event_log.cc" "src/CMakeFiles/ems.dir/log/event_log.cc.o" "gcc" "src/CMakeFiles/ems.dir/log/event_log.cc.o.d"
  "/root/repo/src/log/log_filter.cc" "src/CMakeFiles/ems.dir/log/log_filter.cc.o" "gcc" "src/CMakeFiles/ems.dir/log/log_filter.cc.o.d"
  "/root/repo/src/log/log_io.cc" "src/CMakeFiles/ems.dir/log/log_io.cc.o" "gcc" "src/CMakeFiles/ems.dir/log/log_io.cc.o.d"
  "/root/repo/src/log/log_stats.cc" "src/CMakeFiles/ems.dir/log/log_stats.cc.o" "gcc" "src/CMakeFiles/ems.dir/log/log_stats.cc.o.d"
  "/root/repo/src/log/mxml.cc" "src/CMakeFiles/ems.dir/log/mxml.cc.o" "gcc" "src/CMakeFiles/ems.dir/log/mxml.cc.o.d"
  "/root/repo/src/log/xes.cc" "src/CMakeFiles/ems.dir/log/xes.cc.o" "gcc" "src/CMakeFiles/ems.dir/log/xes.cc.o.d"
  "/root/repo/src/log/xml_scanner.cc" "src/CMakeFiles/ems.dir/log/xml_scanner.cc.o" "gcc" "src/CMakeFiles/ems.dir/log/xml_scanner.cc.o.d"
  "/root/repo/src/synth/dataset.cc" "src/CMakeFiles/ems.dir/synth/dataset.cc.o" "gcc" "src/CMakeFiles/ems.dir/synth/dataset.cc.o.d"
  "/root/repo/src/synth/log_generator.cc" "src/CMakeFiles/ems.dir/synth/log_generator.cc.o" "gcc" "src/CMakeFiles/ems.dir/synth/log_generator.cc.o.d"
  "/root/repo/src/synth/perturb.cc" "src/CMakeFiles/ems.dir/synth/perturb.cc.o" "gcc" "src/CMakeFiles/ems.dir/synth/perturb.cc.o.d"
  "/root/repo/src/synth/process_tree.cc" "src/CMakeFiles/ems.dir/synth/process_tree.cc.o" "gcc" "src/CMakeFiles/ems.dir/synth/process_tree.cc.o.d"
  "/root/repo/src/text/jaro_winkler.cc" "src/CMakeFiles/ems.dir/text/jaro_winkler.cc.o" "gcc" "src/CMakeFiles/ems.dir/text/jaro_winkler.cc.o.d"
  "/root/repo/src/text/label_similarity.cc" "src/CMakeFiles/ems.dir/text/label_similarity.cc.o" "gcc" "src/CMakeFiles/ems.dir/text/label_similarity.cc.o.d"
  "/root/repo/src/text/levenshtein.cc" "src/CMakeFiles/ems.dir/text/levenshtein.cc.o" "gcc" "src/CMakeFiles/ems.dir/text/levenshtein.cc.o.d"
  "/root/repo/src/text/qgram.cc" "src/CMakeFiles/ems.dir/text/qgram.cc.o" "gcc" "src/CMakeFiles/ems.dir/text/qgram.cc.o.d"
  "/root/repo/src/util/json_writer.cc" "src/CMakeFiles/ems.dir/util/json_writer.cc.o" "gcc" "src/CMakeFiles/ems.dir/util/json_writer.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/ems.dir/util/random.cc.o" "gcc" "src/CMakeFiles/ems.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/ems.dir/util/status.cc.o" "gcc" "src/CMakeFiles/ems.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/ems.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/ems.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/timer.cc" "src/CMakeFiles/ems.dir/util/timer.cc.o" "gcc" "src/CMakeFiles/ems.dir/util/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
