file(REMOVE_RECURSE
  "CMakeFiles/process_comparison.dir/process_comparison.cpp.o"
  "CMakeFiles/process_comparison.dir/process_comparison.cpp.o.d"
  "process_comparison"
  "process_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
