# Empty dependencies file for process_comparison.
# This may be replaced when dependencies are built.
