# Empty compiler generated dependencies file for subsidiary_integration.
# This may be replaced when dependencies are built.
