file(REMOVE_RECURSE
  "CMakeFiles/subsidiary_integration.dir/subsidiary_integration.cpp.o"
  "CMakeFiles/subsidiary_integration.dir/subsidiary_integration.cpp.o.d"
  "subsidiary_integration"
  "subsidiary_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subsidiary_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
