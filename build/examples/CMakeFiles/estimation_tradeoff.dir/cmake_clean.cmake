file(REMOVE_RECURSE
  "CMakeFiles/estimation_tradeoff.dir/estimation_tradeoff.cpp.o"
  "CMakeFiles/estimation_tradeoff.dir/estimation_tradeoff.cpp.o.d"
  "estimation_tradeoff"
  "estimation_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimation_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
