# Empty dependencies file for estimation_tradeoff.
# This may be replaced when dependencies are built.
