# Empty dependencies file for repository_search.
# This may be replaced when dependencies are built.
