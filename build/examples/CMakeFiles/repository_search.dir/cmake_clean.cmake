file(REMOVE_RECURSE
  "CMakeFiles/repository_search.dir/repository_search.cpp.o"
  "CMakeFiles/repository_search.dir/repository_search.cpp.o.d"
  "repository_search"
  "repository_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repository_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
