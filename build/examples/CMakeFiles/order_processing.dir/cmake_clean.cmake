file(REMOVE_RECURSE
  "CMakeFiles/order_processing.dir/order_processing.cpp.o"
  "CMakeFiles/order_processing.dir/order_processing.cpp.o.d"
  "order_processing"
  "order_processing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
