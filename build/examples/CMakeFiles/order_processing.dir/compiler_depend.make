# Empty compiler generated dependencies file for order_processing.
# This may be replaced when dependencies are built.
