file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_typographic.dir/bench_fig04_typographic.cc.o"
  "CMakeFiles/bench_fig04_typographic.dir/bench_fig04_typographic.cc.o.d"
  "bench_fig04_typographic"
  "bench_fig04_typographic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_typographic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
