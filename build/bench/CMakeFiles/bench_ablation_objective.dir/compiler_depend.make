# Empty compiler generated dependencies file for bench_ablation_objective.
# This may be replaced when dependencies are built.
