file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_objective.dir/bench_ablation_objective.cc.o"
  "CMakeFiles/bench_ablation_objective.dir/bench_ablation_objective.cc.o.d"
  "bench_ablation_objective"
  "bench_ablation_objective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_objective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
