# Empty compiler generated dependencies file for bench_fig13_delta.
# This may be replaced when dependencies are built.
