file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_delta.dir/bench_fig13_delta.cc.o"
  "CMakeFiles/bench_fig13_delta.dir/bench_fig13_delta.cc.o.d"
  "bench_fig13_delta"
  "bench_fig13_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
