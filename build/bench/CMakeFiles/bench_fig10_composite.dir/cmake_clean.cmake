file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_composite.dir/bench_fig10_composite.cc.o"
  "CMakeFiles/bench_fig10_composite.dir/bench_fig10_composite.cc.o.d"
  "bench_fig10_composite"
  "bench_fig10_composite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_composite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
