file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_selection.dir/bench_ablation_selection.cc.o"
  "CMakeFiles/bench_ablation_selection.dir/bench_ablation_selection.cc.o.d"
  "bench_ablation_selection"
  "bench_ablation_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
