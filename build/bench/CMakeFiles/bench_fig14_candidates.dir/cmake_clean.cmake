file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_candidates.dir/bench_fig14_candidates.cc.o"
  "CMakeFiles/bench_fig14_candidates.dir/bench_fig14_candidates.cc.o.d"
  "bench_fig14_candidates"
  "bench_fig14_candidates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_candidates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
