file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_composite_typo.dir/bench_fig11_composite_typo.cc.o"
  "CMakeFiles/bench_fig11_composite_typo.dir/bench_fig11_composite_typo.cc.o.d"
  "bench_fig11_composite_typo"
  "bench_fig11_composite_typo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_composite_typo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
