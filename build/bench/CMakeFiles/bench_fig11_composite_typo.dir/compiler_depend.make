# Empty compiler generated dependencies file for bench_fig11_composite_typo.
# This may be replaced when dependencies are built.
