file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_pruning.dir/bench_fig06_pruning.cc.o"
  "CMakeFiles/bench_fig06_pruning.dir/bench_fig06_pruning.cc.o.d"
  "bench_fig06_pruning"
  "bench_fig06_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
