# Empty dependencies file for bench_fig09_dislocation.
# This may be replaced when dependencies are built.
