file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_dislocation.dir/bench_fig09_dislocation.cc.o"
  "CMakeFiles/bench_fig09_dislocation.dir/bench_fig09_dislocation.cc.o.d"
  "bench_fig09_dislocation"
  "bench_fig09_dislocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_dislocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
