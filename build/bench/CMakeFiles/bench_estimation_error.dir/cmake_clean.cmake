file(REMOVE_RECURSE
  "CMakeFiles/bench_estimation_error.dir/bench_estimation_error.cc.o"
  "CMakeFiles/bench_estimation_error.dir/bench_estimation_error.cc.o.d"
  "bench_estimation_error"
  "bench_estimation_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_estimation_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
