# Empty compiler generated dependencies file for bench_estimation_error.
# This may be replaced when dependencies are built.
