file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_singleton.dir/bench_fig03_singleton.cc.o"
  "CMakeFiles/bench_fig03_singleton.dir/bench_fig03_singleton.cc.o.d"
  "bench_fig03_singleton"
  "bench_fig03_singleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_singleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
