# Empty compiler generated dependencies file for bench_fig03_singleton.
# This may be replaced when dependencies are built.
