file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_opacity.dir/bench_ablation_opacity.cc.o"
  "CMakeFiles/bench_ablation_opacity.dir/bench_ablation_opacity.cc.o.d"
  "bench_ablation_opacity"
  "bench_ablation_opacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_opacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
