# Empty dependencies file for bench_ablation_opacity.
# This may be replaced when dependencies are built.
