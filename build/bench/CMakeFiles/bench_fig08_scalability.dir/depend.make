# Empty dependencies file for bench_fig08_scalability.
# This may be replaced when dependencies are built.
