# Empty compiler generated dependencies file for bench_fig05_estimation.
# This may be replaced when dependencies are built.
