file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_estimation.dir/bench_fig05_estimation.cc.o"
  "CMakeFiles/bench_fig05_estimation.dir/bench_fig05_estimation.cc.o.d"
  "bench_fig05_estimation"
  "bench_fig05_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
