# Empty compiler generated dependencies file for bench_fig12_composite_pruning.
# This may be replaced when dependencies are built.
