file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_composite_pruning.dir/bench_fig12_composite_pruning.cc.o"
  "CMakeFiles/bench_fig12_composite_pruning.dir/bench_fig12_composite_pruning.cc.o.d"
  "bench_fig12_composite_pruning"
  "bench_fig12_composite_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_composite_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
