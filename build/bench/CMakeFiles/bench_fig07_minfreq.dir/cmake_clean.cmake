file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_minfreq.dir/bench_fig07_minfreq.cc.o"
  "CMakeFiles/bench_fig07_minfreq.dir/bench_fig07_minfreq.cc.o.d"
  "bench_fig07_minfreq"
  "bench_fig07_minfreq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_minfreq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
