# Empty compiler generated dependencies file for bench_fig07_minfreq.
# This may be replaced when dependencies are built.
