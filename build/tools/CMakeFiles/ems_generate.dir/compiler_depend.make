# Empty compiler generated dependencies file for ems_generate.
# This may be replaced when dependencies are built.
