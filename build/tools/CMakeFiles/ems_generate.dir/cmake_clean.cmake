file(REMOVE_RECURSE
  "CMakeFiles/ems_generate.dir/ems_generate.cc.o"
  "CMakeFiles/ems_generate.dir/ems_generate.cc.o.d"
  "ems_generate"
  "ems_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
