file(REMOVE_RECURSE
  "CMakeFiles/ems_eval.dir/ems_eval.cc.o"
  "CMakeFiles/ems_eval.dir/ems_eval.cc.o.d"
  "ems_eval"
  "ems_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
