# Empty dependencies file for ems_eval.
# This may be replaced when dependencies are built.
