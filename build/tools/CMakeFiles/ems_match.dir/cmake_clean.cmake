file(REMOVE_RECURSE
  "CMakeFiles/ems_match.dir/ems_match.cc.o"
  "CMakeFiles/ems_match.dir/ems_match.cc.o.d"
  "ems_match"
  "ems_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
