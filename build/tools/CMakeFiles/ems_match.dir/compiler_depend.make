# Empty compiler generated dependencies file for ems_match.
# This may be replaced when dependencies are built.
