# Empty compiler generated dependencies file for ems_stats.
# This may be replaced when dependencies are built.
