file(REMOVE_RECURSE
  "CMakeFiles/ems_stats.dir/ems_stats.cc.o"
  "CMakeFiles/ems_stats.dir/ems_stats.cc.o.d"
  "ems_stats"
  "ems_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
