file(REMOVE_RECURSE
  "CMakeFiles/opq_test.dir/baselines/opq_test.cc.o"
  "CMakeFiles/opq_test.dir/baselines/opq_test.cc.o.d"
  "opq_test"
  "opq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
