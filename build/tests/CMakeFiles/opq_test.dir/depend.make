# Empty dependencies file for opq_test.
# This may be replaced when dependencies are built.
