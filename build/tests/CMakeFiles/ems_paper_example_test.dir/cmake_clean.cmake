file(REMOVE_RECURSE
  "CMakeFiles/ems_paper_example_test.dir/core/ems_paper_example_test.cc.o"
  "CMakeFiles/ems_paper_example_test.dir/core/ems_paper_example_test.cc.o.d"
  "ems_paper_example_test"
  "ems_paper_example_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_paper_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
