# Empty compiler generated dependencies file for ems_paper_example_test.
# This may be replaced when dependencies are built.
