# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for ems_paper_example_test.
