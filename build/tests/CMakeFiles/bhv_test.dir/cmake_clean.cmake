file(REMOVE_RECURSE
  "CMakeFiles/bhv_test.dir/baselines/bhv_test.cc.o"
  "CMakeFiles/bhv_test.dir/baselines/bhv_test.cc.o.d"
  "bhv_test"
  "bhv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bhv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
