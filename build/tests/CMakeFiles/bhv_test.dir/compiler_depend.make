# Empty compiler generated dependencies file for bhv_test.
# This may be replaced when dependencies are built.
