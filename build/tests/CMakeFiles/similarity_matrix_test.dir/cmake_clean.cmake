file(REMOVE_RECURSE
  "CMakeFiles/similarity_matrix_test.dir/core/similarity_matrix_test.cc.o"
  "CMakeFiles/similarity_matrix_test.dir/core/similarity_matrix_test.cc.o.d"
  "similarity_matrix_test"
  "similarity_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/similarity_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
