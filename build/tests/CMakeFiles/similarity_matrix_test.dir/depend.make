# Empty dependencies file for similarity_matrix_test.
# This may be replaced when dependencies are built.
