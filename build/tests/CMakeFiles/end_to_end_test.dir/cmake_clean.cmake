file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/end_to_end_test.dir/integration/end_to_end_test.cc.o.d"
  "end_to_end_test"
  "end_to_end_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
