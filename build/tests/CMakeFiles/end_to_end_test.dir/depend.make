# Empty dependencies file for end_to_end_test.
# This may be replaced when dependencies are built.
