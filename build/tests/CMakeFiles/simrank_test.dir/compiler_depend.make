# Empty compiler generated dependencies file for simrank_test.
# This may be replaced when dependencies are built.
