file(REMOVE_RECURSE
  "CMakeFiles/simrank_test.dir/baselines/simrank_test.cc.o"
  "CMakeFiles/simrank_test.dir/baselines/simrank_test.cc.o.d"
  "simrank_test"
  "simrank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simrank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
