# Empty compiler generated dependencies file for assignment_property_test.
# This may be replaced when dependencies are built.
