file(REMOVE_RECURSE
  "CMakeFiles/assignment_property_test.dir/property/assignment_property_test.cc.o"
  "CMakeFiles/assignment_property_test.dir/property/assignment_property_test.cc.o.d"
  "assignment_property_test"
  "assignment_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/assignment_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
