file(REMOVE_RECURSE
  "CMakeFiles/log_io_test.dir/log/log_io_test.cc.o"
  "CMakeFiles/log_io_test.dir/log/log_io_test.cc.o.d"
  "log_io_test"
  "log_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
