# Empty compiler generated dependencies file for bounds_property_test.
# This may be replaced when dependencies are built.
