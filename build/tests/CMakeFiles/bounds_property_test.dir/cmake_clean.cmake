file(REMOVE_RECURSE
  "CMakeFiles/bounds_property_test.dir/property/bounds_property_test.cc.o"
  "CMakeFiles/bounds_property_test.dir/property/bounds_property_test.cc.o.d"
  "bounds_property_test"
  "bounds_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
