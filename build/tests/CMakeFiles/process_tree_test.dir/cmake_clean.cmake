file(REMOVE_RECURSE
  "CMakeFiles/process_tree_test.dir/synth/process_tree_test.cc.o"
  "CMakeFiles/process_tree_test.dir/synth/process_tree_test.cc.o.d"
  "process_tree_test"
  "process_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
