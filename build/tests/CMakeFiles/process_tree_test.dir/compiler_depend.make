# Empty compiler generated dependencies file for process_tree_test.
# This may be replaced when dependencies are built.
