file(REMOVE_RECURSE
  "CMakeFiles/composite_candidates_test.dir/core/composite_candidates_test.cc.o"
  "CMakeFiles/composite_candidates_test.dir/core/composite_candidates_test.cc.o.d"
  "composite_candidates_test"
  "composite_candidates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_candidates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
