# Empty dependencies file for composite_candidates_test.
# This may be replaced when dependencies are built.
