# Empty dependencies file for estimation_property_test.
# This may be replaced when dependencies are built.
