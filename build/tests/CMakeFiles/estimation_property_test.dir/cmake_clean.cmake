file(REMOVE_RECURSE
  "CMakeFiles/estimation_property_test.dir/property/estimation_property_test.cc.o"
  "CMakeFiles/estimation_property_test.dir/property/estimation_property_test.cc.o.d"
  "estimation_property_test"
  "estimation_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimation_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
