file(REMOVE_RECURSE
  "CMakeFiles/pnml_export_test.dir/discovery/pnml_export_test.cc.o"
  "CMakeFiles/pnml_export_test.dir/discovery/pnml_export_test.cc.o.d"
  "pnml_export_test"
  "pnml_export_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pnml_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
