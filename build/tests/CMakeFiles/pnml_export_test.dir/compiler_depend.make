# Empty compiler generated dependencies file for pnml_export_test.
# This may be replaced when dependencies are built.
