file(REMOVE_RECURSE
  "CMakeFiles/parallel_ems_test.dir/core/parallel_ems_test.cc.o"
  "CMakeFiles/parallel_ems_test.dir/core/parallel_ems_test.cc.o.d"
  "parallel_ems_test"
  "parallel_ems_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_ems_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
