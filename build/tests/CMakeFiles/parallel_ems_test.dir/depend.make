# Empty dependencies file for parallel_ems_test.
# This may be replaced when dependencies are built.
