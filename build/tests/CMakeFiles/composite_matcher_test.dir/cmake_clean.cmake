file(REMOVE_RECURSE
  "CMakeFiles/composite_matcher_test.dir/core/composite_matcher_test.cc.o"
  "CMakeFiles/composite_matcher_test.dir/core/composite_matcher_test.cc.o.d"
  "composite_matcher_test"
  "composite_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
