# Empty compiler generated dependencies file for composite_matcher_test.
# This may be replaced when dependencies are built.
