file(REMOVE_RECURSE
  "CMakeFiles/bounds_test.dir/core/bounds_test.cc.o"
  "CMakeFiles/bounds_test.dir/core/bounds_test.cc.o.d"
  "bounds_test"
  "bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
