# Empty dependencies file for bounds_test.
# This may be replaced when dependencies are built.
