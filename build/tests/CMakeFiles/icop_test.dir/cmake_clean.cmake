file(REMOVE_RECURSE
  "CMakeFiles/icop_test.dir/baselines/icop_test.cc.o"
  "CMakeFiles/icop_test.dir/baselines/icop_test.cc.o.d"
  "icop_test"
  "icop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
