# Empty compiler generated dependencies file for icop_test.
# This may be replaced when dependencies are built.
