file(REMOVE_RECURSE
  "CMakeFiles/event_log_test.dir/log/event_log_test.cc.o"
  "CMakeFiles/event_log_test.dir/log/event_log_test.cc.o.d"
  "event_log_test"
  "event_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
