# Empty compiler generated dependencies file for event_log_test.
# This may be replaced when dependencies are built.
