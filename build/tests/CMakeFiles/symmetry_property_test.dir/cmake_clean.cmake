file(REMOVE_RECURSE
  "CMakeFiles/symmetry_property_test.dir/property/symmetry_property_test.cc.o"
  "CMakeFiles/symmetry_property_test.dir/property/symmetry_property_test.cc.o.d"
  "symmetry_property_test"
  "symmetry_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
