# Empty compiler generated dependencies file for symmetry_property_test.
# This may be replaced when dependencies are built.
