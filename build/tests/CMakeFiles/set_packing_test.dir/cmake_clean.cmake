file(REMOVE_RECURSE
  "CMakeFiles/set_packing_test.dir/assignment/set_packing_test.cc.o"
  "CMakeFiles/set_packing_test.dir/assignment/set_packing_test.cc.o.d"
  "set_packing_test"
  "set_packing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/set_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
