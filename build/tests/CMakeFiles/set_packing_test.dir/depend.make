# Empty dependencies file for set_packing_test.
# This may be replaced when dependencies are built.
