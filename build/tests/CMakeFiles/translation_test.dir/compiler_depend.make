# Empty compiler generated dependencies file for translation_test.
# This may be replaced when dependencies are built.
