file(REMOVE_RECURSE
  "CMakeFiles/translation_test.dir/core/translation_test.cc.o"
  "CMakeFiles/translation_test.dir/core/translation_test.cc.o.d"
  "translation_test"
  "translation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
