# Empty dependencies file for repository_test.
# This may be replaced when dependencies are built.
