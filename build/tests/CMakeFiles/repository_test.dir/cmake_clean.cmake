file(REMOVE_RECURSE
  "CMakeFiles/repository_test.dir/core/repository_test.cc.o"
  "CMakeFiles/repository_test.dir/core/repository_test.cc.o.d"
  "repository_test"
  "repository_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repository_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
