# Empty dependencies file for ems_similarity_test.
# This may be replaced when dependencies are built.
