file(REMOVE_RECURSE
  "CMakeFiles/ems_similarity_test.dir/core/ems_similarity_test.cc.o"
  "CMakeFiles/ems_similarity_test.dir/core/ems_similarity_test.cc.o.d"
  "ems_similarity_test"
  "ems_similarity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ems_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
