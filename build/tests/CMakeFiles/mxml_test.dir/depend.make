# Empty dependencies file for mxml_test.
# This may be replaced when dependencies are built.
