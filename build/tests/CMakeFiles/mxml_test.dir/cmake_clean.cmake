file(REMOVE_RECURSE
  "CMakeFiles/mxml_test.dir/log/mxml_test.cc.o"
  "CMakeFiles/mxml_test.dir/log/mxml_test.cc.o.d"
  "mxml_test"
  "mxml_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mxml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
