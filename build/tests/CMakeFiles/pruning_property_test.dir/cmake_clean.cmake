file(REMOVE_RECURSE
  "CMakeFiles/pruning_property_test.dir/property/pruning_property_test.cc.o"
  "CMakeFiles/pruning_property_test.dir/property/pruning_property_test.cc.o.d"
  "pruning_property_test"
  "pruning_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pruning_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
