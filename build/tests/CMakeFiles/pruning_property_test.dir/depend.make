# Empty dependencies file for pruning_property_test.
# This may be replaced when dependencies are built.
