file(REMOVE_RECURSE
  "CMakeFiles/roundtrip_property_test.dir/property/roundtrip_property_test.cc.o"
  "CMakeFiles/roundtrip_property_test.dir/property/roundtrip_property_test.cc.o.d"
  "roundtrip_property_test"
  "roundtrip_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roundtrip_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
