# Empty dependencies file for roundtrip_property_test.
# This may be replaced when dependencies are built.
