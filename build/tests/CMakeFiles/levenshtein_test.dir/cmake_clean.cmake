file(REMOVE_RECURSE
  "CMakeFiles/levenshtein_test.dir/text/levenshtein_test.cc.o"
  "CMakeFiles/levenshtein_test.dir/text/levenshtein_test.cc.o.d"
  "levenshtein_test"
  "levenshtein_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levenshtein_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
