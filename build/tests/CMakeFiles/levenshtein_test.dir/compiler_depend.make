# Empty compiler generated dependencies file for levenshtein_test.
# This may be replaced when dependencies are built.
