file(REMOVE_RECURSE
  "CMakeFiles/flooding_test.dir/baselines/flooding_test.cc.o"
  "CMakeFiles/flooding_test.dir/baselines/flooding_test.cc.o.d"
  "flooding_test"
  "flooding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flooding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
