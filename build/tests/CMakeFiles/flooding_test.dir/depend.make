# Empty dependencies file for flooding_test.
# This may be replaced when dependencies are built.
