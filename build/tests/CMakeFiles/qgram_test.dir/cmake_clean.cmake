file(REMOVE_RECURSE
  "CMakeFiles/qgram_test.dir/text/qgram_test.cc.o"
  "CMakeFiles/qgram_test.dir/text/qgram_test.cc.o.d"
  "qgram_test"
  "qgram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qgram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
