# Empty dependencies file for qgram_test.
# This may be replaced when dependencies are built.
