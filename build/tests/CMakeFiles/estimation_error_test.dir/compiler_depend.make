# Empty compiler generated dependencies file for estimation_error_test.
# This may be replaced when dependencies are built.
