file(REMOVE_RECURSE
  "CMakeFiles/estimation_error_test.dir/core/estimation_error_test.cc.o"
  "CMakeFiles/estimation_error_test.dir/core/estimation_error_test.cc.o.d"
  "estimation_error_test"
  "estimation_error_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimation_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
