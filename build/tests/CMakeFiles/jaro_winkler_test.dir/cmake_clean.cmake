file(REMOVE_RECURSE
  "CMakeFiles/jaro_winkler_test.dir/text/jaro_winkler_test.cc.o"
  "CMakeFiles/jaro_winkler_test.dir/text/jaro_winkler_test.cc.o.d"
  "jaro_winkler_test"
  "jaro_winkler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jaro_winkler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
