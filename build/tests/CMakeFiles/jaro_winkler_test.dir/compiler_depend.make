# Empty compiler generated dependencies file for jaro_winkler_test.
# This may be replaced when dependencies are built.
