# Empty dependencies file for log_filter_test.
# This may be replaced when dependencies are built.
