file(REMOVE_RECURSE
  "CMakeFiles/log_filter_test.dir/log/log_filter_test.cc.o"
  "CMakeFiles/log_filter_test.dir/log/log_filter_test.cc.o.d"
  "log_filter_test"
  "log_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
