# Empty dependencies file for convergence_property_test.
# This may be replaced when dependencies are built.
