file(REMOVE_RECURSE
  "CMakeFiles/convergence_property_test.dir/property/convergence_property_test.cc.o"
  "CMakeFiles/convergence_property_test.dir/property/convergence_property_test.cc.o.d"
  "convergence_property_test"
  "convergence_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
