file(REMOVE_RECURSE
  "CMakeFiles/match_report_test.dir/core/match_report_test.cc.o"
  "CMakeFiles/match_report_test.dir/core/match_report_test.cc.o.d"
  "match_report_test"
  "match_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
