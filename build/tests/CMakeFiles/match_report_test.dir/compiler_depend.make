# Empty compiler generated dependencies file for match_report_test.
# This may be replaced when dependencies are built.
