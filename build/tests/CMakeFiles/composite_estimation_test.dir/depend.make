# Empty dependencies file for composite_estimation_test.
# This may be replaced when dependencies are built.
