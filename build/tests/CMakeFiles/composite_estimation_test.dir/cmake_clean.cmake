file(REMOVE_RECURSE
  "CMakeFiles/composite_estimation_test.dir/core/composite_estimation_test.cc.o"
  "CMakeFiles/composite_estimation_test.dir/core/composite_estimation_test.cc.o.d"
  "composite_estimation_test"
  "composite_estimation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
