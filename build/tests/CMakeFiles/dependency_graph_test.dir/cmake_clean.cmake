file(REMOVE_RECURSE
  "CMakeFiles/dependency_graph_test.dir/graph/dependency_graph_test.cc.o"
  "CMakeFiles/dependency_graph_test.dir/graph/dependency_graph_test.cc.o.d"
  "dependency_graph_test"
  "dependency_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
