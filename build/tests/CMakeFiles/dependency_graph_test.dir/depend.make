# Empty dependencies file for dependency_graph_test.
# This may be replaced when dependencies are built.
