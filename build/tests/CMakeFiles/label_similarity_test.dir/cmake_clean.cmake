file(REMOVE_RECURSE
  "CMakeFiles/label_similarity_test.dir/text/label_similarity_test.cc.o"
  "CMakeFiles/label_similarity_test.dir/text/label_similarity_test.cc.o.d"
  "label_similarity_test"
  "label_similarity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/label_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
