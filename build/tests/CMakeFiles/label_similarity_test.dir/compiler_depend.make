# Empty compiler generated dependencies file for label_similarity_test.
# This may be replaced when dependencies are built.
