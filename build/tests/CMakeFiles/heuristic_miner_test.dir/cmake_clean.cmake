file(REMOVE_RECURSE
  "CMakeFiles/heuristic_miner_test.dir/discovery/heuristic_miner_test.cc.o"
  "CMakeFiles/heuristic_miner_test.dir/discovery/heuristic_miner_test.cc.o.d"
  "heuristic_miner_test"
  "heuristic_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heuristic_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
