# Empty dependencies file for heuristic_miner_test.
# This may be replaced when dependencies are built.
