# Empty dependencies file for ged_test.
# This may be replaced when dependencies are built.
