// Process-warehouse search (the paper's motivating application): load a
// repository of subsidiary processes and query it with a new log — the
// best hits come back with full event correspondences, so analyses can
// immediately join data across systems.
#include <cstdio>

#include "core/repository.h"
#include "synth/dataset.h"

int main() {
  using namespace ems;

  // A repository of eight distinct subsidiary processes.
  MatchOptions match_opts;
  match_opts.ems.alpha = 0.6;
  match_opts.label_measure = LabelMeasure::kQGramCosine;
  LogRepository repo(match_opts);
  const char* names[] = {"orders_north", "orders_south", "claims",
                         "procurement", "hr_onboarding", "billing",
                         "maintenance", "logistics"};
  for (int i = 0; i < 8; ++i) {
    PairOptions opts;
    opts.num_activities = 12 + i;
    opts.num_traces = 80;
    opts.dislocation = 0;
    opts.opaque = false;
    opts.seed = 1000 + static_cast<uint64_t>(i) * 17;
    Status s = repo.Add(names[i], MakeLogPair(Testbed::kDsFB, opts).log1);
    if (!s.ok()) {
      std::fprintf(stderr, "add failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  // The query: the "claims" process as run (and renamed) by another
  // subsidiary — drifted probabilities, typographic name variants.
  PairOptions query_opts;
  query_opts.num_activities = 14;  // matches the repository's "claims"
  query_opts.num_traces = 80;
  query_opts.dislocation = 1;
  query_opts.opaque_fraction = 0.2;
  query_opts.seed = 1000 + 2 * 17;
  EventLog query = MakeLogPair(Testbed::kDsB, query_opts).log2;

  Result<std::vector<RepositoryHit>> hits = repo.Query(query, 3);
  if (!hits.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 hits.status().ToString().c_str());
    return 1;
  }

  std::printf("query: %zu events, %zu traces — top %zu of %zu processes:\n\n",
              query.NumEvents(), query.NumTraces(), hits->size(),
              repo.size());
  for (size_t rank = 0; rank < hits->size(); ++rank) {
    const RepositoryHit& hit = (*hits)[rank];
    std::printf("%zu. %-16s score %.3f (%zu correspondences)\n", rank + 1,
                hit.name.c_str(), hit.score,
                hit.match.correspondences.size());
  }

  // Drill into the winner's correspondences.
  const RepositoryHit& best = (*hits)[0];
  std::printf("\nbest hit '%s' — first correspondences:\n",
              best.name.c_str());
  size_t shown = 0;
  for (const Correspondence& c : best.match.correspondences) {
    if (++shown > 6) break;
    std::printf("  %-28s <-> %-28s (%.3f)\n", c.events1[0].c_str(),
                c.events2[0].c_str(), c.similarity);
  }
  return 0;
}
