// Quickstart: match two small heterogeneous event logs end-to-end.
//
// Build:   cmake -B build -G Ninja && cmake --build build
// Run:     ./build/examples/quickstart
//
// The two logs record the same ordering process in different systems:
// log 2 uses different (partly garbled) activity names and starts its
// traces one step later — the opaque-name and dislocation challenges the
// EMS similarity was designed for.
#include <cstdio>

#include "core/matcher.h"

int main() {
  using namespace ems;

  // Subsidiary 1: payment, inventory check, shipment.
  EventLog log1;
  for (int i = 0; i < 10; ++i) {
    log1.AddTrace(i % 2 == 0
                      ? std::vector<std::string>{"pay", "check stock",
                                                 "ship", "invoice"}
                      : std::vector<std::string>{"pay", "check stock",
                                                 "invoice", "ship"});
  }

  // Subsidiary 2: same process, opaque names, an extra "accept" step at
  // the beginning (so "x77" = pay is dislocated).
  EventLog log2;
  for (int i = 0; i < 10; ++i) {
    log2.AddTrace(i % 2 == 0
                      ? std::vector<std::string>{"accept", "x77", "q13",
                                                 "s02", "b55"}
                      : std::vector<std::string>{"accept", "x77", "q13",
                                                 "b55", "s02"});
  }

  MatchOptions options;
  options.ems.alpha = 1.0;  // opaque names: structural similarity only
  Matcher matcher(options);
  Result<MatchResult> result = matcher.Match(log1, log2);
  if (!result.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("correspondences (similarity):\n");
  for (const Correspondence& c : result->correspondences) {
    std::printf("  %-12s <-> %-8s  (%.3f)\n", c.events1[0].c_str(),
                c.events2[0].c_str(), c.similarity);
  }
  std::printf("\nEMS ran %d iterations, %llu formula evaluations\n",
              result->ems_stats.iterations,
              static_cast<unsigned long long>(
                  result->ems_stats.formula_evaluations));
  return 0;
}
