// The estimation knob in practice: how many exact iterations I to spend
// before extrapolating (Section 3.5). Run on one larger generated pair;
// prints accuracy and cost per I so users can pick their own trade-off.
#include <cstdio>

#include "eval/harness.h"
#include "eval/table.h"
#include "synth/dataset.h"

int main() {
  using namespace ems;

  PairOptions pair_opts;
  pair_opts.num_activities = 60;
  pair_opts.num_traces = 200;
  pair_opts.dislocation = 2;
  pair_opts.seed = 7;
  LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);

  std::printf("pair: %zu vs %zu events, %zu traces each\n\n",
              pair.log1.NumEvents(), pair.log2.NumEvents(),
              pair.log1.NumTraces());

  TextTable table({"I", "f-measure", "time", "formula evaluations"});
  for (int iterations : {0, 1, 2, 5, 10, 20}) {
    HarnessOptions opts;
    opts.estimation_iterations = iterations;
    MethodRun run = RunMethod(Method::kEmsEstimated, pair, opts);
    table.AddRow({std::to_string(iterations), Cell(run.quality.f_measure),
                  MillisCell(run.millis),
                  std::to_string(run.ems_stats.formula_evaluations)});
  }
  HarnessOptions exact_opts;
  MethodRun exact = RunMethod(Method::kEms, pair, exact_opts);
  table.AddRow({"exact", Cell(exact.quality.f_measure),
                MillisCell(exact.millis),
                std::to_string(exact.ems_stats.formula_evaluations)});
  std::printf("%s", table.ToString().c_str());
  return 0;
}
