// Subsidiary integration at scale: generates the 149-log-pair corpus that
// stands in for the paper's bus-manufacturer dataset, matches every pair
// with EMS, and prints a per-testbed quality report — the workflow a
// process-data-warehouse team would run before consolidating systems.
//
// Optionally pass a directory to also export every pair as XES:
//   ./build/examples/subsidiary_integration /tmp/corpus
#include <cstdio>
#include <string>

#include "eval/harness.h"
#include "eval/table.h"
#include "log/xes.h"
#include "synth/dataset.h"

int main(int argc, char** argv) {
  using namespace ems;

  RealisticDatasetOptions corpus_opts;
  corpus_opts.ds_f_pairs = 8;  // scaled down for an example run
  corpus_opts.ds_b_pairs = 8;
  corpus_opts.ds_fb_pairs = 8;
  corpus_opts.composite_pairs = 6;
  RealisticDataset corpus = MakeRealisticDataset(corpus_opts);

  if (argc > 1) {
    std::string dir = argv[1];
    int exported = 0;
    auto export_group = [&](const std::vector<LogPair>& group) {
      for (const LogPair& pair : group) {
        std::string base = dir + "/pair" + std::to_string(exported++);
        if (!WriteXesFile(pair.log1, base + "_a.xes").ok() ||
            !WriteXesFile(pair.log2, base + "_b.xes").ok()) {
          std::fprintf(stderr, "export to %s failed\n", dir.c_str());
          return false;
        }
      }
      return true;
    };
    if (export_group(corpus.ds_f) && export_group(corpus.ds_b) &&
        export_group(corpus.ds_fb) && export_group(corpus.composite)) {
      std::printf("exported %d XES pairs to %s\n\n", exported, dir.c_str());
    }
  }

  HarnessOptions harness;
  harness.use_labels = true;  // subsidiary names are only partly garbled

  TextTable table({"group", "pairs", "precision", "recall", "f-measure",
                   "mean time"});
  auto report = [&](const char* name, const std::vector<LogPair>& group,
                    bool composites) {
    HarnessOptions opts = harness;
    opts.composites = composites;
    QualityAccumulator acc;
    double ms = 0.0;
    for (const LogPair& pair : group) {
      MethodRun run = RunMethod(Method::kEms, pair, opts);
      acc.Add(run.quality);
      ms += run.millis;
    }
    MatchQuality mean = acc.Mean();
    table.AddRow({name, std::to_string(group.size()), Cell(mean.precision),
                  Cell(mean.recall), Cell(mean.f_measure),
                  MillisCell(ms / static_cast<double>(group.size()))});
  };
  report("DS-F (tail dislocations)", corpus.ds_f, false);
  report("DS-B (head dislocations)", corpus.ds_b, false);
  report("DS-FB (both)", corpus.ds_fb, false);
  report("composite events", corpus.composite, true);

  std::printf("EMS matching quality across the subsidiary corpus:\n%s",
              table.ToString().c_str());
  std::printf("\n(rerun with a directory argument to export the corpus "
              "as XES)\n");
  return 0;
}
