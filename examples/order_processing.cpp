// The paper's running example (Figure 1): two turbine-order-processing
// logs from different subsidiaries — opaque names, a dislocated payment
// step, and a composite "Inventory Checking & Validation" event. Shows
// the full pipeline including composite (m:n) matching and prints the
// similarity matrix the algorithms reason over.
//
// Note: on logs this tiny (10 near-identical traces) the conservative
// composite objective usually accepts no merge — the candidate pool is
// evaluated but the greedy gain stays below delta. See
// examples/subsidiary_integration.cpp for composite recovery on the
// generated corpus, where injected composites are found.
#include <cstdio>

#include "core/matcher.h"

namespace {

ems::EventLog BuildLog1() {
  ems::EventLog log;
  // 10 orders: 40% paid cash, 60% by card; shipping and the confirmation
  // email happen concurrently.
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> t;
    t.push_back(i < 4 ? "Paid by Cash" : "Paid by Credit Card");
    t.push_back("Check Inventory");
    t.push_back("Validate");
    if (i % 2 == 0) {
      t.push_back("Ship Goods");
      t.push_back("Email Customer");
    } else {
      t.push_back("Email Customer");
      t.push_back("Ship Goods");
    }
    log.AddTrace(t);
  }
  return log;
}

ems::EventLog BuildLog2() {
  ems::EventLog log;
  // The other subsidiary accepts the order first (dislocation), performs
  // inventory checking and validation as ONE step (composite), and one
  // event name is garbled by an encoding problem (opaque).
  for (int i = 0; i < 10; ++i) {
    std::vector<std::string> t;
    t.push_back("Order Accepted");
    t.push_back(i < 4 ? "Paid by Cash" : "Paid by Credit Card");
    t.push_back("Inventory Checking & Validation");
    t.push_back("??????");  // garbled "Delivery"
    t.push_back("Email");
    log.AddTrace(t);
  }
  return log;
}

}  // namespace

int main() {
  using namespace ems;
  EventLog log1 = BuildLog1();
  EventLog log2 = BuildLog2();

  // Pipeline with labels integrated (alpha = 0.5) and composite matching.
  MatchOptions options;
  options.ems.alpha = 0.5;
  options.label_measure = LabelMeasure::kQGramCosine;
  options.match_composites = true;
  options.composite.delta = 0.001;

  Matcher matcher(options);
  Result<MatchResult> result = matcher.Match(log1, log2);
  if (!result.ok()) {
    std::fprintf(stderr, "matching failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Turbine order processing: L1 (%zu events) vs L2 (%zu "
              "events)\n\n",
              log1.NumEvents(), log2.NumEvents());
  std::printf("correspondences:\n");
  for (const Correspondence& c : result->correspondences) {
    std::string left, right;
    for (size_t i = 0; i < c.events1.size(); ++i) {
      if (i > 0) left += " + ";
      left += c.events1[i];
    }
    for (size_t i = 0; i < c.events2.size(); ++i) {
      if (i > 0) right += " + ";
      right += c.events2[i];
    }
    std::printf("  %-38s <-> %-34s (%.3f)\n", left.c_str(), right.c_str(),
                c.similarity);
  }
  std::printf("\ncomposite matcher: %d candidates evaluated, %d merges\n",
              result->composite_stats.candidates_evaluated,
              result->composite_stats.merges_accepted);
  std::printf("\nfinal similarity matrix:\n%s",
              result->similarity.DebugString(result->graph1, result->graph2)
                  .c_str());
  return 0;
}
