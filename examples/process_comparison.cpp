// Comparing two subsidiaries' implementations of the same process — the
// "find common parts for simplification and reuse" application of the
// paper's introduction. Pipeline: match events across the heterogeneous
// logs, translate one log into the other's vocabulary, quantify
// cross-log conformance, mine both causal nets, and emit a Graphviz
// rendering of the matched graphs.
#include <cstdio>
#include <fstream>

#include "core/match_report.h"
#include "core/translation.h"
#include "discovery/heuristic_miner.h"
#include "graph/dot_export.h"
#include "synth/dataset.h"

int main(int argc, char** argv) {
  using namespace ems;

  // Two subsidiaries running the same 16-step process: subsidiary B's
  // log has drifted branching odds, renamed events, one unrecorded
  // activity, and starts its traces one step later.
  PairOptions opts;
  opts.num_activities = 16;
  opts.num_traces = 120;
  opts.dislocation = 1;
  opts.seed = 77;
  LogPair pair = MakeLogPair(Testbed::kDsB, opts);

  // Raw conformance is meaningless before matching: the vocabularies
  // barely overlap.
  ConformanceReport raw = CrossLogConformance(pair.log1, pair.log2);
  std::printf("before matching: vocabulary overlap %.2f, trace coverage "
              "%.2f\n",
              raw.vocabulary_overlap, raw.trace_coverage_1in2);

  MatchOptions match_opts;
  match_opts.ems.alpha = 0.5;
  match_opts.label_measure = LabelMeasure::kQGramCosine;
  Matcher matcher(match_opts);
  Result<MatchResult> match = matcher.Match(pair.log1, pair.log2);
  if (!match.ok()) {
    std::fprintf(stderr, "match failed: %s\n",
                 match.status().ToString().c_str());
    return 1;
  }
  std::printf("matched %zu event pairs\n", match->correspondences.size());

  // Translate subsidiary A's log into B's vocabulary and re-measure.
  auto table = TranslationTable(match->correspondences);
  EventLog translated = TranslateLog(pair.log1, table);
  ConformanceReport unified = CrossLogConformance(translated, pair.log2);
  std::printf("after matching:  vocabulary overlap %.2f, direct-follows "
              "overlap %.2f\n",
              unified.vocabulary_overlap, unified.relation_overlap);
  std::printf("                 trace coverage A-in-B %.2f, B-in-A %.2f, "
              "F %.2f\n\n",
              unified.trace_coverage_1in2, unified.trace_coverage_2in1,
              unified.f_conformance);

  // Mine both causal nets (what a process analyst would inspect next).
  CausalNet net1 = MineHeuristicNet(pair.log1);
  CausalNet net2 = MineHeuristicNet(pair.log2);
  std::printf("mined causal nets: A has %zu edges, B has %zu edges\n",
              net1.edges.size(), net2.edges.size());
  size_t and_splits = 0;
  for (bool b : net1.and_split) and_splits += b;
  std::printf("A: %zu start / %zu end activities, %zu AND-splits, %zu "
              "short loops\n\n",
              net1.start_activities.size(), net1.end_activities.size(),
              and_splits, net1.loops2.size());

  std::printf("match report (JSON):\n%s\n",
              MatchResultToJson(*match).c_str());

  if (argc > 1) {
    std::ofstream dot(argv[1]);
    if (dot && WriteMatchDot(*match, dot).ok()) {
      std::printf("\nGraphviz rendering written to %s (render with "
                  "`dot -Tsvg`)\n",
                  argv[1]);
    }
  } else {
    std::printf("\n(pass a filename to export the matched graphs as "
                "Graphviz DOT)\n");
  }
  return 0;
}
