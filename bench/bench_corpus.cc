// Corpus top-k benchmark and equivalence harness (docs/CORPUS.md):
// brute-force all-pairs ranking vs the q-gram-indexed bound-ranked
// scheduler on seeded synthetic warehouse corpora.
//
// For every corpus size, the harness builds the index once, runs the
// same member queries through both paths, and requires the indexed
// ranking to be byte-identical to brute force — names, scores (bitwise),
// and order — so recall@k is 1.0 by construction; the binary exits
// nonzero on any divergence. It reports the index build time, the mean
// per-query wall time of both paths, the speedup, and the fraction of
// candidates disposed of by the stage-0 bound resp. the in-run abort.
//
// When EMS_BENCH_JSON_DIR names a directory, writes BENCH_corpus.json
// there (atomically, tmp + rename) with one record per corpus size.
//
// Flags: --sizes=N[,N...] (default 1000), --family-size=N (default 16),
//        --k=N (default 10), --queries=N (default 3),
//        --alpha=A (default 0.3), --threads=N, --seed=N (default 2014).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/matcher.h"
#include "exec/thread_pool.h"
#include "index/corpus_index.h"
#include "index/topk_scheduler.h"
#include "synth/dataset.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace ems {
namespace {

struct SizeResult {
  size_t members = 0;
  size_t k = 0;
  int queries = 0;
  double build_millis = 0.0;
  double brute_mean_millis = 0.0;
  double indexed_mean_millis = 0.0;
  double speedup = 0.0;
  double recall_at_k = 1.0;
  double pruned_fraction = 0.0;   // never started EMS
  double aborted_fraction = 0.0;  // started, killed by the in-run bound
  double exact_fraction = 0.0;    // completed (scored)
  bool identical = true;
};

bool SameHits(const std::vector<index::TopKHit>& a,
              const std::vector<index::TopKHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name) return false;
    // Bitwise, not ==: the acceptance bar is byte-identical rankings.
    if (std::memcmp(&a[i].score, &b[i].score, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

void WriteJson(const std::vector<SizeResult>& results, double alpha,
               int family_size) {
  const char* env = std::getenv("EMS_BENCH_JSON_DIR");
  if (env == nullptr || env[0] == '\0') return;
  JsonWriter w;
  w.BeginObject();
  w.Key("figure");
  w.String("corpus");
  w.Key("description");
  w.String("indexed top-k vs brute-force all-pairs ranking");
  w.Key("threads");
  w.Int(bench::BenchWorkers());
  w.Key("alpha");
  w.Number(alpha);
  w.Key("family_size");
  w.Int(family_size);
  w.Key("groups");
  w.BeginArray();
  for (const SizeResult& r : results) {
    w.BeginObject();
    w.Key("members");
    w.Int(static_cast<long long>(r.members));
    w.Key("k");
    w.Int(static_cast<long long>(r.k));
    w.Key("queries");
    w.Int(r.queries);
    w.Key("build_millis");
    w.Number(r.build_millis);
    w.Key("brute_mean_millis");
    w.Number(r.brute_mean_millis);
    w.Key("indexed_mean_millis");
    w.Number(r.indexed_mean_millis);
    w.Key("speedup");
    w.Number(r.speedup);
    w.Key("recall_at_k");
    w.Number(r.recall_at_k);
    w.Key("pruned_fraction");
    w.Number(r.pruned_fraction);
    w.Key("aborted_fraction");
    w.Number(r.aborted_fraction);
    w.Key("exact_fraction");
    w.Number(r.exact_fraction);
    w.Key("identical");
    w.Bool(r.identical);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string path = std::string(env) + "/BENCH_corpus.json";
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (!out) return;
  out << w.str() << "\n";
  out.flush();
  const bool good = out.good();
  out.close();
  if (good) std::rename(tmp.c_str(), path.c_str());
  else std::remove(tmp.c_str());
}

}  // namespace
}  // namespace ems

int main(int argc, char** argv) {
  using namespace ems;
  std::vector<size_t> sizes;
  int family_size = 16;
  size_t k = 10;
  int queries = 3;
  double alpha = 0.3;
  uint64_t seed = 2014;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value_of("sizes")) {
      for (const char* p = v; *p != '\0';) {
        sizes.push_back(static_cast<size_t>(std::atoll(p)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (const char* v = value_of("family-size")) {
      family_size = std::atoi(v);
    } else if (const char* v = value_of("k")) {
      k = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value_of("queries")) {
      queries = std::atoi(v);
    } else if (const char* v = value_of("alpha")) {
      alpha = std::atof(v);
    } else if (const char* v = value_of("seed")) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::Init(static_cast<int>(passthrough.size()), passthrough.data());
  if (sizes.empty()) sizes.push_back(1000);

  bench::PrintHeader("corpus",
                     "indexed top-k vs brute-force all-pairs ranking");

  MatchOptions match;
  match.label_measure = LabelMeasure::kQGramCosine;
  match.ems.alpha = alpha;
  // Parallelism goes across candidates, not inside one EMS run.
  match.ems.num_threads = 1;

  std::vector<SizeResult> results;
  bool all_identical = true;
  for (size_t members : sizes) {
    SynthCorpusOptions corpus_opts;
    corpus_opts.num_members = static_cast<int>(members);
    corpus_opts.members_per_family = family_size;
    corpus_opts.seed = seed;
    std::vector<CorpusMember> corpus = MakeCorpus(corpus_opts);

    index::CorpusIndex index;
    Timer build_timer;
    for (CorpusMember& m : corpus) {
      Status s = index.Add(m.name, std::move(m.log));
      if (!s.ok()) {
        std::fprintf(stderr, "index build failed: %s\n",
                     s.ToString().c_str());
        return 1;
      }
    }
    SizeResult r;
    r.members = index.size();
    r.k = k;
    r.queries = queries;
    r.build_millis = build_timer.ElapsedMillis();

    index::TopKOptions brute_opts;
    brute_opts.k = k;
    brute_opts.match = match;
    brute_opts.pool = bench::BenchPool();
    brute_opts.force_brute_force = true;
    index::TopKOptions indexed_opts = brute_opts;
    indexed_opts.force_brute_force = false;

    double brute_total = 0.0;
    double indexed_total = 0.0;
    uint64_t pruned = 0, aborted = 0, exact = 0, retrieved = 0;
    double recall_total = 0.0;
    for (int q = 0; q < queries; ++q) {
      // Query members spread across the corpus, so different families
      // (and different process sizes) drive the incumbent.
      const size_t qi = (static_cast<size_t>(q) * index.size()) / queries;
      const EventLog& query = index.entry(qi).log;

      index::TopKScheduler brute(index, brute_opts);
      Timer bt;
      Result<std::vector<index::TopKHit>> bhits = brute.Query(query);
      brute_total += bt.ElapsedMillis();

      index::TopKScheduler indexed(index, indexed_opts);
      Timer it;
      Result<std::vector<index::TopKHit>> ihits = indexed.Query(query);
      indexed_total += it.ElapsedMillis();

      if (!bhits.ok() || !ihits.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     (!bhits.ok() ? bhits.status() : ihits.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      const index::TopKStats& stats = indexed.stats();
      retrieved += stats.candidates_retrieved;
      pruned += stats.pruned_by_bound;
      aborted += stats.aborted_runs;
      exact += stats.exact_runs;
      size_t hit = 0;
      for (const index::TopKHit& b : *bhits) {
        for (const index::TopKHit& i2 : *ihits) {
          if (i2.name == b.name) {
            ++hit;
            break;
          }
        }
      }
      recall_total += bhits->empty()
                          ? 1.0
                          : static_cast<double>(hit) /
                                static_cast<double>(bhits->size());
      if (!SameHits(*bhits, *ihits)) {
        r.identical = false;
        std::fprintf(stderr,
                     "FAIL: indexed ranking diverges from brute force "
                     "(members=%zu query=%zu)\n",
                     members, qi);
      }
    }
    r.brute_mean_millis = brute_total / queries;
    r.indexed_mean_millis = indexed_total / queries;
    r.speedup = r.indexed_mean_millis > 0.0
                    ? r.brute_mean_millis / r.indexed_mean_millis
                    : 0.0;
    r.recall_at_k = recall_total / queries;
    if (retrieved > 0) {
      r.pruned_fraction =
          static_cast<double>(pruned) / static_cast<double>(retrieved);
      r.aborted_fraction =
          static_cast<double>(aborted) / static_cast<double>(retrieved);
      r.exact_fraction =
          static_cast<double>(exact) / static_cast<double>(retrieved);
    }
    all_identical = all_identical && r.identical && r.recall_at_k == 1.0;

    std::printf(
        "N=%-6zu build %8.1f ms | brute %9.1f ms/query | indexed %8.1f "
        "ms/query | speedup %5.2fx | recall@%zu %.3f | %4.1f%% pruned, "
        "%4.1f%% aborted, %4.1f%% exact %s\n",
        r.members, r.build_millis, r.brute_mean_millis,
        r.indexed_mean_millis, r.speedup, k, r.recall_at_k,
        100.0 * r.pruned_fraction, 100.0 * r.aborted_fraction,
        100.0 * r.exact_fraction, r.identical ? "" : "MISMATCH");
    results.push_back(r);
    WriteJson(results, alpha, family_size);
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "equivalence FAILED: indexed != brute force somewhere\n");
    return 1;
  }
  std::printf("equivalence OK: indexed rankings byte-identical to brute "
              "force on every query\n");
  return 0;
}
