// Ablation: greedy composite-matching objective — the paper's literal
// all-pairs average (Problem 1) against the matched-mean objective this
// library defaults to (see DESIGN.md for why the literal objective is
// insensitive to true merges on play-out graphs).
#include "bench_common.h"

#include "core/composite_matcher.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Ablation", "composite greedy objective");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());
  std::vector<const LogPair*> pairs = Pointers(ds.composite);

  TextTable table({"objective", "f-measure", "merges accepted",
                   "mean time"});
  const struct {
    const char* name;
    CompositeObjective objective;
  } configs[] = {
      {"all-pairs average (paper)", CompositeObjective::kAveragePairs},
      {"matched mean (default)", CompositeObjective::kMatchedTotal},
  };
  for (const auto& config : configs) {
    HarnessOptions options;
    options.composites = true;
    options.composite.objective = config.objective;
    QualityAccumulator acc;
    double total_ms = 0.0;
    int merges = 0;
    for (const LogPair* pair : pairs) {
      MethodRun run = RunMethod(Method::kEms, *pair, options);
      acc.Add(run.quality);
      total_ms += run.millis;
      merges += run.composite_stats.merges_accepted;
    }
    table.AddRow({config.name, Cell(acc.Mean().f_measure),
                  std::to_string(merges),
                  MillisCell(total_ms / static_cast<double>(pairs.size()))});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
