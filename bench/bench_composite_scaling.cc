// Composite-search engine benchmark: times the full greedy composite
// matching loop (candidate discovery + per-candidate graph builds + label
// matrices + inner EMS runs) on a Figure-12-style synthetic instance,
// comparing the trace-scan reference configuration against the
// incremental engine (per-log direct-follows summary + memoized label
// similarity), serially and with 4 worker threads — each with the Uc/Bd
// prunings on and off.
//
// Doubles as an equivalence harness: within each pruning mode every
// configuration's composites, objective value, and similarity matrix are
// checked bit-identical against the reference serial run, and the binary
// exits nonzero on any mismatch — the CI perf-smoke step therefore also
// guards the determinism contract of docs/CONCURRENCY.md.
//
// When EMS_BENCH_JSON_DIR names a directory, writes BENCH_composite.json
// there (atomically, tmp + rename) with per-configuration timing and the
// headline end-to-end speedup (reference serial / incremental 4-thread,
// prunings on).
//
// Flags: --activities=N (default 14), --traces=N (default 600),
//        --composites=N (default 3), --reps=N (default 3), --seed=N.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/composite_matcher.h"
#include "synth/dataset.h"
#include "text/label_similarity.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace ems {
namespace {

struct Config {
  const char* name;
  bool incremental;
  bool cache;
  int threads;
};

struct ConfigResult {
  std::string name;
  bool pruning = false;
  double best_millis = 0.0;  // fastest rep (noise-robust)
  double mean_millis = 0.0;
  int candidates_evaluated = 0;
  int pruned_by_bound = 0;
  uint64_t ems_runs = 0;
  uint64_t formula_evaluations = 0;
  CompositeMatchResult result;  // from rep 0, for the equivalence check
};

ConfigResult RunConfig(const Config& cfg, bool pruning, const LogPair& pair,
                       const LabelSimilarity& labels, int reps) {
  ConfigResult r;
  r.name = cfg.name;
  r.pruning = pruning;
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    CompositeOptions opts;
    opts.delta = 0.005;
    opts.ems.alpha = 0.5;
    opts.ems.c = 0.8;
    opts.prune_unchanged = pruning;
    opts.prune_bounds = pruning;
    opts.incremental_graphs = cfg.incremental;
    opts.cache_labels = cfg.cache;
    opts.num_threads = cfg.threads;
    // A fresh matcher per rep: the summary and label cache must pay
    // their own construction cost inside the timed region.
    CompositeMatcher matcher(pair.log1, pair.log2, opts, &labels);
    Timer timer;
    Result<CompositeMatchResult> result = matcher.Match();
    const double ms = timer.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", cfg.name,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    total += ms;
    if (rep == 0 || ms < r.best_millis) r.best_millis = ms;
    if (rep == 0) {
      r.candidates_evaluated = result->stats.candidates_evaluated;
      r.pruned_by_bound = result->stats.candidates_pruned_by_bound;
      r.ems_runs = result->stats.ems_runs;
      r.formula_evaluations = result->stats.formula_evaluations;
      r.result = std::move(*result);
    }
  }
  r.mean_millis = total / reps;
  return r;
}

// Composites, objective, and matrix must match the reference to the last
// bit (stats may differ: prune counts depend on evaluation order).
bool BitIdentical(const CompositeMatchResult& ref,
                  const CompositeMatchResult& got, std::string* why) {
  if (ref.composites1 != got.composites1 ||
      ref.composites2 != got.composites2) {
    *why = "composites differ";
    return false;
  }
  if (ref.average_similarity != got.average_similarity) {
    *why = "objective differs";
    return false;
  }
  if (ref.similarity.rows() != got.similarity.rows() ||
      ref.similarity.cols() != got.similarity.cols()) {
    *why = "matrix shape differs";
    return false;
  }
  const double diff = ref.similarity.MaxAbsDifference(got.similarity);
  if (diff != 0.0) {
    *why = "matrix differs by " + std::to_string(diff);
    return false;
  }
  return true;
}

void WriteJson(const std::vector<ConfigResult>& results, int activities,
               int traces, int reps, double speedup) {
  const char* env = std::getenv("EMS_BENCH_JSON_DIR");
  if (env == nullptr || env[0] == '\0') return;
  JsonWriter w;
  w.BeginObject();
  w.Key("figure");
  w.String("composite");
  w.Key("description");
  w.String(
      "Composite search: trace-scan reference vs incremental engine "
      "(graph summary + label cache), serial and 4 threads");
  w.Key("activities");
  w.Int(activities);
  w.Key("traces");
  w.Int(traces);
  w.Key("reps");
  w.Int(reps);
  w.Key("speedup_end_to_end");
  w.Number(speedup);
  w.Key("groups");
  w.BeginArray();
  for (const ConfigResult& r : results) {
    w.BeginObject();
    w.Key("method");
    w.String(r.name);
    w.Key("pruning");
    w.Bool(r.pruning);
    w.Key("best_millis");
    w.Number(r.best_millis);
    w.Key("mean_millis");
    w.Number(r.mean_millis);
    w.Key("candidates_evaluated");
    w.Int(r.candidates_evaluated);
    w.Key("candidates_pruned_by_bound");
    w.Int(r.pruned_by_bound);
    w.Key("ems_runs");
    w.Int(static_cast<long long>(r.ems_runs));
    w.Key("formula_evaluations");
    w.Int(static_cast<long long>(r.formula_evaluations));
    w.Key("merges_accepted");
    w.Int(static_cast<int>(r.result.composites1.size() +
                           r.result.composites2.size()));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string path = std::string(env) + "/BENCH_composite.json";
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (!out) return;
  out << w.str() << "\n";
  out.flush();
  const bool good = out.good();
  out.close();
  if (good) std::rename(tmp.c_str(), path.c_str());
  else std::remove(tmp.c_str());
}

int Main(int argc, char** argv) {
  int activities = 14;
  int traces = 600;
  int composites = 3;
  int reps = 3;
  uint64_t seed = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::string p = prefix;
      return arg.rfind(p, 0) == 0 ? arg.c_str() + p.size() : nullptr;
    };
    if (const char* v = value("--activities=")) activities = std::atoi(v);
    else if (const char* v = value("--traces=")) traces = std::atoi(v);
    else if (const char* v = value("--composites=")) composites = std::atoi(v);
    else if (const char* v = value("--reps=")) reps = std::atoi(v);
    else if (const char* v = value("--seed=")) seed = std::strtoull(v, nullptr, 10);
    else std::fprintf(stderr, "warning: ignoring unknown option '%s'\n",
                      arg.c_str());
  }
  if (activities < 4 || traces < 1 || reps < 1) {
    std::fprintf(stderr, "invalid --activities/--traces/--reps\n");
    return 2;
  }

  std::printf("=====================================================\n");
  std::printf("composite — incremental search engine vs reference\n");
  std::printf("=====================================================\n");
  PairOptions pair_opts;
  pair_opts.num_activities = activities;
  pair_opts.num_traces = traces;
  pair_opts.num_composites = composites;
  pair_opts.dislocation = 1;
  pair_opts.seed = seed;
  const LogPair pair = MakeLogPair(Testbed::kDsFB, pair_opts);
  std::printf("logs: %zu x %zu events, %zu x %zu traces\n",
              pair.log1.NumEvents(), pair.log2.NumEvents(),
              pair.log1.NumTraces(), pair.log2.NumTraces());
  QGramCosineSimilarity labels;

  const Config configs[] = {
      {"reference_1t", false, false, 1},
      {"incremental_1t", true, true, 1},
      {"incremental_4t", true, true, 4},
  };

  std::vector<ConfigResult> results;
  double speedup = 0.0;
  for (bool pruning : {true, false}) {
    const size_t base = results.size();
    for (const Config& cfg : configs) {
      results.push_back(RunConfig(cfg, pruning, pair, labels, reps));
      const ConfigResult& r = results.back();
      std::printf(
          "%-15s %-9s best %8.2f ms  mean %8.2f ms  %3d cands  %3d pruned  "
          "%4llu ems runs  %9llu evals\n",
          r.name.c_str(), pruning ? "(Uc+Bd)" : "(none)", r.best_millis,
          r.mean_millis, r.candidates_evaluated, r.pruned_by_bound,
          static_cast<unsigned long long>(r.ems_runs),
          static_cast<unsigned long long>(r.formula_evaluations));
    }
    // Equivalence harness: within one pruning mode every configuration
    // must reproduce the reference run to the last bit.
    for (size_t i = base + 1; i < results.size(); ++i) {
      std::string why;
      if (!BitIdentical(results[base].result, results[i].result, &why)) {
        std::fprintf(stderr, "EQUIVALENCE FAILURE: %s (%s) vs %s: %s\n",
                     results[i].name.c_str(),
                     pruning ? "Uc+Bd" : "no pruning",
                     results[base].name.c_str(), why.c_str());
        return 1;
      }
    }
    if (pruning) {
      speedup = results[base + 2].best_millis > 0.0
                    ? results[base].best_millis / results[base + 2].best_millis
                    : 0.0;
    }
  }
  std::printf("equivalence: all configurations bit-identical per pruning "
              "mode\n");
  std::printf("end-to-end speedup (reference_1t / incremental_4t, Uc+Bd): "
              "%.2fx\n",
              speedup);
  WriteJson(results, activities, traces, reps, speedup);
  return 0;
}

}  // namespace
}  // namespace ems

int main(int argc, char** argv) { return ems::Main(argc, argv); }
