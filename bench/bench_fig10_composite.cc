// Figure 10: matching composite events, structural similarity only. The
// EMS methods run the greedy composite matcher (Algorithm 2); the
// baselines produce 1:1 mappings and receive partial credit through
// link-level scoring, as in the paper.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 10", "matching composite events (structural only)");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());
  std::vector<const LogPair*> pairs = Pointers(ds.composite);

  TextTable table({"method", "f-measure", "precision", "recall",
                   "mean time"});
  // ICoP [23] is excluded here: it consumes labels by construction and
  // cannot run structural-only (see Figure 11 and
  // bench_ablation_opacity for where it stands).
  for (Method m : {Method::kEms, Method::kEmsEstimated, Method::kGed,
                   Method::kOpq, Method::kBhv}) {
    HarnessOptions options;
    options.opq_max_expansions = 200'000;
    options.composites =
        (m == Method::kEms || m == Method::kEmsEstimated);
    GroupResult r = RunGroup(m, pairs, options);
    table.AddRow({MethodName(m), FCell(r), Cell(r.quality.precision),
                  Cell(r.quality.recall), MillisCell(r.mean_millis)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
