// EM ablation: MAP selection from calibrated posteriors (src/prob/)
// vs Algorithm 2's hard Hungarian selection, on the Figure 9
// dislocation instances (100-event pairs, first m events of every
// trace removed from one side). Both methods share the same converged
// EMS similarity surface; the ablation isolates what the EM posterior
// layer buys — low-confidence (dislocated, ambiguous) rows get diffuse
// posteriors and are filtered out, trading a little recall for
// precision where the hard assignment guesses.
//
// Exits nonzero if EM-MAP falls below the Algorithm 2 baseline on any
// dislocation rung: this binary doubles as the acceptance check wired
// into CI's perf smoke.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

namespace {

// The MatchOptions RunEms (eval/harness.cc) builds for Method::kEms in
// the opaque scenario, so the baseline group and the EM-MAP group run
// the exact same fixpoint and differ only in selection.
MatchOptions BaseMatchOptions(const HarnessOptions& options) {
  MatchOptions match_opts;
  match_opts.min_edge_frequency = options.min_edge_frequency;
  match_opts.ems = options.ems;
  match_opts.ems.alpha = 1.0;
  match_opts.engine = SimilarityEngine::kExact;
  match_opts.label_measure = LabelMeasure::kNone;
  match_opts.min_match_similarity = options.min_match_similarity;
  return match_opts;
}

struct EmGroupExtra {
  double mean_iterations = 0.0;
  double converged_fraction = 0.0;
  double mean_entropy = 0.0;
};

GroupResult RunEmMapGroup(const std::vector<const LogPair*>& pairs,
                          const HarnessOptions& options,
                          const std::string& group_name,
                          EmGroupExtra* extra) {
  GroupResult group;
  QualityAccumulator acc;
  double total_ms = 0.0;
  double iter_sum = 0.0;
  double entropy_sum = 0.0;
  int converged = 0;
  int finished = 0;

  MatchOptions match_opts = BaseMatchOptions(options);
  match_opts.prob.enabled = true;
  // Tuning overrides for experiments; the defaults are the shipped ones.
  if (const char* e = std::getenv("EMS_BENCH_EM_TEMP")) {
    match_opts.prob.temperature = std::atof(e);
  }
  if (const char* e = std::getenv("EMS_BENCH_EM_CONF")) {
    match_opts.prob.min_confidence = std::atof(e);
  }
  if (const char* e = std::getenv("EMS_BENCH_EM_ITERS")) {
    match_opts.prob.max_iterations = std::atoi(e);
  }
  if (const char* e = std::getenv("EMS_BENCH_EM_RTOLE")) {
    match_opts.prob.rtole = std::atof(e);
  }
  if (const char* e = std::getenv("EMS_BENCH_EM_SWEEPS")) {
    match_opts.prob.sinkhorn_sweeps = std::atoi(e);
  }
  Matcher matcher(match_opts);
  for (const LogPair* pair : pairs) {
    Timer timer;
    Result<MatchResult> result = matcher.Match(pair->log1, pair->log2);
    total_ms += timer.ElapsedMillis();
    if (!result.ok()) {
      ++group.dnf;
      continue;
    }
    acc.Add(Evaluate(pair->truth, result->correspondences));
    group.formula_evaluations += result->ems_stats.formula_evaluations;
    if (result->soft.has_value()) {
      iter_sum += result->soft->stats.iterations;
      entropy_sum += result->soft->stats.mean_entropy;
      if (result->soft->stats.converged) ++converged;
    }
    ++finished;
  }
  group.quality = acc.Mean();
  group.pairs = static_cast<int>(pairs.size());
  group.mean_millis =
      pairs.empty() ? 0.0 : total_ms / static_cast<double>(pairs.size());
  if (extra != nullptr && finished > 0) {
    extra->mean_iterations = iter_sum / finished;
    extra->converged_fraction = static_cast<double>(converged) / finished;
    extra->mean_entropy = entropy_sum / finished;
  }
  BenchJsonRecorder::Instance().AddGroup(group_name, group);
  return group;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("em",
              "EM-MAP soft selection vs Algorithm 2 on dislocated pairs");
  const char* pairs_env = std::getenv("EMS_BENCH_PAIRS_PER_SIZE");
  int pairs_per_m = pairs_env != nullptr ? std::atoi(pairs_env) : 5;
  if (pairs_per_m <= 0) pairs_per_m = 5;

  HarnessOptions options;

  bool em_at_least_as_good = true;
  bool em_strictly_better_once = false;
  TextTable table({"m", "Alg2 F", "Alg2 P", "Alg2 R", "EM-MAP F", "EM-MAP P",
                   "EM-MAP R", "iters", "conv", "entropy"});
  for (int m = 0; m <= 8; m += 2) {
    std::vector<LogPair> storage;
    for (int i = 0; i < pairs_per_m; ++i) {
      storage.push_back(
          MakeDislocationPair(100, m, 9100 + static_cast<uint64_t>(i)));
    }
    std::vector<const LogPair*> pairs = Pointers(storage);

    GroupResult baseline = RunGroup(Method::kEms, pairs, options);
    EmGroupExtra extra;
    GroupResult em = RunEmMapGroup(
        pairs, options, "EM-MAP_m" + std::to_string(m), &extra);

    if (em.quality.f_measure + 1e-9 < baseline.quality.f_measure) {
      em_at_least_as_good = false;
    }
    if (em.quality.f_measure > baseline.quality.f_measure + 1e-9) {
      em_strictly_better_once = true;
    }
    table.AddRow({std::to_string(m), FCell(baseline),
                  Cell(baseline.quality.precision),
                  Cell(baseline.quality.recall), FCell(em),
                  Cell(em.quality.precision), Cell(em.quality.recall),
                  Cell(extra.mean_iterations), Cell(extra.converged_fraction),
                  Cell(extra.mean_entropy)});
  }
  std::printf("%s", table.ToString().c_str());

  if (!em_at_least_as_good) {
    std::fprintf(stderr,
                 "FAIL: EM-MAP F-measure fell below the Algorithm 2 "
                 "baseline on at least one dislocation rung\n");
    return 1;
  }
  if (!em_strictly_better_once) {
    std::fprintf(stderr,
                 "FAIL: EM-MAP never strictly beat the Algorithm 2 "
                 "baseline across the dislocation sweep\n");
    return 1;
  }
  std::printf("OK: EM-MAP >= Algorithm 2 on every rung, strictly better on "
              "at least one\n");
  return 0;
}
