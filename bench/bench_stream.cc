// Streaming-ingestion benchmark: cold full re-match vs incremental graph
// maintenance + warm-started EMS after append batches (docs/STREAMING.md).
// Runs a ladder of batch sizes over one growing log pair and reports,
// per rung, the cold rebuild+match time against the streaming path's
// append+warm-match time, with the iteration counts behind the saving.
//
// Doubles as the contract harness — the binary exits nonzero unless:
//  * the incrementally maintained dependency graph re-encodes to the
//    exact snapshot bytes of a from-scratch rebuild after every batch;
//  * on the cyclic (epsilon-stop) config, the warm similarity matrix
//    stays within 10*epsilon of the cold one, small-batch warm
//    re-matches converge in <= 1/3 of the cold iteration count, and the
//    streamed ladder is >= 2x faster end to end than cold recomputation;
//  * on the acyclic run-to-horizon config, the warm similarity matrix
//    and correspondences are BYTE-identical to the cold recompute;
//  * a seed snapshot round-trip plus assume_unchanged resume reproduces
//    the last fixpoint byte-identically in one iteration (the restarted
//    ems_serve resume path).
//
// When EMS_BENCH_JSON_DIR names a directory, writes BENCH_stream.json
// there (atomically, tmp + rename) with the per-rung ladder and the
// identity-check verdicts.
//
// Flags: --activities=N (default 40), --traces=N (default 4000),
//        --batches=N (rungs per batch size, default 3),
//        --seed=N (default 17).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/warm_match.h"
#include "graph/dependency_graph.h"
#include "graph/streaming_graph.h"
#include "log/event_log.h"
#include "store/snapshot.h"
#include "synth/dataset.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace ems {
namespace {

struct Rung {
  int batch_traces = 0;
  int cold_iterations = 0;
  int warm_iterations = 0;
  int iterations_saved = 0;
  double cold_millis = 0.0;
  double warm_millis = 0.0;
};

struct ConfigReport {
  std::string name;
  std::vector<Rung> rungs;
  double total_cold_millis = 0.0;
  double total_warm_millis = 0.0;
};

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) return;
  ++g_failures;
  std::fprintf(stderr, "CHECK FAILED: %s\n", what.c_str());
}

std::vector<std::vector<std::string>> BatchNames(const EventLog& batch) {
  std::vector<std::vector<std::string>> names;
  names.reserve(batch.NumTraces());
  for (size_t t = 0; t < batch.NumTraces(); ++t) {
    std::vector<std::string> trace;
    trace.reserve(batch.trace(t).size());
    for (EventId id : batch.trace(t)) trace.push_back(batch.EventName(id));
    names.push_back(std::move(trace));
  }
  return names;
}

bool MatricesBitIdentical(const SimilarityMatrix& a,
                          const SimilarityMatrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.data().empty() ||
         std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(double)) == 0;
}

bool AlignmentsBitIdentical(const MatchResult& a, const MatchResult& b) {
  if (a.correspondences.size() != b.correspondences.size()) return false;
  for (size_t i = 0; i < a.correspondences.size(); ++i) {
    const Correspondence& ca = a.correspondences[i];
    const Correspondence& cb = b.correspondences[i];
    if (ca.events1 != cb.events1 || ca.events2 != cb.events2) return false;
    if (std::memcmp(&ca.similarity, &cb.similarity, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

// One config: seed the warm chain with a cold match, then per ladder
// rung append a batch and race the streaming path against a from-scratch
// rebuild over the identical extended log.
//
// With byte_identity (the acyclic run-to-horizon regime) warm results
// must match cold bit for bit; otherwise (the cyclic epsilon-stop
// regime) both runs stop within epsilon of the true fixpoint, so warm
// and cold matrices must agree to `tolerance` but near-tied assignment
// choices may legitimately differ.
ConfigReport RunConfig(const std::string& name, const PairOptions& popts,
                       const MatchOptions& mopts,
                       const std::vector<int>& batch_sizes, int batches,
                       bool byte_identity, double tolerance) {
  ConfigReport report;
  report.name = name;

  LogPair pair = MakeLogPair(Testbed::kDsFB, popts);
  DependencyGraphOptions gopts;
  gopts.min_edge_frequency = mopts.min_edge_frequency;

  EventLog stream_log = pair.log1;
  StreamingDependencyGraph stream_graph(stream_log, gopts);
  DependencyGraph graph2 = DependencyGraph::Build(pair.log2, gopts);

  WarmSeed seed;
  WarmMatchStats stats;
  Result<MatchResult> cold_start =
      MatchWithGraphsWarm(mopts, stream_log, pair.log2, stream_graph.graph(),
                          graph2, nullptr, false, &seed, &stats);
  Check(cold_start.ok(), name + ": initial cold match failed");
  if (!cold_start.ok()) return report;

  // The batches continue log 1's own play-out; slice them off one shared
  // extension so every rung appends genuinely new traces.
  int total_batch_traces = 0;
  for (int b : batch_sizes) total_batch_traces += b * batches;
  PairOptions stream_popts = popts;
  std::vector<EventLog> extension =
      MakeAppendBatches(stream_popts, total_batch_traces, 1);
  std::vector<std::vector<std::string>> all_names = BatchNames(extension[0]);
  size_t next_trace = 0;

  for (int batch_traces : batch_sizes) {
    for (int rep = 0; rep < batches; ++rep) {
      std::vector<std::vector<std::string>> batch(
          all_names.begin() + static_cast<long>(next_trace),
          all_names.begin() + static_cast<long>(next_trace) +
              batch_traces);
      next_trace += static_cast<size_t>(batch_traces);

      Rung rung;
      rung.batch_traces = batch_traces;

      // Streaming path: fold the delta in place, warm re-match.
      Timer warm_timer;
      const AppendDelta delta = stream_log.AppendTraces(batch);
      (void)stream_graph.ApplyAppend(delta.first_new_trace);
      WarmMatchStats warm_stats;
      Result<MatchResult> warm = MatchWithGraphsWarm(
          mopts, stream_log, pair.log2, stream_graph.graph(), graph2, &seed,
          false, &seed, &warm_stats);
      rung.warm_millis = warm_timer.ElapsedMillis();
      Check(warm.ok(), name + ": warm match failed");
      if (!warm.ok()) return report;

      // Cold path: rebuild the graph from the extended log, match
      // without a seed. (Parsing is excluded on both sides; the cold
      // side is flattered by that, not the stream side.)
      Timer cold_timer;
      DependencyGraph rebuilt = DependencyGraph::Build(stream_log, gopts);
      WarmMatchStats cold_stats;
      Result<MatchResult> cold =
          MatchWithGraphsWarm(mopts, stream_log, pair.log2, rebuilt, graph2,
                              nullptr, false, nullptr, &cold_stats);
      rung.cold_millis = cold_timer.ElapsedMillis();
      Check(cold.ok(), name + ": cold match failed");
      if (!cold.ok()) return report;

      // The maintained graph must be indistinguishable from the rebuild
      // — same snapshot bytes, hence same nodes, CSR, frequencies, and
      // distance caches.
      Check(store::EncodeDependencyGraph(stream_graph.graph()) ==
                store::EncodeDependencyGraph(rebuilt),
            name + ": incremental graph != rebuilt graph after append");

      if (byte_identity) {
        Check(MatricesBitIdentical(warm->similarity, cold->similarity),
              name + ": warm similarity matrix not byte-identical to cold");
        Check(AlignmentsBitIdentical(*warm, *cold),
              name + ": warm alignment not byte-identical to cold");
      } else {
        Check(warm->similarity.MaxAbsDifference(cold->similarity) <=
                  tolerance,
              name + ": warm similarity drifted past tolerance from cold");
      }

      rung.cold_iterations = cold_stats.iterations;
      rung.warm_iterations = warm_stats.iterations;
      rung.iterations_saved = warm_stats.iterations_saved;
      report.total_cold_millis += rung.cold_millis;
      report.total_warm_millis += rung.warm_millis;
      report.rungs.push_back(rung);

      std::printf("%-16s batch %3d  cold %3d iters %8.2fms   warm %3d "
                  "iters %8.2fms  (saved %d)\n",
                  name.c_str(), batch_traces, rung.cold_iterations,
                  rung.cold_millis, rung.warm_iterations, rung.warm_millis,
                  rung.iterations_saved);
    }
  }

  // Restart resume: the seed survives a snapshot round-trip and an
  // assume_unchanged re-match returns the persisted per-direction
  // fixpoints byte-identically in one iteration — what a restarted
  // ems_serve session serves. The horizon floor is a convergence aid for
  // real re-matches, not for identical-state resume, so it is off here
  // (as it is on the serve path).
  Result<WarmSeed> decoded = store::DecodeWarmSeed(store::EncodeWarmSeed(seed));
  Check(decoded.ok(), name + ": seed snapshot round-trip failed");
  if (decoded.ok()) {
    MatchOptions resume_opts = mopts;
    resume_opts.ems.run_to_horizon = false;
    WarmSeed next;
    WarmMatchStats resume_stats;
    Result<MatchResult> resumed = MatchWithGraphsWarm(
        resume_opts, stream_log, pair.log2, stream_graph.graph(), graph2,
        &*decoded, /*assume_unchanged=*/true, &next, &resume_stats);
    Check(resumed.ok(), name + ": resume match failed");
    if (resumed.ok()) {
      Check(resume_stats.iterations == 1,
            name + ": resume took more than one iteration");
      Check(MatricesBitIdentical(next.forward, seed.forward) &&
                MatricesBitIdentical(next.backward, seed.backward),
            name + ": resumed fixpoint != persisted fixpoint");
    }
  }
  return report;
}

void WriteJson(const std::vector<ConfigReport>& reports, int activities,
               int traces) {
  const char* env = std::getenv("EMS_BENCH_JSON_DIR");
  if (env == nullptr || env[0] == '\0') return;
  JsonWriter w;
  w.BeginObject();
  w.Key("figure");
  w.String("stream");
  w.Key("description");
  w.String("cold re-match vs incremental graph + warm-start EMS");
  w.Key("activities");
  w.Int(activities);
  w.Key("traces");
  w.Int(traces);
  w.Key("checks_failed");
  w.Int(g_failures);
  w.Key("configs");
  w.BeginArray();
  for (const ConfigReport& report : reports) {
    w.BeginObject();
    w.Key("name");
    w.String(report.name);
    w.Key("total_cold_millis");
    w.Number(report.total_cold_millis);
    w.Key("total_warm_millis");
    w.Number(report.total_warm_millis);
    w.Key("speedup");
    w.Number(report.total_warm_millis > 0.0
                 ? report.total_cold_millis / report.total_warm_millis
                 : 0.0);
    w.Key("rungs");
    w.BeginArray();
    for (const Rung& rung : report.rungs) {
      w.BeginObject();
      w.Key("batch_traces");
      w.Int(rung.batch_traces);
      w.Key("cold_iterations");
      w.Int(rung.cold_iterations);
      w.Key("warm_iterations");
      w.Int(rung.warm_iterations);
      w.Key("iterations_saved");
      w.Int(rung.iterations_saved);
      w.Key("cold_millis");
      w.Number(rung.cold_millis);
      w.Key("warm_millis");
      w.Number(rung.warm_millis);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string path = std::string(env) + "/BENCH_stream.json";
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (!out) return;
  out << w.str() << "\n";
  out.flush();
  const bool good = out.good();
  out.close();
  if (good) std::rename(tmp.c_str(), path.c_str());
  else std::remove(tmp.c_str());
}

}  // namespace
}  // namespace ems

int main(int argc, char** argv) {
  using namespace ems;
  int activities = 40;
  int traces = 4000;
  int batches = 3;
  uint64_t seed = 17;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value_of = [&](const char* name) -> const char* {
      std::string prefix = std::string("--") + name + "=";
      return arg.rfind(prefix, 0) == 0 ? arg.c_str() + prefix.size()
                                       : nullptr;
    };
    if (const char* v = value_of("activities")) activities = std::atoi(v);
    else if (const char* v = value_of("traces")) traces = std::atoi(v);
    else if (const char* v = value_of("batches")) batches = std::atoi(v);
    else if (const char* v = value_of("seed")) {
      seed = static_cast<uint64_t>(std::atoll(v));
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  std::vector<ConfigReport> reports;

  // Cyclic epsilon-stop config: loops give the dependency graphs cycles,
  // so pairs on them have infinite horizons and the fixpoint stops on
  // epsilon — the regime where a warm start saves iterations. A small
  // batch over a long history perturbs every coefficient by only
  // ~batch/traces, so the warm start opens within that distance of the
  // new fixpoint while a cold start contracts all the way from S^0; the
  // iteration ratio is roughly log(eps/(batch/traces)) / log(eps), which
  // is why the contract runs at the production epsilon over a long log
  // instead of an artificially tight one.
  {
    PairOptions popts;
    popts.num_activities = activities;
    popts.num_traces = traces;
    popts.seed = seed;
    MatchOptions mopts;
    reports.push_back(RunConfig("cyclic/eps", popts, mopts, {1, 5, 25},
                                batches, /*byte_identity=*/false,
                                /*tolerance=*/10.0 * mopts.ems.epsilon));
    const ConfigReport& cyclic = reports.back();
    // Contract: small appends re-converge in <= 1/3 of the cold count.
    for (const Rung& rung : cyclic.rungs) {
      if (rung.batch_traces > 5) continue;
      Check(rung.warm_iterations * 3 <= rung.cold_iterations,
            "cyclic/eps: batch of " + std::to_string(rung.batch_traces) +
                " warm took " + std::to_string(rung.warm_iterations) +
                " iterations vs cold " +
                std::to_string(rung.cold_iterations) + " (> 1/3)");
    }
    // Contract: the streamed ladder beats cold recomputation >= 2x.
    Check(cyclic.total_cold_millis >= 2.0 * cyclic.total_warm_millis,
          "cyclic/eps: end-to-end speedup below 2x (cold " +
              std::to_string(cyclic.total_cold_millis) + "ms, warm " +
              std::to_string(cyclic.total_warm_millis) + "ms)");
  }

  // Acyclic run-to-horizon config: without LOOP or AND operators the
  // direct-follows graphs are acyclic, every pair has a finite horizon,
  // and running to the horizon floor makes the fixpoint seed-independent
  // — warm results must be BYTE-identical to cold, not just close.
  {
    PairOptions popts;
    popts.num_activities = activities;
    popts.num_traces = traces;
    popts.seed = seed + 1;
    popts.tree.weight_loop = 0.0;
    popts.tree.weight_and = 0.0;
    MatchOptions mopts;
    mopts.ems.run_to_horizon = true;
    reports.push_back(RunConfig("acyclic/horizon", popts, mopts, {1, 5},
                                batches, /*byte_identity=*/true,
                                /*tolerance=*/0.0));
  }

  WriteJson(reports, activities, traces);
  for (const ConfigReport& report : reports) {
    std::printf("%-16s total cold %9.2fms  total warm %9.2fms  "
                "speedup %.2fx\n",
                report.name.c_str(), report.total_cold_millis,
                report.total_warm_millis,
                report.total_warm_millis > 0.0
                    ? report.total_cold_millis / report.total_warm_millis
                    : 0.0);
  }
  if (g_failures > 0) {
    std::fprintf(stderr, "%d streaming contract check(s) failed\n",
                 g_failures);
    return 1;
  }
  std::printf("all streaming contract checks passed\n");
  return 0;
}
