// Figure 11: matching composite events with typographic similarity
// integrated (alpha < 1).
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 11",
              "matching composite events + typographic similarity");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());
  std::vector<const LogPair*> pairs = Pointers(ds.composite);

  TextTable table({"method", "f-measure", "precision", "recall",
                   "mean time"});
  for (Method m : {Method::kEms, Method::kEmsEstimated, Method::kGed,
                   Method::kOpq, Method::kBhv, Method::kIcop}) {
    HarnessOptions options;
    options.use_labels = true;
    options.opq_max_expansions = 200'000;
    options.composites =
        (m == Method::kEms || m == Method::kEmsEstimated);
    GroupResult r = RunGroup(m, pairs, options);
    table.AddRow({MethodName(m), FCell(r), Cell(r.quality.precision),
                  Cell(r.quality.recall), MillisCell(r.mean_millis)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
