// Telemetry-overhead benchmark: the same NDJSON job stream driven
// through BatchMatchService with the telemetry plane off (the pre-plane
// behavior: no owned ObsContext, no per-job span trees, no flight
// recorder, no quantile observations) and on (the default). The quantity
// reported is the relative wall-clock overhead of telemetry=on, which
// the observability plan budgets at < 5%. Off/on runs are interleaved
// rep by rep (after one unmeasured warmup pair) so machine drift cancels
// out of the ratio instead of landing in one arm.
//
// Doubles as an equivalence harness: both configurations must produce
// the identical multiset of result lines (millis fields stripped — they
// are the one legitimately nondeterministic byte range). The binary
// exits nonzero on any mismatch or when overhead exceeds the budget by
// a wide margin (> 15%, noise headroom for loaded CI machines).
//
// When EMS_BENCH_JSON_DIR names a directory, writes
// BENCH_serve_obs.json there (atomically, tmp + rename) with per-mode
// timing and the overhead ratio.
//
// Flags: --activities=N (default 20), --traces=N (default 300),
//        --jobs=N (default 64), --reps=N (default 3),
//        --threads=N (default 4), --seed=N (default 23).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "log/event_log.h"
#include "log/log_io.h"
#include "serve/service.h"
#include "synth/log_generator.h"
#include "synth/process_tree.h"
#include "util/json_writer.h"
#include "util/random.h"
#include "util/timer.h"

namespace ems {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

// Strips the "millis" member (the only nondeterministic bytes of a
// result line) so streams compare across runs.
std::string StripMillis(const std::string& line) {
  const size_t key = line.find("\"millis\":");
  if (key == std::string::npos) return line;
  size_t end = key + 9;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  if (end < line.size() && line[end] == ',') ++end;  // eat the separator
  return line.substr(0, key) + line.substr(end);
}

// Runs the job stream once; returns wall millis and the sorted,
// millis-stripped result lines.
double RunOnce(const serve::ServiceOptions& options,
               const std::string& jobs_ndjson,
               std::vector<std::string>* lines_out) {
  serve::BatchMatchService service(options);
  std::istringstream in(jobs_ndjson);
  std::ostringstream out;
  Timer timer;
  service.RunStream(in, out);
  const double millis = timer.ElapsedMillis();
  if (lines_out != nullptr) {
    lines_out->clear();
    std::istringstream results(out.str());
    std::string line;
    while (std::getline(results, line)) {
      if (!line.empty()) lines_out->push_back(StripMillis(line));
    }
    std::sort(lines_out->begin(), lines_out->end());
  }
  return millis;
}

void WriteJson(double off_best, double on_best, double overhead, int jobs,
               int reps, int threads) {
  const char* env = std::getenv("EMS_BENCH_JSON_DIR");
  if (env == nullptr || env[0] == '\0') return;
  JsonWriter w;
  w.BeginObject();
  w.Key("figure");
  w.String("serve_obs");
  w.Key("description");
  w.String("service telemetry plane wall-clock overhead (on vs off)");
  w.Key("jobs");
  w.Int(jobs);
  w.Key("reps");
  w.Int(reps);
  w.Key("threads");
  w.Int(threads);
  w.Key("telemetry_off_best_millis");
  w.Number(off_best);
  w.Key("telemetry_on_best_millis");
  w.Number(on_best);
  w.Key("overhead_ratio");
  w.Number(overhead);
  w.Key("overhead_budget");
  w.Number(0.05);
  w.EndObject();
  const std::string path = std::string(env) + "/BENCH_serve_obs.json";
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (!out) return;
  out << w.str() << "\n";
  out.flush();
  const bool good = out.good();
  out.close();
  if (good) std::rename(tmp.c_str(), path.c_str());
  else std::remove(tmp.c_str());
}

int Main(int argc, char** argv) {
  int activities = 20;
  int traces = 300;
  int jobs = 64;
  int reps = 3;
  int threads = 4;
  uint64_t seed = 23;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::string p = prefix;
      return arg.rfind(p, 0) == 0 ? arg.c_str() + p.size() : nullptr;
    };
    if (const char* v = value("--activities=")) activities = std::atoi(v);
    else if (const char* v = value("--traces=")) traces = std::atoi(v);
    else if (const char* v = value("--jobs=")) jobs = std::atoi(v);
    else if (const char* v = value("--reps=")) reps = std::atoi(v);
    else if (const char* v = value("--threads=")) threads = std::atoi(v);
    else if (const char* v = value("--seed="))
      seed = std::strtoull(v, nullptr, 10);
    else std::fprintf(stderr, "warning: ignoring unknown option '%s'\n",
                      arg.c_str());
  }
  if (activities < 2 || traces < 1 || jobs < 1 || reps < 1 || threads < 1) {
    std::fprintf(stderr, "invalid flag value\n");
    return 2;
  }

  std::printf("=====================================================\n");
  std::printf("serve_obs — telemetry plane overhead (%d jobs, %d threads)\n",
              jobs, threads);
  std::printf("=====================================================\n");

  // Deterministic corpus: one process tree, two playouts; every job
  // matches the same pair so the cache serves all but the first loads
  // and the measured work is match + telemetry, not parsing.
  Rng rng(seed);
  ProcessTreeOptions tree_options;
  tree_options.num_activities = activities;
  std::unique_ptr<ProcessNode> tree = GenerateProcessTree(tree_options, &rng);
  PlayoutOptions playout;
  playout.num_traces = traces;
  const EventLog source1 = PlayoutLog(*tree, playout, &rng);
  const EventLog source2 = PlayoutLog(*tree, playout, &rng);

  const std::string dir = TempDir();
  const std::string log1_path = dir + "/bench_serve_obs_log1.txt";
  const std::string log2_path = dir + "/bench_serve_obs_log2.txt";
  for (const auto& [log, path] :
       {std::pair<const EventLog*, const std::string*>{&source1, &log1_path},
        {&source2, &log2_path}}) {
    Status st = WriteTraceFile(*log, *path);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", path->c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  std::string jobs_ndjson;
  for (int i = 0; i < jobs; ++i) {
    jobs_ndjson += "{\"id\":\"j" + std::to_string(i) + "\",\"log1\":\"" +
                   log1_path + "\",\"log2\":\"" + log2_path +
                   "\",\"format\":\"trace\"}\n";
  }

  serve::ServiceOptions base;
  base.threads = threads;
  base.cache_capacity = 4;

  serve::ServiceOptions options_off = base;
  options_off.telemetry = false;
  serve::ServiceOptions options_on = base;
  options_on.telemetry = true;

  // Interleave the two configurations rep by rep instead of sweeping one
  // arm and then the other: page-cache state, CPU frequency, and
  // competing load drift over seconds, and a sequential sweep folds that
  // drift straight into the ratio. Paired runs see the same machine.
  // One unmeasured warmup pair first (cold file reads, pool spin-up).
  std::vector<std::string> lines_off, lines_on;
  RunOnce(options_off, jobs_ndjson, &lines_off);
  RunOnce(options_on, jobs_ndjson, &lines_on);
  double off_best = 0.0;
  double on_best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const double off_ms = RunOnce(options_off, jobs_ndjson, nullptr);
    const double on_ms = RunOnce(options_on, jobs_ndjson, nullptr);
    if (rep == 0 || off_ms < off_best) off_best = off_ms;
    if (rep == 0 || on_ms < on_best) on_best = on_ms;
  }

  if (lines_off != lines_on) {
    std::fprintf(stderr,
                 "EQUIVALENCE FAILURE: telemetry on/off result streams "
                 "differ (%zu vs %zu lines)\n",
                 lines_off.size(), lines_on.size());
    return 1;
  }

  const double overhead =
      off_best > 0.0 ? (on_best - off_best) / off_best : 0.0;
  std::printf("telemetry off   best %8.3f ms\n", off_best);
  std::printf("telemetry on    best %8.3f ms\n", on_best);
  std::printf("overhead: %+.2f%% (budget < 5%%)\n", overhead * 100.0);
  std::printf("equivalence: result streams identical (%zu lines)\n",
              lines_on.size());
  WriteJson(off_best, on_best, overhead, jobs, reps, threads);

  std::remove(log1_path.c_str());
  std::remove(log2_path.c_str());
  // 15% is the hard failure line: three times the budget, leaving noise
  // headroom on loaded CI machines while still catching regressions.
  if (overhead > 0.15) {
    std::fprintf(stderr, "OVERHEAD FAILURE: %.2f%% > 15%%\n",
                 overhead * 100.0);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ems

int main(int argc, char** argv) { return ems::Main(argc, argv); }
