// Figure 13: effect of the greedy acceptance threshold delta
// (Algorithm 2): lower delta admits more merges — f-measure first rises
// (true composites found) then falls (false positives), while time grows.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 13", "varying the threshold delta");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());
  std::vector<const LogPair*> pairs = Pointers(ds.composite);

  TextTable table({"delta", "f-measure", "merges", "mean time"});
  for (double delta : {0.10, 0.05, 0.02, 0.01, 0.005, 0.002, 0.0005}) {
    HarnessOptions options;
    options.composites = true;
    options.composite.delta = delta;
    QualityAccumulator acc;
    double total_ms = 0.0;
    int merges = 0;
    for (const LogPair* pair : pairs) {
      MethodRun run = RunMethod(Method::kEms, *pair, options);
      acc.Add(run.quality);
      total_ms += run.millis;
      merges += run.composite_stats.merges_accepted;
    }
    table.AddRow({Cell(delta, 4), Cell(acc.Mean().f_measure),
                  std::to_string(merges),
                  MillisCell(total_ms / static_cast<double>(pairs.size()))});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
