// Figure 14: effect of the candidate-set size — more composite-event
// candidates raise accuracy (more true merges reachable) at sharply
// growing cost.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 14", "varying candidate sizes");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());
  std::vector<const LogPair*> pairs = Pointers(ds.composite);

  TextTable table({"max candidates", "f-measure", "candidates evaluated",
                   "mean time"});
  for (int max_candidates : {0, 1, 2, 4, 8, 16}) {
    HarnessOptions options;
    options.composites = true;
    options.composite.candidates.max_candidates =
        max_candidates == 0 ? 1 : max_candidates;
    if (max_candidates == 0) {
      // Row "0": composite matching disabled entirely.
      options.composites = false;
    }
    QualityAccumulator acc;
    double total_ms = 0.0;
    int evaluated = 0;
    for (const LogPair* pair : pairs) {
      MethodRun run = RunMethod(Method::kEms, *pair, options);
      acc.Add(run.quality);
      total_ms += run.millis;
      evaluated += run.composite_stats.candidates_evaluated;
    }
    table.AddRow({std::to_string(max_candidates), Cell(acc.Mean().f_measure),
                  std::to_string(evaluated),
                  MillisCell(total_ms / static_cast<double>(pairs.size()))});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
