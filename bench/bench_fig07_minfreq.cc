// Figure 7: minimum frequency control — accuracy and time as edges below
// a frequency threshold are dropped from the dependency graphs
// (Section 2's accuracy/efficiency trade-off).
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 7", "minimum frequency control");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());
  std::vector<const LogPair*> pairs = Pointers(ds.ds_fb);

  TextTable table({"min frequency", "f-measure", "mean time"});
  for (double threshold : {0.0, 0.05, 0.10, 0.15, 0.20, 0.25}) {
    HarnessOptions options;
    // Threading through the matcher: the harness runs EMS with this
    // minimum edge frequency on both graphs.
    GroupResult r;
    {
      QualityAccumulator acc;
      double total_ms = 0.0;
      for (const LogPair* pair : pairs) {
        MatchOptions mopts;
        mopts.min_edge_frequency = threshold;
        Matcher matcher(mopts);
        Timer timer;
        Result<MatchResult> result = matcher.Match(pair->log1, pair->log2);
        total_ms += timer.ElapsedMillis();
        if (result.ok()) {
          acc.Add(Evaluate(pair->truth, result->correspondences));
        }
      }
      r.quality = acc.Mean();
      r.mean_millis = pairs.empty()
                          ? 0.0
                          : total_ms / static_cast<double>(pairs.size());
    }
    table.AddRow({Cell(threshold, 2), Cell(r.quality.f_measure),
                  MillisCell(r.mean_millis)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
