// Figure 4: singleton matching with typographic (q-gram cosine) label
// similarity integrated (alpha < 1). Same corpus and series as Figure 3;
// OPQ does not consume labels (its published form matches opaque values
// only), mirroring the paper's observation that OPQ does not benefit.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 4",
              "matching singleton events + typographic similarity");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());

  HarnessOptions options;
  options.use_labels = true;
  options.alpha_with_labels = 0.5;
  options.opq_max_expansions = 200'000;

  const std::vector<std::pair<const char*, std::vector<const LogPair*>>>
      testbeds = {{"DS-F", Pointers(ds.ds_f)},
                  {"DS-B", Pointers(ds.ds_b)},
                  {"DS-FB", Pointers(ds.ds_fb)}};
  const std::vector<Method> methods = {Method::kEms, Method::kEmsEstimated,
                                       Method::kGed, Method::kOpq,
                                       Method::kBhv};

  TextTable f_table({"testbed", "EMS", "EMS+es", "GED", "OPQ", "BHV"});
  TextTable t_table({"testbed", "EMS", "EMS+es", "GED", "OPQ", "BHV"});
  for (const auto& [name, pairs] : testbeds) {
    std::vector<std::string> f_row = {name};
    std::vector<std::string> t_row = {name};
    for (Method m : methods) {
      GroupResult r = RunGroup(m, pairs, options);
      f_row.push_back(FCell(r));
      t_row.push_back(MillisCell(r.mean_millis));
    }
    f_table.AddRow(f_row);
    t_table.AddRow(t_row);
  }
  std::printf("(a) accuracy (f-measure)\n%s\n", f_table.ToString().c_str());
  std::printf("(b) mean time per log pair\n%s", t_table.ToString().c_str());
  return 0;
}
