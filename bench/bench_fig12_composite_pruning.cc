// Figure 12: prune power of unchanged-similarity identification (Uc,
// Proposition 4) and of similarity upper bounds (Bd, Section 4.3) in the
// greedy composite matcher: formula-(1) evaluations and time for
// none / Uc / Bd / Uc+Bd.
#include "bench_common.h"

#include "core/composite_matcher.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 12", "prune power of Uc and Bd (composite matching)");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());

  TextTable table({"config", "formula evals", "pruned by Bd",
                   "rows frozen (Uc)", "total time"});
  const struct {
    const char* name;
    bool uc;
    bool bd;
  } configs[] = {{"none", false, false},
                 {"Uc", true, false},
                 {"Bd", false, true},
                 {"Uc+Bd", true, true}};
  for (const auto& config : configs) {
    uint64_t evals = 0;
    uint64_t frozen = 0;
    int pruned = 0;
    Timer timer;
    for (const LogPair& pair : ds.composite) {
      CompositeOptions opts;
      opts.prune_unchanged = config.uc;
      opts.prune_bounds = config.bd;
      CompositeMatcher matcher(pair.log1, pair.log2, opts);
      Result<CompositeMatchResult> result = matcher.Match();
      if (!result.ok()) continue;
      evals += result->stats.formula_evaluations;
      frozen += result->stats.rows_frozen;
      pruned += result->stats.candidates_pruned_by_bound;
    }
    table.AddRow({config.name, std::to_string(evals),
                  std::to_string(pruned), std::to_string(frozen),
                  MillisCell(timer.ElapsedMillis())});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
