// Beyond the paper: the empirical estimation-error curve the authors name
// as future work (Section 7) — how far EMS+es strays from exact EMS as a
// function of I, split by convergence-horizon class.
#include "bench_common.h"

#include "core/estimation_error.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Extension", "empirical estimation error (the paper's open "
                           "question)");
  PairOptions opts;
  opts.num_activities = 25;
  opts.num_traces = 150;
  opts.dislocation = 1;
  opts.seed = 1234;
  LogPair pair = MakeLogPair(Testbed::kDsFB, opts);
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);

  TextTable table({"I", "max |err|", "mean |err|", "RMSE",
                   "max err (finite h)", "max err (infinite h)",
                   "undershoot"});
  EmsOptions ems_opts;
  ems_opts.direction = Direction::kForward;
  for (const EstimationErrorReport& r :
       EstimationErrorCurve(g1, g2, {0, 1, 2, 5, 10, 20, 40}, ems_opts)) {
    table.AddRow({std::to_string(r.exact_iterations),
                  Cell(r.max_abs_error), Cell(r.mean_abs_error),
                  Cell(r.rmse), Cell(r.max_error_finite_horizon),
                  Cell(r.max_error_infinite_horizon),
                  Cell(r.undershoot_fraction, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n(%zu pairs; finite-horizon errors vanish once I reaches "
              "the horizon — Proposition 2; infinite-horizon errors are "
              "the estimation's intrinsic approximation.)\n",
              static_cast<size_t>(g1.NumNodes() - 1) * (g2.NumNodes() - 1));
  return 0;
}
