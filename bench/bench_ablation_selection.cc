// Ablation: correspondence-selection strategy (Section 6 outlines the
// options; the paper's evaluation uses maximum total similarity [17]).
// Hungarian vs greedy vs mutual-best on the same EMS similarities.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Ablation", "correspondence selection strategies");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());

  const std::vector<std::pair<const char*, std::vector<const LogPair*>>>
      testbeds = {{"DS-F", Pointers(ds.ds_f)},
                  {"DS-B", Pointers(ds.ds_b)},
                  {"DS-FB", Pointers(ds.ds_fb)}};
  const struct {
    const char* name;
    SelectionStrategy strategy;
  } strategies[] = {
      {"hungarian", SelectionStrategy::kMaxTotalSimilarity},
      {"greedy", SelectionStrategy::kGreedy},
      {"mutual-best", SelectionStrategy::kMutualBest},
  };

  TextTable table({"testbed", "hungarian", "greedy", "mutual-best"});
  for (const auto& [name, pairs] : testbeds) {
    std::vector<std::string> row = {name};
    for (const auto& s : strategies) {
      QualityAccumulator acc;
      for (const LogPair* pair : pairs) {
        MatchOptions opts;
        opts.min_edge_frequency = 0.05;
        opts.selection = s.strategy;
        Matcher matcher(opts);
        Result<MatchResult> result = matcher.Match(pair->log1, pair->log2);
        if (result.ok()) {
          acc.Add(Evaluate(pair->truth, result->correspondences));
        }
      }
      row.push_back(Cell(acc.Mean().f_measure));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
