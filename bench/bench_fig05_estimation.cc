// Figure 5: the estimation trade-off — f-measure and time of EMS+es as
// the number of exact iterations I grows from 0 to MAX (exact EMS),
// with BHV as the reference the paper compares the I = 0 point against.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 5", "trade-off of the similarity estimation (vary I)");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());
  std::vector<const LogPair*> pairs = Pointers(ds.ds_fb);

  TextTable table({"I", "f-measure", "mean time", "formula evals"});
  for (int iterations : {0, 1, 2, 5, 10, 20}) {
    HarnessOptions options;
    options.estimation_iterations = iterations;
    GroupResult r = RunGroup(Method::kEmsEstimated, pairs, options);
    table.AddRow({std::to_string(iterations), Cell(r.quality.f_measure),
                  MillisCell(r.mean_millis),
                  std::to_string(r.formula_evaluations)});
  }
  {
    HarnessOptions options;
    GroupResult r = RunGroup(Method::kEms, pairs, options);
    table.AddRow({"MAX (exact)", Cell(r.quality.f_measure),
                  MillisCell(r.mean_millis),
                  std::to_string(r.formula_evaluations)});
  }
  {
    HarnessOptions options;
    GroupResult r = RunGroup(Method::kBhv, pairs, options);
    table.AddRow({"BHV (ref)", Cell(r.quality.f_measure),
                  MillisCell(r.mean_millis), "-"});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
