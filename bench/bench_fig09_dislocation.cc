// Figure 9: robustness to dislocated events — the first m events of every
// trace are removed from one log of a 100-event synthetic pair; accuracy
// of every method as m grows (the paper's protocol, Section 5.2).
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 9", "handling dislocated events (vary m)");
  const char* pairs_env = std::getenv("EMS_BENCH_PAIRS_PER_SIZE");
  int pairs_per_m = pairs_env != nullptr ? std::atoi(pairs_env) : 5;
  if (pairs_per_m <= 0) pairs_per_m = 5;

  HarnessOptions options;

  TextTable table({"m", "EMS", "EMS+es", "GED", "BHV", "SimRank"});
  for (int m = 0; m <= 8; m += 2) {
    std::vector<LogPair> storage;
    for (int i = 0; i < pairs_per_m; ++i) {
      storage.push_back(
          MakeDislocationPair(100, m, 9100 + static_cast<uint64_t>(i)));
    }
    std::vector<const LogPair*> pairs = Pointers(storage);
    std::vector<std::string> row = {std::to_string(m)};
    for (Method method : {Method::kEms, Method::kEmsEstimated, Method::kGed,
                          Method::kBhv, Method::kSimRank}) {
      GroupResult r = RunGroup(method, pairs, options);
      row.push_back(FCell(r));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
