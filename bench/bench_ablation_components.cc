// Ablation: which ingredients of EMS buy the accuracy — the artificial
// event + edge-frequency coefficients (EMS vs plain SimRank), the
// direction aggregation (forward / backward / both), and the label blend.
#include "bench_common.h"

#include "assignment/selection.h"
#include "core/ems_similarity.h"

using namespace ems;
using namespace ems::bench;

namespace {

double RunDirectional(const LogPair& pair, Direction direction) {
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  EmsOptions opts;
  opts.direction = direction;
  EmsSimilarity sim(g1, g2, opts);
  SimilarityMatrix m = sim.Compute();
  SelectionOptions sel;
  sel.min_similarity = 1e-6;
  std::vector<Correspondence> found;
  for (const Match& match :
       SelectMaxTotalSimilarity(m.RealSubmatrix(true, true), sel)) {
    Correspondence c;
    c.similarity = match.similarity;
    for (EventId e : g1.Members(match.row + 1)) {
      c.events1.push_back(pair.log1.EventName(e));
    }
    for (EventId e : g2.Members(match.col + 1)) {
      c.events2.push_back(pair.log2.EventName(e));
    }
    found.push_back(std::move(c));
  }
  return Evaluate(pair.truth, found).f_measure;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Ablation", "EMS components (directions, artificial event, "
                          "edge coefficients)");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());

  const std::vector<std::pair<const char*, std::vector<const LogPair*>>>
      testbeds = {{"DS-F", Pointers(ds.ds_f)},
                  {"DS-B", Pointers(ds.ds_b)},
                  {"DS-FB", Pointers(ds.ds_fb)}};

  TextTable table({"testbed", "EMS fwd", "EMS bwd", "EMS both",
                   "SimRank (no vX, no C)", "BHV (fwd, no vX)"});
  for (const auto& [name, pairs] : testbeds) {
    double fwd = 0.0, bwd = 0.0, both = 0.0;
    for (const LogPair* pair : pairs) {
      fwd += RunDirectional(*pair, Direction::kForward);
      bwd += RunDirectional(*pair, Direction::kBackward);
      both += RunDirectional(*pair, Direction::kBoth);
    }
    double n = static_cast<double>(pairs.size());
    HarnessOptions options;
    GroupResult simrank = RunGroup(Method::kSimRank, pairs, options);
    GroupResult bhv = RunGroup(Method::kBhv, pairs, options);
    table.AddRow({name, Cell(fwd / n), Cell(bwd / n), Cell(both / n),
                  Cell(simrank.quality.f_measure),
                  Cell(bhv.quality.f_measure)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
