// Shared machinery of the figure-reproduction benches: each binary
// regenerates the corpus deterministically, runs the methods of
// Section 5, and prints the same series the paper's figure plots.
//
// When the EMS_BENCH_JSON_DIR environment variable names a directory,
// every RunGroup call additionally instruments its runs with an
// ObsContext and the binary writes BENCH_<figure>.json there at exit:
// one record per group with quality, timing, formula evaluations, and
// the per-phase wall-time breakdown (graph_build, ems_fixpoint, ...).
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "eval/table.h"
#include "exec/thread_pool.h"
#include "obs/context.h"
#include "synth/dataset.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace ems {
namespace bench {

/// Requested worker threads for the RunGroup sweeps. Settable via
/// `--threads=N` (see Init) or the EMS_BENCH_THREADS environment
/// variable; -1 (unset) means hardware concurrency, 0 means serial.
inline int& BenchThreadsFlag() {
  static int threads = [] {
    const char* env = std::getenv("EMS_BENCH_THREADS");
    return env != nullptr ? std::atoi(env) : -1;
  }();
  return threads;
}

/// Effective worker count (>= 1; 1 = serial sweeps).
inline int BenchWorkers() {
  const int t = BenchThreadsFlag();
  if (t < 0) return exec::ThreadPool::EffectiveThreads(0);
  return t == 0 ? 1 : t;
}

/// The pool shared by every RunGroup sweep of this binary, or null when
/// running serially. Sized on first use — call Init before RunGroup.
inline exec::ThreadPool* BenchPool() {
  if (BenchWorkers() <= 1) return nullptr;
  static exec::ThreadPool pool(BenchWorkers());
  return &pool;
}

/// Parses the shared bench flags (currently `--threads=N`) from argv.
/// Call at the top of main, before the first RunGroup.
inline void Init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--threads=";
    if (arg.rfind(prefix, 0) == 0) {
      BenchThreadsFlag() = std::atoi(arg.substr(prefix.size()).c_str());
    } else {
      std::fprintf(stderr, "warning: ignoring unknown option '%s'\n",
                   arg.c_str());
    }
  }
}

/// Aggregated outcome of running one method over a group of log pairs.
struct GroupResult {
  MatchQuality quality;       // macro-averaged
  double mean_millis = 0.0;
  int dnf = 0;                // pairs the method could not finish (OPQ)
  uint64_t formula_evaluations = 0;
  int pairs = 0;

  /// Total wall time per instrumented phase across all pairs of the
  /// group, in ms. Empty unless EMS_BENCH_JSON_DIR enabled tracing.
  std::map<std::string, double> phase_millis;

  /// Wall-time speedup vs a serial reference sweep (bench_parallel);
  /// 0 when the group was not measured against one.
  double speedup = 0.0;
};

/// Commit the bench binary was configured from (stamped by CMake), so a
/// BENCH_*.json lying around is attributable to the code that made it.
inline const char* BenchGitSha() {
#ifdef EMS_BUILD_GIT_SHA
  return EMS_BUILD_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Compiler that built the bench binary.
inline std::string BenchCompiler() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#elif defined(__VERSION__)
  return __VERSION__;
#else
  return "unknown";
#endif
}

/// Directory for BENCH_*.json exports, or empty when disabled.
inline const std::string& BenchJsonDir() {
  static const std::string dir = [] {
    const char* env = std::getenv("EMS_BENCH_JSON_DIR");
    return std::string(env != nullptr ? env : "");
  }();
  return dir;
}

/// Collects one benchmark binary's group records and writes
/// BENCH_<figure>.json on destruction (program exit). PrintHeader names
/// the figure; RunGroup appends records automatically.
class BenchJsonRecorder {
 public:
  static BenchJsonRecorder& Instance() {
    static BenchJsonRecorder recorder;
    return recorder;
  }

  void SetFigure(const std::string& figure, const std::string& description) {
    if (figure_.empty()) figure_ = Sanitize(figure);
    description_ = description;
  }

  void AddGroup(const std::string& method, const GroupResult& group) {
    if (BenchJsonDir().empty()) return;
    records_.push_back({method, group});
    // Rewritten after every group: a run that dies mid-way (OPQ budget
    // blowup, OOM kill, ^C between groups) leaves the last complete
    // document instead of nothing.
    Flush();
  }

  /// Writes BENCH_<figure>.json with the records so far. Atomic
  /// (tmp file + rename), so readers never observe truncated JSON.
  /// Idempotent; also runs on destruction (program exit).
  void Flush() {
    if (BenchJsonDir().empty() || records_.empty()) return;
    JsonWriter w;
    w.BeginObject();
    w.Key("figure");
    w.String(figure_.empty() ? "unknown" : figure_);
    w.Key("description");
    w.String(description_);
    w.Key("threads");
    w.Int(BenchWorkers());
    w.Key("git_sha");
    w.String(BenchGitSha());
    w.Key("compiler");
    w.String(BenchCompiler());
    w.Key("groups");
    w.BeginArray();
    for (const auto& [method, group] : records_) {
      w.BeginObject();
      w.Key("method");
      w.String(method);
      w.Key("pairs");
      w.Int(group.pairs);
      w.Key("dnf");
      w.Int(group.dnf);
      w.Key("f_measure");
      w.Number(group.quality.f_measure);
      w.Key("precision");
      w.Number(group.quality.precision);
      w.Key("recall");
      w.Number(group.quality.recall);
      w.Key("mean_millis");
      w.Number(group.mean_millis);
      w.Key("formula_evaluations");
      w.Int(static_cast<long long>(group.formula_evaluations));
      if (group.speedup > 0.0) {
        w.Key("speedup");
        w.Number(group.speedup);
      }
      w.Key("phase_millis");
      w.BeginObject();
      for (const auto& [phase, ms] : group.phase_millis) {
        w.Key(phase);
        w.Number(ms);
      }
      w.EndObject();
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    const std::string path =
        BenchJsonDir() + "/BENCH_" +
        (figure_.empty() ? std::string("unknown") : figure_) + ".json";
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp);
    if (!out) return;
    out << w.str() << "\n";
    out.flush();
    const bool good = out.good();
    out.close();
    if (good) std::rename(tmp.c_str(), path.c_str());
    else std::remove(tmp.c_str());
  }

  ~BenchJsonRecorder() { Flush(); }

 private:
  BenchJsonRecorder() = default;

  static std::string Sanitize(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (std::isalnum(static_cast<unsigned char>(c))) out += c;
      else if (!out.empty() && out.back() != '_') out += '_';
    }
    while (!out.empty() && out.back() == '_') out.pop_back();
    return out;
  }

  std::string figure_;
  std::string description_;
  std::vector<std::pair<std::string, GroupResult>> records_;
};

inline GroupResult RunGroup(Method method,
                            const std::vector<const LogPair*>& pairs,
                            const HarnessOptions& options) {
  GroupResult group;
  QualityAccumulator acc;
  double total_ms = 0.0;
  const bool tracing = !BenchJsonDir().empty();
  // Pairs fan out across the bench pool (serial when --threads=0); runs
  // come back index-aligned and bit-identical to a serial sweep. A fresh
  // context per pair keeps the span count well under the recorder's cap;
  // durations aggregate by phase name below.
  std::vector<std::unique_ptr<ObsContext>> per_pair_obs;
  const std::vector<MethodRun> runs = RunMethodOnPairs(
      method, pairs, options, BenchPool(), tracing ? &per_pair_obs : nullptr);
  for (size_t i = 0; i < runs.size(); ++i) {
    const MethodRun& run = runs[i];
    total_ms += run.millis;
    if (tracing) {
      for (const SpanRecord& span : per_pair_obs[i]->trace.Snapshot()) {
        if (span.duration_us < 0) continue;
        group.phase_millis[span.name] +=
            static_cast<double>(span.duration_us) / 1000.0;
      }
    }
    if (run.dnf) {
      ++group.dnf;
      continue;
    }
    acc.Add(run.quality);
    group.formula_evaluations += run.ems_stats.formula_evaluations +
                                 run.composite_stats.formula_evaluations;
  }
  group.quality = acc.Mean();
  group.pairs = static_cast<int>(pairs.size());
  group.mean_millis =
      pairs.empty() ? 0.0 : total_ms / static_cast<double>(pairs.size());
  BenchJsonRecorder::Instance().AddGroup(MethodName(method), group);
  return group;
}

inline std::vector<const LogPair*> Pointers(const std::vector<LogPair>& v) {
  std::vector<const LogPair*> out;
  out.reserve(v.size());
  for (const auto& p : v) out.push_back(&p);
  return out;
}

/// "0.812" or "DNF" when no pair finished.
inline std::string FCell(const GroupResult& r) {
  if (r.dnf == r.pairs && r.pairs > 0) return "DNF";
  std::string cell = Cell(r.quality.f_measure);
  if (r.dnf > 0) cell += "*";  // some pairs timed out
  return cell;
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("=====================================================\n");
  BenchJsonRecorder::Instance().SetFigure(figure, description);
}

/// The corpus used by the singleton-matching figures. Scaled by the
/// EMS_BENCH_SCALE environment variable (1 = the paper's 149 pairs;
/// smaller values shrink groups proportionally for quick runs).
inline RealisticDatasetOptions ScaledDatasetOptions() {
  RealisticDatasetOptions opts;
  const char* scale_env = std::getenv("EMS_BENCH_SCALE");
  double scale = scale_env != nullptr ? std::atof(scale_env) : 1.0;
  if (scale <= 0.0 || scale > 1.0) scale = 1.0;
  auto scaled = [scale](int n) {
    int v = static_cast<int>(n * scale);
    return v < 1 ? 1 : v;
  };
  opts.ds_f_pairs = scaled(opts.ds_f_pairs);
  opts.ds_b_pairs = scaled(opts.ds_b_pairs);
  opts.ds_fb_pairs = scaled(opts.ds_fb_pairs);
  opts.composite_pairs = scaled(opts.composite_pairs);
  return opts;
}

}  // namespace bench
}  // namespace ems
