// Shared machinery of the figure-reproduction benches: each binary
// regenerates the corpus deterministically, runs the methods of
// Section 5, and prints the same series the paper's figure plots.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "eval/table.h"
#include "synth/dataset.h"
#include "util/timer.h"

namespace ems {
namespace bench {

/// Aggregated outcome of running one method over a group of log pairs.
struct GroupResult {
  MatchQuality quality;       // macro-averaged
  double mean_millis = 0.0;
  int dnf = 0;                // pairs the method could not finish (OPQ)
  uint64_t formula_evaluations = 0;
  int pairs = 0;
};

inline GroupResult RunGroup(Method method,
                            const std::vector<const LogPair*>& pairs,
                            const HarnessOptions& options) {
  GroupResult group;
  QualityAccumulator acc;
  double total_ms = 0.0;
  for (const LogPair* pair : pairs) {
    MethodRun run = RunMethod(method, *pair, options);
    total_ms += run.millis;
    if (run.dnf) {
      ++group.dnf;
      continue;
    }
    acc.Add(run.quality);
    group.formula_evaluations += run.ems_stats.formula_evaluations +
                                 run.composite_stats.formula_evaluations;
  }
  group.quality = acc.Mean();
  group.pairs = static_cast<int>(pairs.size());
  group.mean_millis =
      pairs.empty() ? 0.0 : total_ms / static_cast<double>(pairs.size());
  return group;
}

inline std::vector<const LogPair*> Pointers(const std::vector<LogPair>& v) {
  std::vector<const LogPair*> out;
  out.reserve(v.size());
  for (const auto& p : v) out.push_back(&p);
  return out;
}

/// "0.812" or "DNF" when no pair finished.
inline std::string FCell(const GroupResult& r) {
  if (r.dnf == r.pairs && r.pairs > 0) return "DNF";
  std::string cell = Cell(r.quality.f_measure);
  if (r.dnf > 0) cell += "*";  // some pairs timed out
  return cell;
}

inline void PrintHeader(const char* figure, const char* description) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("=====================================================\n");
}

/// The corpus used by the singleton-matching figures. Scaled by the
/// EMS_BENCH_SCALE environment variable (1 = the paper's 149 pairs;
/// smaller values shrink groups proportionally for quick runs).
inline RealisticDatasetOptions ScaledDatasetOptions() {
  RealisticDatasetOptions opts;
  const char* scale_env = std::getenv("EMS_BENCH_SCALE");
  double scale = scale_env != nullptr ? std::atof(scale_env) : 1.0;
  if (scale <= 0.0 || scale > 1.0) scale = 1.0;
  auto scaled = [scale](int n) {
    int v = static_cast<int>(n * scale);
    return v < 1 ? 1 : v;
  };
  opts.ds_f_pairs = scaled(opts.ds_f_pairs);
  opts.ds_b_pairs = scaled(opts.ds_b_pairs);
  opts.ds_fb_pairs = scaled(opts.ds_fb_pairs);
  opts.composite_pairs = scaled(opts.composite_pairs);
  return opts;
}

}  // namespace bench
}  // namespace ems
