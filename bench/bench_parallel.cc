// Parallel-sweep figure: wall time of a Figure-7-style harness sweep
// (EMS and EMS+es over DS-FB) at 1 and 4 worker threads, plus the
// speedup. Both sweeps produce bit-identical quality numbers — the
// parallel runs are pure functions of (method, pair, options) — so the
// table doubles as an equivalence check; a mismatch prints loudly.
//
// With EMS_BENCH_JSON_DIR set, BENCH_Parallel_sweep.json records one
// group per (method, threads) cell; the "threads" suffix in the method
// name and the speedup rows make perf trajectories comparable across
// machines.
#include <cmath>

#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

namespace {

struct SweepResult {
  GroupResult group;
  double total_millis = 0.0;
};

SweepResult Sweep(Method method, const std::vector<const LogPair*>& pairs,
                  const HarnessOptions& options, int threads) {
  SweepResult sweep;
  exec::ThreadPool pool(threads);
  QualityAccumulator acc;
  Timer timer;
  const std::vector<MethodRun> runs = RunMethodOnPairs(
      method, pairs, options, threads > 1 ? &pool : nullptr);
  sweep.total_millis = timer.ElapsedMillis();
  for (const MethodRun& run : runs) {
    if (run.dnf) {
      ++sweep.group.dnf;
      continue;
    }
    acc.Add(run.quality);
    sweep.group.formula_evaluations += run.ems_stats.formula_evaluations +
                                       run.composite_stats.formula_evaluations;
  }
  sweep.group.quality = acc.Mean();
  sweep.group.pairs = static_cast<int>(pairs.size());
  sweep.group.mean_millis =
      pairs.empty() ? 0.0
                    : sweep.total_millis / static_cast<double>(pairs.size());
  return sweep;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Parallel sweep", "harness wall time vs worker threads");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());
  std::vector<const LogPair*> pairs = Pointers(ds.ds_fb);

  HarnessOptions options;
  options.use_labels = false;

  bool identical = true;
  TextTable table(
      {"method", "serial ms", "4-thread ms", "speedup", "f-measure"});
  for (Method m : {Method::kEms, Method::kEmsEstimated}) {
    SweepResult serial = Sweep(m, pairs, options, 1);
    SweepResult parallel = Sweep(m, pairs, options, 4);
    const double speedup = parallel.total_millis > 0.0
                               ? serial.total_millis / parallel.total_millis
                               : 0.0;
    if (serial.group.quality.f_measure != parallel.group.quality.f_measure ||
        serial.group.formula_evaluations !=
            parallel.group.formula_evaluations) {
      identical = false;
    }
    table.AddRow({MethodName(m), MillisCell(serial.total_millis),
                  MillisCell(parallel.total_millis), Cell(speedup, 2) + "x",
                  Cell(parallel.group.quality.f_measure)});
    BenchJsonRecorder::Instance().AddGroup(
        std::string(MethodName(m)) + "/threads=1", serial.group);
    GroupResult parallel_record = parallel.group;
    parallel_record.speedup = speedup;
    BenchJsonRecorder::Instance().AddGroup(
        std::string(MethodName(m)) + "/threads=4", parallel_record);
  }
  std::printf("%s", table.ToString().c_str());
  if (!identical) {
    std::printf("ERROR: parallel sweep diverged from the serial sweep\n");
    return 1;
  }
  std::printf("parallel results bit-identical to serial: yes\n");
  return 0;
}
