// Persistent-store benchmark: cold parse + snapshot write vs warm
// snapshot load for the artifact store (docs/PERSISTENCE.md), on a
// synthetic trace-format corpus. Also times dependency-graph rebuild
// against snapshot decode to size the graph-artifact payoff.
//
// Doubles as an equivalence harness: warm-loaded logs must re-encode to
// the exact bytes of their cold-parsed sources and must drive the full
// matcher to an identical result document; decoded graphs must re-encode
// to the bytes they were decoded from. The binary exits nonzero on any
// mismatch, so the CI cache-reuse step also guards the bit-identity
// contract.
//
// When EMS_BENCH_JSON_DIR names a directory, writes BENCH_store.json
// there (atomically, tmp + rename) with per-configuration timing, the
// cold/warm speedup, store counters, and on-disk snapshot bytes.
//
// Flags: --activities=N (default 30), --traces=N (default 2000),
//        --reps=N (default 5), --seed=N (default 17).
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/match_report.h"
#include "core/matcher.h"
#include "graph/dependency_graph.h"
#include "log/event_log.h"
#include "log/log_io.h"
#include "obs/context.h"
#include "serve/log_cache.h"
#include "store/artifact_store.h"
#include "store/snapshot.h"
#include "synth/log_generator.h"
#include "synth/process_tree.h"
#include "util/json_writer.h"
#include "util/random.h"
#include "util/timer.h"

namespace ems {
namespace {

namespace fs = std::filesystem;

struct ConfigResult {
  std::string name;
  double best_millis = 0.0;  // fastest rep (noise-robust)
  double mean_millis = 0.0;
};

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

ConfigResult Finish(const std::string& name,
                    const std::vector<double>& times) {
  ConfigResult r;
  r.name = name;
  double total = 0.0;
  for (size_t i = 0; i < times.size(); ++i) {
    total += times[i];
    if (i == 0 || times[i] < r.best_millis) r.best_millis = times[i];
  }
  r.mean_millis = times.empty() ? 0.0 : total / times.size();
  return r;
}

void WriteJson(const std::vector<ConfigResult>& results, int activities,
               int traces, int reps, double speedup_warm,
               uint64_t snapshot_bytes, const ObsContext& obs) {
  const char* env = std::getenv("EMS_BENCH_JSON_DIR");
  if (env == nullptr || env[0] == '\0') return;
  JsonWriter w;
  w.BeginObject();
  w.Key("figure");
  w.String("store");
  w.Key("description");
  w.String("artifact store: cold parse+write vs warm snapshot load");
  w.Key("activities");
  w.Int(activities);
  w.Key("traces");
  w.Int(traces);
  w.Key("reps");
  w.Int(reps);
  w.Key("speedup_warm_load");
  w.Number(speedup_warm);
  w.Key("snapshot_bytes");
  w.Int(static_cast<long long>(snapshot_bytes));
  for (const char* counter :
       {"store.hits", "store.misses", "store.writes", "store.bytes_read",
        "store.bytes_written", "store.fallback_rederives"}) {
    w.Key(counter);
    w.Int(static_cast<long long>(obs.metrics.CounterValue(counter)));
  }
  w.Key("groups");
  w.BeginArray();
  for (const ConfigResult& r : results) {
    w.BeginObject();
    w.Key("method");
    w.String(r.name);
    w.Key("best_millis");
    w.Number(r.best_millis);
    w.Key("mean_millis");
    w.Number(r.mean_millis);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string path = std::string(env) + "/BENCH_store.json";
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (!out) return;
  out << w.str() << "\n";
  out.flush();
  const bool good = out.good();
  out.close();
  if (good) std::rename(tmp.c_str(), path.c_str());
  else std::remove(tmp.c_str());
}

int Main(int argc, char** argv) {
  int activities = 30;
  int traces = 2000;
  int reps = 5;
  uint64_t seed = 17;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::string p = prefix;
      return arg.rfind(p, 0) == 0 ? arg.c_str() + p.size() : nullptr;
    };
    if (const char* v = value("--activities=")) activities = std::atoi(v);
    else if (const char* v = value("--traces=")) traces = std::atoi(v);
    else if (const char* v = value("--reps=")) reps = std::atoi(v);
    else if (const char* v = value("--seed="))
      seed = std::strtoull(v, nullptr, 10);
    else std::fprintf(stderr, "warning: ignoring unknown option '%s'\n",
                      arg.c_str());
  }
  if (activities < 2 || traces < 1 || reps < 1) {
    std::fprintf(stderr, "invalid --activities/--traces/--reps\n");
    return 2;
  }

  std::printf("=====================================================\n");
  std::printf("store — cold parse vs warm snapshot load (%d activities, "
              "%d traces)\n",
              activities, traces);
  std::printf("=====================================================\n");

  // Deterministic corpus: one process tree, two playouts.
  Rng rng(seed);
  ProcessTreeOptions tree_options;
  tree_options.num_activities = activities;
  std::unique_ptr<ProcessNode> tree = GenerateProcessTree(tree_options, &rng);
  PlayoutOptions playout;
  playout.num_traces = traces;
  const EventLog source1 = PlayoutLog(*tree, playout, &rng);
  const EventLog source2 = PlayoutLog(*tree, playout, &rng);

  const std::string dir = TempDir();
  const std::string log1_path = dir + "/bench_store_log1.txt";
  const std::string log2_path = dir + "/bench_store_log2.txt";
  const std::string cache_dir = dir + "/bench_store_cache";
  for (const auto& [log, path] :
       {std::pair<const EventLog*, const std::string*>{&source1, &log1_path},
        {&source2, &log2_path}}) {
    Status st = WriteTraceFile(*log, *path);
    if (!st.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", path->c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }

  ObsContext obs;
  auto open_store = [&]() -> store::ArtifactStore {
    store::ArtifactStoreOptions options;
    options.dir = cache_dir;
    options.obs = &obs;
    Result<store::ArtifactStore> opened =
        store::ArtifactStore::Open(std::move(options));
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open store: %s\n",
                   opened.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(opened).value();
  };
  auto load_both = [&](store::ArtifactStore* store_ptr)
      -> std::pair<EventLog, EventLog> {
    Result<EventLog> l1 =
        serve::LoadEventLogThroughStore(store_ptr, log1_path, "trace");
    Result<EventLog> l2 =
        serve::LoadEventLogThroughStore(store_ptr, log2_path, "trace");
    if (!l1.ok() || !l2.ok()) {
      std::fprintf(stderr, "load failed\n");
      std::exit(1);
    }
    return {std::move(l1).value(), std::move(l2).value()};
  };

  std::vector<ConfigResult> results;

  // Baseline: plain parse, no store in the loop.
  {
    std::vector<double> times;
    for (int rep = 0; rep < reps; ++rep) {
      Timer timer;
      load_both(nullptr);
      times.push_back(timer.ElapsedMillis());
    }
    results.push_back(Finish("parse_direct", times));
  }

  // Cold: empty cache dir every rep — parse from source plus the
  // snapshot write-back.
  EventLog cold1, cold2;
  {
    std::vector<double> times;
    for (int rep = 0; rep < reps; ++rep) {
      fs::remove_all(cache_dir);
      store::ArtifactStore store = open_store();
      Timer timer;
      auto [l1, l2] = load_both(&store);
      times.push_back(timer.ElapsedMillis());
      if (rep == 0) {
        cold1 = std::move(l1);
        cold2 = std::move(l2);
      }
    }
    results.push_back(Finish("parse_cold_store", times));
  }

  // Warm: the cache dir left by the last cold rep — snapshot decode
  // only, source parser never runs.
  EventLog warm1, warm2;
  uint64_t snapshot_bytes = 0;
  {
    std::vector<double> times;
    for (int rep = 0; rep < reps; ++rep) {
      store::ArtifactStore store = open_store();
      Timer timer;
      auto [l1, l2] = load_both(&store);
      times.push_back(timer.ElapsedMillis());
      if (rep == 0) {
        warm1 = std::move(l1);
        warm2 = std::move(l2);
        snapshot_bytes = store.TotalBytes();
      }
    }
    results.push_back(Finish("snapshot_warm_load", times));
  }

  // Graph artifacts: full rebuild from the log vs snapshot decode.
  const std::string graph_snapshot = store::EncodeDependencyGraph(
      DependencyGraph::Build(cold1), /*include_distances=*/true);
  {
    std::vector<double> build_times, decode_times;
    for (int rep = 0; rep < reps; ++rep) {
      Timer build_timer;
      DependencyGraph g = DependencyGraph::Build(cold1);
      build_times.push_back(build_timer.ElapsedMillis());
      Timer decode_timer;
      Result<DependencyGraph> decoded =
          store::DecodeDependencyGraph(graph_snapshot);
      decode_times.push_back(decode_timer.ElapsedMillis());
      if (!decoded.ok()) {
        std::fprintf(stderr, "graph decode failed: %s\n",
                     decoded.status().ToString().c_str());
        return 1;
      }
      if (rep == 0 &&
          store::EncodeDependencyGraph(*decoded, true) != graph_snapshot) {
        std::fprintf(stderr,
                     "EQUIVALENCE FAILURE: graph decode/re-encode drifted\n");
        return 1;
      }
    }
    results.push_back(Finish("graph_build", build_times));
    results.push_back(Finish("graph_decode", decode_times));
  }

  for (const ConfigResult& r : results) {
    std::printf("%-20s best %8.3f ms  mean %8.3f ms\n", r.name.c_str(),
                r.best_millis, r.mean_millis);
  }

  // Equivalence harness: snapshot-loaded logs are bit-identical to the
  // parsed ones and drive the matcher to the same result document.
  if (store::EncodeEventLog(warm1) != store::EncodeEventLog(cold1) ||
      store::EncodeEventLog(warm2) != store::EncodeEventLog(cold2)) {
    std::fprintf(stderr,
                 "EQUIVALENCE FAILURE: warm logs re-encode differently\n");
    return 1;
  }
  MatchOptions match_options;
  match_options.ems.num_threads = 1;
  Matcher matcher(match_options);
  Result<MatchResult> cold_match = matcher.Match(cold1, cold2);
  Result<MatchResult> warm_match = matcher.Match(warm1, warm2);
  if (!cold_match.ok() || !warm_match.ok()) {
    std::fprintf(stderr, "matching failed\n");
    return 1;
  }
  if (MatchResultToJson(*cold_match) != MatchResultToJson(*warm_match)) {
    std::fprintf(stderr,
                 "EQUIVALENCE FAILURE: cold and warm match results differ\n");
    return 1;
  }
  std::printf("equivalence: warm snapshots bit-identical, match results "
              "identical (%zu correspondences)\n",
              cold_match->correspondences.size());

  const double speedup_warm =
      results[2].best_millis > 0.0
          ? results[1].best_millis / results[2].best_millis
          : 0.0;
  std::printf("cold/warm load speedup: %.2fx  (snapshots on disk: %llu "
              "bytes; store.hits=%llu misses=%llu writes=%llu)\n",
              speedup_warm,
              static_cast<unsigned long long>(snapshot_bytes),
              static_cast<unsigned long long>(
                  obs.metrics.CounterValue("store.hits")),
              static_cast<unsigned long long>(
                  obs.metrics.CounterValue("store.misses")),
              static_cast<unsigned long long>(
                  obs.metrics.CounterValue("store.writes")));
  WriteJson(results, activities, traces, reps, speedup_warm, snapshot_bytes,
            obs);

  fs::remove_all(cache_dir);
  std::remove(log1_path.c_str());
  std::remove(log2_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ems

int main(int argc, char** argv) { return ems::Main(argc, argv); }
