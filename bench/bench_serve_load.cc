// Load benchmark of the sharded TCP matching service: an in-process
// ShardedMatchService behind a real TcpServer, driven by the open-loop
// loadgen core over localhost. Reported quantities:
//
//   - a QPS ladder: target vs achieved rate plus p50/p99 latency per
//     rung, doubling the target until the service saturates (achieved
//     < 85% of target, or > 1% of responses shed as `overloaded`);
//     sustained_qps is the last clean rung, saturation_qps the first
//     rung that broke;
//   - per-shard balance: routed-job counts per shard after the ladder,
//     summarized as max/mean (1.0 = perfectly even);
//   - two self-checks that double as correctness gates: an overload
//     burst against a deliberately tiny admission budget must shed with
//     `overloaded` responses while still answering every line, and a
//     `drain` admin command must ack, reject subsequent jobs with
//     status "draining", and complete with every accepted job answered.
//
// When EMS_BENCH_JSON_DIR names a directory, writes BENCH_serve.json
// there (atomically, tmp + rename). Exits nonzero when a self-check
// fails; the ladder itself is reporting, not a gate.
//
// Flags: --shards=N (default 4), --threads=N (default 4, total),
//        --logs=N (corpus size, default 64), --base-qps=Q (default 100),
//        --rungs=N (default 4), --duration=S (per rung, default 1.0),
//        --connections=N (default 4).
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/loadgen.h"
#include "net/tcp_server.h"
#include "net/wire.h"
#include "obs/context.h"
#include "obs/metrics.h"
#include "serve/sharded_service.h"
#include "util/json_writer.h"

#ifndef _WIN32
#include <unistd.h>
#endif

namespace ems {
namespace {

std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env != nullptr ? env : "/tmp";
}

struct Rung {
  double target_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t ok = 0;
  uint64_t overloaded = 0;
  uint64_t responses = 0;
  bool saturated = false;
};

// Writes the small distinct trace logs the ladder cycles through; jobs
// route by log1, so the corpus is also the routing-key population.
bool WriteCorpus(const std::string& dir, int count,
                 std::vector<std::string>* paths) {
  for (int i = 0; i < count; ++i) {
    const std::string path =
        dir + "/bench_serve_load_" + std::to_string(i) + ".txt";
    std::ofstream out(path);
    if (!out) return false;
    out << "a;b;k" << i << ";d\na;k" << i << ";d\nb;a;c;d\n";
    if (!out.good()) return false;
    paths->push_back(path);
  }
  return true;
}

std::string MatchLine(const std::string& id, const std::string& log1,
                      const std::string& log2) {
  JsonWriter w;
  w.BeginObject();
  w.Key("id");
  w.String(id);
  w.Key("log1");
  w.String(log1);
  w.Key("log2");
  w.String(log2);
  w.Key("labels");
  w.String("none");
  w.EndObject();
  return w.str();
}

// One ladder rung at `qps` against the already-running endpoint.
Result<Rung> RunRung(const std::string& endpoint,
                     const std::vector<std::string>& corpus, double qps,
                     double duration, int connections) {
  net::LoadGenOptions options;
  options.tcp = endpoint;
  options.connections = connections;
  options.target_qps = qps;
  options.duration_seconds = duration;
  options.make_line = [&corpus](uint64_t seq, const std::string& id) {
    const std::string& log1 = corpus[seq % corpus.size()];
    const std::string& log2 = corpus[(seq + 1) % corpus.size()];
    return MatchLine(id, log1, log2);
  };
  EMS_ASSIGN_OR_RETURN(net::LoadGenReport report, net::RunLoadGen(options));
  Rung rung;
  rung.target_qps = qps;
  rung.achieved_qps = report.achieved_qps;
  rung.p50_ms = report.LatencyQuantileMs(0.50);
  rung.p99_ms = report.LatencyQuantileMs(0.99);
  rung.ok = report.StatusCount("ok");
  rung.overloaded = report.StatusCount("overloaded");
  rung.responses = report.responses;
  const double shed_fraction =
      report.responses > 0
          ? static_cast<double>(rung.overloaded) /
                static_cast<double>(report.responses)
          : 0.0;
  rung.saturated =
      report.achieved_qps < 0.85 * qps || shed_fraction > 0.01;
  if (report.protocol_errors > 0) {
    return Status::Internal("protocol errors during ladder rung");
  }
  return rung;
}

// Overload self-check: a deliberately starved deployment must shed with
// explicit `overloaded` responses and still answer every line sent.
// The shards' workers are parked for the duration of the burst — with a
// one-job admission budget per shard that makes shedding a certainty
// rather than a race against how fast tiny matches complete.
bool CheckOverloadShedding(const std::vector<std::string>& corpus) {
  serve::ShardedServiceOptions options;
  options.num_shards = 2;
  options.total_threads = 2;
  options.shard_queue_capacity = 2;
  options.max_inflight_per_shard = 1;
  serve::ShardedMatchService router(options);
  net::TcpServerOptions server_options;
  server_options.obs = router.obs();
  net::TcpServer server(server_options, &router);
  if (!server.Start().ok()) return false;
  router.SetDrainRequestCallback([&server] { server.RequestDrain(); });

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  for (int i = 0; i < router.num_shards(); ++i) {
    if (!router.shard_service(i).pool().Submit([&mu, &cv, &release] {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&release] { return release; });
        })) {
      return false;
    }
  }
  // Release the workers well after the burst has been sent and every
  // line admitted or shed; the (at most one per shard) admitted jobs
  // then complete so the loadgen still sees a response for every line.
  std::thread releaser([&mu, &cv, &release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
  });

  net::LoadGenOptions load;
  load.tcp = "127.0.0.1:" + std::to_string(server.port());
  load.connections = 4;
  load.target_qps = 2000.0;
  load.duration_seconds = 10.0;  // max_requests governs
  load.max_requests = 200;
  load.make_line = [&corpus](uint64_t seq, const std::string& id) {
    const std::string& log1 = corpus[seq % corpus.size()];
    const std::string& log2 = corpus[(seq + 1) % corpus.size()];
    return MatchLine(id, log1, log2);
  };
  Result<net::LoadGenReport> run = net::RunLoadGen(load);
  releaser.join();
  server.RequestDrain();
  server.Wait();
  router.Drain();
  router.WaitDrained();
  if (!run.ok()) {
    std::fprintf(stderr, "overload check: %s\n",
                 run.status().ToString().c_str());
    return false;
  }
  const bool answered_everything = run->responses == run->sent;
  const bool shed = run->StatusCount("overloaded") > 0;
  const bool clean = run->protocol_errors == 0;
  std::printf("overload: sent %llu answered %llu overloaded %llu%s\n",
              static_cast<unsigned long long>(run->sent),
              static_cast<unsigned long long>(run->responses),
              static_cast<unsigned long long>(
                  run->StatusCount("overloaded")),
              answered_everything && shed && clean ? "" : "  [FAIL]");
  return answered_everything && shed && clean;
}

// Drain self-check over a raw connection: job, drain, job — the ack
// must come back, the post-drain job must be rejected with status
// "draining", and the pre-drain job must still be answered.
bool CheckDrain(const std::vector<std::string>& corpus) {
#ifdef _WIN32
  return true;
#else
  serve::ShardedServiceOptions options;
  options.num_shards = 2;
  options.total_threads = 2;
  serve::ShardedMatchService router(options);
  net::TcpServerOptions server_options;
  server_options.obs = router.obs();
  net::TcpServer server(server_options, &router);
  if (!server.Start().ok()) return false;
  router.SetDrainRequestCallback([&server] { server.RequestDrain(); });

  Result<int> fd = net::ConnectTcp("127.0.0.1", server.port());
  if (!fd.ok()) return false;
  const std::string lines = MatchLine("pre", corpus[0], corpus[1]) + "\n" +
                            "{\"id\":\"d\",\"cmd\":\"drain\"}\n" +
                            MatchLine("post", corpus[2], corpus[3]) + "\n";
  if (!net::WriteAll(*fd, lines).ok()) {
    ::close(*fd);
    return false;
  }
  net::FdLineReader reader(*fd);
  std::string line;
  int acked = 0;
  int drained_reject = 0;
  int answered_pre = 0;
  int responses = 0;
  while (responses < 3 && reader.ReadLine(&line)) {
    ++responses;
    if (line.find("\"cmd\":\"drain\"") != std::string::npos &&
        line.find("\"draining\":true") != std::string::npos) {
      ++acked;
    }
    if (line.find("\"id\":\"post\"") != std::string::npos &&
        line.find("\"status\":\"draining\"") != std::string::npos) {
      ++drained_reject;
    }
    if (line.find("\"id\":\"pre\"") != std::string::npos &&
        line.find("\"status\":\"ok\"") != std::string::npos) {
      ++answered_pre;
    }
  }
  ::close(*fd);
  server.Wait();
  router.WaitDrained();
  const bool ok =
      responses == 3 && acked == 1 && drained_reject == 1 &&
      answered_pre == 1;
  std::printf("drain: ack %d, post-drain rejected %d, pre-drain answered "
              "%d%s\n",
              acked, drained_reject, answered_pre, ok ? "" : "  [FAIL]");
  return ok;
#endif
}

void WriteJson(const std::vector<Rung>& rungs, double sustained_qps,
               double saturation_qps,
               const std::vector<uint64_t>& routed_per_shard,
               double max_over_mean, int shards, int threads,
               bool overload_ok, bool drain_ok) {
  const char* env = std::getenv("EMS_BENCH_JSON_DIR");
  if (env == nullptr || env[0] == '\0') return;
  JsonWriter w;
  w.BeginObject();
  w.Key("figure");
  w.String("serve_load");
  w.Key("description");
  w.String(
      "sharded TCP service under open-loop load: QPS ladder, latency, "
      "shard balance, overload shedding, drain");
  w.Key("shards");
  w.Int(shards);
  w.Key("threads");
  w.Int(threads);
  w.Key("rungs");
  w.BeginArray();
  for (const Rung& rung : rungs) {
    w.BeginObject();
    w.Key("target_qps");
    w.Number(rung.target_qps);
    w.Key("achieved_qps");
    w.Number(rung.achieved_qps);
    w.Key("p50_ms");
    w.Number(rung.p50_ms);
    w.Key("p99_ms");
    w.Number(rung.p99_ms);
    w.Key("ok");
    w.Int(static_cast<long long>(rung.ok));
    w.Key("overloaded");
    w.Int(static_cast<long long>(rung.overloaded));
    w.Key("saturated");
    w.Bool(rung.saturated);
    w.EndObject();
  }
  w.EndArray();
  w.Key("sustained_qps");
  w.Number(sustained_qps);
  w.Key("saturation_qps");
  w.Number(saturation_qps);
  w.Key("shard_balance");
  w.BeginObject();
  w.Key("routed_per_shard");
  w.BeginArray();
  for (uint64_t routed : routed_per_shard) {
    w.Int(static_cast<long long>(routed));
  }
  w.EndArray();
  w.Key("max_over_mean");
  w.Number(max_over_mean);
  w.EndObject();
  w.Key("overload_shedding_ok");
  w.Bool(overload_ok);
  w.Key("drain_ok");
  w.Bool(drain_ok);
  w.EndObject();
  const std::string path = std::string(env) + "/BENCH_serve.json";
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (!out) return;
  out << w.str() << "\n";
  out.flush();
  const bool good = out.good();
  out.close();
  if (good) std::rename(tmp.c_str(), path.c_str());
  else std::remove(tmp.c_str());
}

int Main(int argc, char** argv) {
  int shards = 4;
  int threads = 4;
  int logs = 64;
  double base_qps = 100.0;
  int num_rungs = 4;
  double duration = 1.0;
  int connections = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::string p = prefix;
      return arg.rfind(p, 0) == 0 ? arg.c_str() + p.size() : nullptr;
    };
    if (const char* v = value("--shards=")) shards = std::atoi(v);
    else if (const char* v = value("--threads=")) threads = std::atoi(v);
    else if (const char* v = value("--logs=")) logs = std::atoi(v);
    else if (const char* v = value("--base-qps=")) base_qps = std::atof(v);
    else if (const char* v = value("--rungs=")) num_rungs = std::atoi(v);
    else if (const char* v = value("--duration=")) duration = std::atof(v);
    else if (const char* v = value("--connections="))
      connections = std::atoi(v);
    else std::fprintf(stderr, "warning: ignoring unknown option '%s'\n",
                      arg.c_str());
  }
  if (shards < 1 || threads < 1 || logs < 4 || base_qps <= 0.0 ||
      num_rungs < 1 || duration <= 0.0 || connections < 1) {
    std::fprintf(stderr, "invalid flag value\n");
    return 2;
  }

  std::printf("=====================================================\n");
  std::printf("serve_load — sharded TCP service (%d shards, %d threads)\n",
              shards, threads);
  std::printf("=====================================================\n");

  std::vector<std::string> corpus;
  if (!WriteCorpus(TempDir(), logs, &corpus)) {
    std::fprintf(stderr, "cannot write corpus\n");
    return 1;
  }

  // The ladder deployment; a fresh router per bench keeps runs
  // independent of each other.
  serve::ShardedServiceOptions options;
  options.num_shards = shards;
  options.total_threads = threads;
  options.cache_capacity = static_cast<size_t>(logs) + 8;
  serve::ShardedMatchService router(options);
  net::TcpServerOptions server_options;
  server_options.obs = router.obs();
  net::TcpServer server(server_options, &router);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "cannot start server\n");
    return 1;
  }
  router.SetDrainRequestCallback([&server] { server.RequestDrain(); });
  const std::string endpoint =
      "127.0.0.1:" + std::to_string(server.port());

  std::vector<Rung> rungs;
  double sustained_qps = 0.0;
  double saturation_qps = 0.0;
  double qps = base_qps;
  for (int i = 0; i < num_rungs; ++i, qps *= 2.0) {
    Result<Rung> rung = RunRung(endpoint, corpus, qps, duration,
                                connections);
    if (!rung.ok()) {
      std::fprintf(stderr, "rung at %.0f qps: %s\n", qps,
                   rung.status().ToString().c_str());
      return 1;
    }
    std::printf("%8.0f qps target -> %8.1f achieved  p50 %7.2f ms  "
                "p99 %7.2f ms  overloaded %llu%s\n",
                rung->target_qps, rung->achieved_qps, rung->p50_ms,
                rung->p99_ms,
                static_cast<unsigned long long>(rung->overloaded),
                rung->saturated ? "  [saturated]" : "");
    rungs.push_back(*rung);
    if (rung->saturated) {
      saturation_qps = rung->target_qps;
      break;
    }
    sustained_qps = rung->achieved_qps;
  }

  // Shard balance over the whole ladder, read back from the router's
  // per-shard routed counters.
  std::vector<uint64_t> routed_per_shard;
  uint64_t total_routed = 0;
  uint64_t max_routed = 0;
  for (int i = 0; i < shards; ++i) {
    const uint64_t routed = router.obs()->metrics.CounterValue(
        ShardMetricName("serve.shard", i, "routed"));
    routed_per_shard.push_back(routed);
    total_routed += routed;
    max_routed = std::max(max_routed, routed);
  }
  const double mean_routed =
      static_cast<double>(total_routed) / static_cast<double>(shards);
  const double max_over_mean =
      mean_routed > 0.0 ? static_cast<double>(max_routed) / mean_routed
                        : 0.0;
  std::printf("shard balance: max/mean %.3f over %llu routed jobs\n",
              max_over_mean,
              static_cast<unsigned long long>(total_routed));

  server.RequestDrain();
  server.Wait();
  router.Drain();
  router.WaitDrained();

  const bool overload_ok = CheckOverloadShedding(corpus);
  const bool drain_ok = CheckDrain(corpus);

  WriteJson(rungs, sustained_qps, saturation_qps, routed_per_shard,
            max_over_mean, shards, threads, overload_ok, drain_ok);
  for (const std::string& path : corpus) std::remove(path.c_str());

  if (!overload_ok || !drain_ok) {
    std::fprintf(stderr, "SELF-CHECK FAILURE\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ems

int main(int argc, char** argv) { return ems::Main(argc, argv); }
