// Fixpoint-kernel benchmark: times the EMS iteration to convergence on a
// Figure-8-style scalability instance, comparing the naive reference
// kernel against the optimized one (CSR + coefficient tables + fused scan
// + delta-driven recomputation), serially and with 4 worker threads.
//
// Doubles as an equivalence harness: every configuration's matrix is
// checked bit-identical against the serial naive baseline, and the binary
// exits nonzero on any mismatch — so the CI perf-smoke step also guards
// the determinism contract.
//
// When EMS_BENCH_JSON_DIR names a directory, writes BENCH_fixpoint.json
// there (atomically, tmp + rename) with per-configuration timing,
// per-iteration kernel throughput, and the single-thread speedup of the
// optimized kernel over the naive one.
//
// Flags: --events=N (default 80), --reps=N (default 5), --seed=N.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/ems_similarity.h"
#include "graph/dependency_graph.h"
#include "synth/dataset.h"
#include "util/json_writer.h"
#include "util/timer.h"

namespace ems {
namespace {

struct ConfigResult {
  std::string name;
  double best_millis = 0.0;       // fastest rep (noise-robust)
  double mean_millis = 0.0;
  int iterations = 0;
  uint64_t formula_evaluations = 0;
  uint64_t pairs_pruned = 0;
  uint64_t pairs_skipped = 0;
  size_t coeff_table_bytes = 0;
  double pair_updates_per_sec = 0.0;  // evaluations / best time
};

ConfigResult RunConfig(const std::string& name, const DependencyGraph& g1,
                       const DependencyGraph& g2, EmsKernel kernel,
                       int threads, int reps, SimilarityMatrix* out) {
  ConfigResult r;
  r.name = name;
  double total = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    EmsOptions opts;
    opts.direction = Direction::kBoth;
    opts.kernel = kernel;
    opts.num_threads = threads;
    EmsSimilarity sim(g1, g2, opts);
    Timer timer;
    SimilarityMatrix s = sim.Compute();
    const double ms = timer.ElapsedMillis();
    total += ms;
    if (rep == 0 || ms < r.best_millis) r.best_millis = ms;
    if (rep == 0) {
      *out = s;
      r.iterations = sim.stats().iterations;
      r.formula_evaluations = sim.stats().formula_evaluations;
      r.pairs_pruned = sim.stats().pairs_pruned_converged;
      r.pairs_skipped = sim.stats().pairs_skipped_unchanged;
      r.coeff_table_bytes = sim.coefficient_table_bytes();
    }
  }
  r.mean_millis = total / reps;
  r.pair_updates_per_sec = r.best_millis > 0.0
                               ? static_cast<double>(r.formula_evaluations) /
                                     (r.best_millis / 1000.0)
                               : 0.0;
  return r;
}

void WriteJson(const std::vector<ConfigResult>& results, int events,
               int reps, double speedup) {
  const char* env = std::getenv("EMS_BENCH_JSON_DIR");
  if (env == nullptr || env[0] == '\0') return;
  JsonWriter w;
  w.BeginObject();
  w.Key("figure");
  w.String("fixpoint");
  w.Key("description");
  w.String("EMS fixpoint kernel: naive vs optimized, serial and 4 threads");
  w.Key("events");
  w.Int(events);
  w.Key("reps");
  w.Int(reps);
  w.Key("speedup_single_thread");
  w.Number(speedup);
  w.Key("groups");
  w.BeginArray();
  for (const ConfigResult& r : results) {
    w.BeginObject();
    w.Key("method");
    w.String(r.name);
    w.Key("best_millis");
    w.Number(r.best_millis);
    w.Key("mean_millis");
    w.Number(r.mean_millis);
    w.Key("iterations");
    w.Int(r.iterations);
    w.Key("formula_evaluations");
    w.Int(static_cast<long long>(r.formula_evaluations));
    w.Key("pairs_pruned_converged");
    w.Int(static_cast<long long>(r.pairs_pruned));
    w.Key("pairs_skipped_unchanged");
    w.Int(static_cast<long long>(r.pairs_skipped));
    w.Key("coefficient_table_bytes");
    w.Int(static_cast<long long>(r.coeff_table_bytes));
    w.Key("pair_updates_per_sec");
    w.Number(r.pair_updates_per_sec);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  const std::string path = std::string(env) + "/BENCH_fixpoint.json";
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp);
  if (!out) return;
  out << w.str() << "\n";
  out.flush();
  const bool good = out.good();
  out.close();
  if (good) std::rename(tmp.c_str(), path.c_str());
  else std::remove(tmp.c_str());
}

int Main(int argc, char** argv) {
  int events = 80;
  int reps = 5;
  uint64_t seed = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      const std::string p = prefix;
      return arg.rfind(p, 0) == 0 ? arg.c_str() + p.size() : nullptr;
    };
    if (const char* v = value("--events=")) events = std::atoi(v);
    else if (const char* v = value("--reps=")) reps = std::atoi(v);
    else if (const char* v = value("--seed=")) seed = std::strtoull(v, nullptr, 10);
    else std::fprintf(stderr, "warning: ignoring unknown option '%s'\n",
                      arg.c_str());
  }
  if (events < 2 || reps < 1) {
    std::fprintf(stderr, "invalid --events/--reps\n");
    return 2;
  }

  std::printf("=====================================================\n");
  std::printf("fixpoint — EMS kernel: naive vs optimized (%d events)\n",
              events);
  std::printf("=====================================================\n");
  const LogPair pair = MakeScalabilityPairs(events, 1, seed).front();
  const DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  const DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  std::printf("graphs: %zu x %zu nodes, %zu / %zu edges\n", g1.NumNodes(),
              g2.NumNodes(), g1.NumEdges(), g2.NumEdges());

  struct Config {
    const char* name;
    EmsKernel kernel;
    int threads;
  };
  const Config configs[] = {
      {"naive_1t", EmsKernel::kNaive, 1},
      {"optimized_1t", EmsKernel::kOptimized, 1},
      {"naive_4t", EmsKernel::kNaive, 4},
      {"optimized_4t", EmsKernel::kOptimized, 4},
  };

  std::vector<ConfigResult> results;
  std::vector<SimilarityMatrix> matrices(4);
  for (size_t i = 0; i < 4; ++i) {
    results.push_back(RunConfig(configs[i].name, g1, g2, configs[i].kernel,
                                configs[i].threads, reps, &matrices[i]));
    const ConfigResult& r = results.back();
    std::printf(
        "%-14s best %8.2f ms  mean %8.2f ms  %2d iters  %10llu evals  "
        "%8llu skipped  %.2e updates/s\n",
        r.name.c_str(), r.best_millis, r.mean_millis, r.iterations,
        static_cast<unsigned long long>(r.formula_evaluations),
        static_cast<unsigned long long>(r.pairs_skipped),
        r.pair_updates_per_sec);
  }

  // Equivalence harness: every configuration must match the serial naive
  // baseline to the last bit.
  for (size_t i = 1; i < 4; ++i) {
    const double diff = matrices[0].MaxAbsDifference(matrices[i]);
    if (diff != 0.0) {
      std::fprintf(stderr,
                   "EQUIVALENCE FAILURE: %s differs from naive_1t by %g\n",
                   results[i].name.c_str(), diff);
      return 1;
    }
  }
  std::printf("equivalence: all configurations bit-identical to naive_1t\n");

  const double speedup = results[1].best_millis > 0.0
                             ? results[0].best_millis / results[1].best_millis
                             : 0.0;
  std::printf("single-thread speedup (naive_1t / optimized_1t): %.2fx\n",
              speedup);
  WriteJson(results, events, reps, speedup);
  return 0;
}

}  // namespace
}  // namespace ems

int main(int argc, char** argv) { return ems::Main(argc, argv); }
