// google-benchmark microbenchmarks of the computational kernels: graph
// construction, one EMS iteration sweep, estimation, Hungarian selection,
// and q-gram label similarity.
#include <benchmark/benchmark.h>

#include "assignment/hungarian.h"
#include "core/estimation.h"
#include "core/ems_similarity.h"
#include "obs/context.h"
#include "synth/dataset.h"
#include "text/qgram.h"

namespace ems {
namespace {

LogPair MakeBenchPair(int activities) {
  PairOptions opts;
  opts.num_activities = activities;
  opts.num_traces = 100;
  opts.dislocation = 1;
  opts.seed = 77;
  return MakeLogPair(Testbed::kDsFB, opts);
}

void BM_DependencyGraphBuild(benchmark::State& state) {
  LogPair pair = MakeBenchPair(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    DependencyGraph g = DependencyGraph::Build(pair.log1);
    benchmark::DoNotOptimize(g.NumEdges());
  }
}
BENCHMARK(BM_DependencyGraphBuild)->Arg(20)->Arg(50)->Arg(100);

void BM_EmsExact(benchmark::State& state) {
  LogPair pair = MakeBenchPair(static_cast<int>(state.range(0)));
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  for (auto _ : state) {
    EmsOptions opts;
    EmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix m = sim.Compute();
    benchmark::DoNotOptimize(m.at(1, 1));
  }
}
BENCHMARK(BM_EmsExact)->Arg(20)->Arg(50)->Arg(100);

// The naive reference kernel on the same instances: BM_EmsExact /
// BM_EmsExactNaive is the fixpoint speedup of the optimized kernel
// (coefficient tables + panel + fused SIMD scan + delta skipping).
void BM_EmsExactNaive(benchmark::State& state) {
  LogPair pair = MakeBenchPair(static_cast<int>(state.range(0)));
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  for (auto _ : state) {
    EmsOptions opts;
    opts.kernel = EmsKernel::kNaive;
    EmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix m = sim.Compute();
    benchmark::DoNotOptimize(m.at(1, 1));
  }
}
BENCHMARK(BM_EmsExactNaive)->Arg(20)->Arg(50)->Arg(100);

// The optimized kernel without its precomputed coefficient tables
// (on-the-fly fallback): the delta against BM_EmsExact is what the
// table memory buys.
void BM_EmsExactNoTables(benchmark::State& state) {
  LogPair pair = MakeBenchPair(static_cast<int>(state.range(0)));
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  for (auto _ : state) {
    EmsOptions opts;
    opts.coeff_table_max_bytes = 0;
    EmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix m = sim.Compute();
    benchmark::DoNotOptimize(m.at(1, 1));
  }
}
BENCHMARK(BM_EmsExactNoTables)->Arg(50)->Arg(100);

// Same kernel with an ObsContext attached: the delta against BM_EmsExact
// is the cost of enabled instrumentation (spans per direction + counter
// flushes per run), and BM_EmsExact itself carries the disabled-path
// cost (null-pointer checks only) — the <2% overhead budget.
void BM_EmsExactObserved(benchmark::State& state) {
  LogPair pair = MakeBenchPair(static_cast<int>(state.range(0)));
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  ObsContext obs;
  for (auto _ : state) {
    EmsOptions opts;
    opts.obs = &obs;
    EmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix m = sim.Compute();
    benchmark::DoNotOptimize(m.at(1, 1));
  }
}
BENCHMARK(BM_EmsExactObserved)->Arg(20)->Arg(50)->Arg(100);

void BM_EmsEstimated(benchmark::State& state) {
  LogPair pair = MakeBenchPair(static_cast<int>(state.range(0)));
  DependencyGraph g1 = DependencyGraph::Build(pair.log1);
  DependencyGraph g2 = DependencyGraph::Build(pair.log2);
  for (auto _ : state) {
    EstimationOptions opts;
    opts.exact_iterations = static_cast<int>(state.range(1));
    EstimatedEmsSimilarity sim(g1, g2, opts);
    SimilarityMatrix m = sim.Compute();
    benchmark::DoNotOptimize(m.at(1, 1));
  }
}
BENCHMARK(BM_EmsEstimated)->Args({50, 0})->Args({50, 5})->Args({100, 0})
    ->Args({100, 5});

void BM_HungarianAssignment(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(13);
  std::vector<std::vector<double>> weights(n, std::vector<double>(n));
  for (auto& row : weights) {
    for (double& v : row) {
      v = static_cast<double>(rng() % 1000) / 1000.0;
    }
  }
  for (auto _ : state) {
    std::vector<int> a = MaxWeightAssignment(weights);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_HungarianAssignment)->Arg(20)->Arg(50)->Arg(100);

void BM_QGramCosine(benchmark::State& state) {
  std::string a = "Check Inventory And Validate Order";
  std::string b = "check_inventory_and_validation_of_order";
  for (auto _ : state) {
    benchmark::DoNotOptimize(QGramCosine(a, b));
  }
}
BENCHMARK(BM_QGramCosine);

}  // namespace
}  // namespace ems

BENCHMARK_MAIN();
