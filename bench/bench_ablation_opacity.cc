// Ablation: label opacity. The paper's criticism of label-driven m:n
// matching (ICoP [23]) is that it is "non-effective on opaque event
// names"; structural EMS should be indifferent to opacity. Sweep the
// fraction of garbled names on the composite corpus and watch ICoP
// collapse while EMS holds.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Ablation", "label opacity: structural EMS vs label-only ICoP");
  TextTable table({"opaque fraction", "EMS (structural)", "EMS (labels)",
                   "ICoP (labels)", "BHV (labels)"});
  for (double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    QualityAccumulator ems_s, ems_l, icop, bhv;
    Rng meta(4711);
    for (int i = 0; i < 12; ++i) {
      PairOptions opts;
      opts.num_activities = meta.UniformInt(15, 25);
      opts.num_traces = 150;
      opts.dislocation = meta.UniformInt(1, 2);
      opts.num_composites = 2;
      opts.opaque_fraction = fraction;
      opts.seed = meta.engine()();
      LogPair pair = MakeLogPair(Testbed::kDsFB, opts);
      HarnessOptions structural;
      structural.composites = true;
      HarnessOptions labeled = structural;
      labeled.use_labels = true;
      ems_s.Add(RunMethod(Method::kEms, pair, structural).quality);
      ems_l.Add(RunMethod(Method::kEms, pair, labeled).quality);
      icop.Add(RunMethod(Method::kIcop, pair, labeled).quality);
      bhv.Add(RunMethod(Method::kBhv, pair, labeled).quality);
    }
    table.AddRow({Cell(fraction, 2), Cell(ems_s.Mean().f_measure),
                  Cell(ems_l.Mean().f_measure), Cell(icop.Mean().f_measure),
                  Cell(bhv.Mean().f_measure)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
