// Figure 3: accuracy and time of singleton event matching on the
// dislocation testbeds DS-F / DS-B / DS-FB, structural similarity only
// (opaque names, alpha = 1). Series: EMS, EMS+es (I = 5), GED, OPQ, BHV.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 3", "matching singleton events (structural only)");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());

  HarnessOptions options;
  options.use_labels = false;
  options.opq_max_expansions = 200'000;

  const std::vector<std::pair<const char*, std::vector<const LogPair*>>>
      testbeds = {{"DS-F", Pointers(ds.ds_f)},
                  {"DS-B", Pointers(ds.ds_b)},
                  {"DS-FB", Pointers(ds.ds_fb)}};
  const std::vector<Method> methods = {Method::kEms, Method::kEmsEstimated,
                                       Method::kGed, Method::kOpq,
                                       Method::kBhv};

  TextTable f_table({"testbed", "EMS", "EMS+es", "GED", "OPQ", "BHV"});
  TextTable t_table({"testbed", "EMS", "EMS+es", "GED", "OPQ", "BHV"});
  for (const auto& [name, pairs] : testbeds) {
    std::vector<std::string> f_row = {name};
    std::vector<std::string> t_row = {name};
    for (Method m : methods) {
      GroupResult r = RunGroup(m, pairs, options);
      f_row.push_back(FCell(r));
      t_row.push_back(MillisCell(r.mean_millis));
    }
    f_table.AddRow(f_row);
    t_table.AddRow(t_row);
  }
  std::printf("(a) accuracy (f-measure; * = some pairs DNF)\n%s\n",
              f_table.ToString().c_str());
  std::printf("(b) mean time per log pair\n%s", t_table.ToString().c_str());
  return 0;
}
