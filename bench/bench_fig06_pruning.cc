// Figure 6: pruning power of early convergence (Proposition 2) — total
// number of formula-(1) evaluations and time, with and without pruning,
// per testbed.
#include "bench_common.h"

#include "core/ems_similarity.h"

using namespace ems;
using namespace ems::bench;

namespace {

struct PruneStats {
  uint64_t evaluations = 0;
  double millis = 0.0;
};

PruneStats RunWithPruning(const std::vector<const LogPair*>& pairs,
                          bool prune) {
  PruneStats out;
  Timer timer;
  for (const LogPair* pair : pairs) {
    DependencyGraph g1 = DependencyGraph::Build(pair->log1);
    DependencyGraph g2 = DependencyGraph::Build(pair->log2);
    EmsOptions opts;
    opts.prune_converged = prune;
    EmsSimilarity sim(g1, g2, opts);
    (void)sim.Compute();
    out.evaluations += sim.stats().formula_evaluations;
  }
  out.millis = timer.ElapsedMillis();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 6", "prune power of early convergence");
  RealisticDataset ds = MakeRealisticDataset(ScaledDatasetOptions());

  const std::vector<std::pair<const char*, std::vector<const LogPair*>>>
      testbeds = {{"DS-F", Pointers(ds.ds_f)},
                  {"DS-B", Pointers(ds.ds_b)},
                  {"DS-FB", Pointers(ds.ds_fb)}};

  TextTable table({"testbed", "iters (no prune)", "iters (prune)",
                   "time (no prune)", "time (prune)"});
  for (const auto& [name, pairs] : testbeds) {
    PruneStats without = RunWithPruning(pairs, false);
    PruneStats with = RunWithPruning(pairs, true);
    table.AddRow({name, std::to_string(without.evaluations),
                  std::to_string(with.evaluations),
                  MillisCell(without.millis), MillisCell(with.millis)});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
