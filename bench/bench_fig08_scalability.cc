// Figure 8: scalability on synthetic specifications with 10..100 events
// (BeehiveZ-substitute generator, 2 play-outs per specification, truth =
// name identity). OPQ's factorial search cannot finish beyond ~30 events
// — reproduced via its expansion budget.
#include "bench_common.h"

using namespace ems;
using namespace ems::bench;

int main(int argc, char** argv) {
  Init(argc, argv);
  PrintHeader("Figure 8", "scalability over the number of events");
  const char* pairs_env = std::getenv("EMS_BENCH_PAIRS_PER_SIZE");
  int pairs_per_size = pairs_env != nullptr ? std::atoi(pairs_env) : 5;
  if (pairs_per_size <= 0) pairs_per_size = 5;
  std::printf("(%d specification pairs per size; paper uses 20 — set "
              "EMS_BENCH_PAIRS_PER_SIZE=20 for the full protocol)\n\n",
              pairs_per_size);

  HarnessOptions options;
  options.opq_max_expansions = 200'000;

  TextTable f_table({"events", "EMS", "EMS+es", "GED", "OPQ", "BHV"});
  TextTable t_table({"events", "EMS", "EMS+es", "GED", "OPQ", "BHV"});
  for (int size = 10; size <= 100; size += 10) {
    std::vector<LogPair> storage =
        MakeScalabilityPairs(size, pairs_per_size, 4200 + size);
    std::vector<const LogPair*> pairs = Pointers(storage);
    std::vector<std::string> f_row = {std::to_string(size)};
    std::vector<std::string> t_row = {std::to_string(size)};
    for (Method m : {Method::kEms, Method::kEmsEstimated, Method::kGed,
                     Method::kOpq, Method::kBhv}) {
      if (m == Method::kOpq && size > 30) {
        // The paper reports OPQ unable to finish beyond 30 events; skip
        // the hopeless sizes instead of spinning the budget.
        f_row.push_back("DNF");
        t_row.push_back("-");
        continue;
      }
      GroupResult r = RunGroup(m, pairs, options);
      f_row.push_back(FCell(r));
      t_row.push_back(r.dnf == r.pairs ? "-" : MillisCell(r.mean_millis));
    }
    f_table.AddRow(f_row);
    t_table.AddRow(t_row);
  }
  std::printf("(a) accuracy\n%s\n", f_table.ToString().c_str());
  std::printf("(b) mean time per log pair\n%s", t_table.ToString().c_str());
  return 0;
}
